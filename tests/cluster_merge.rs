//! The cluster merge contract, as a property: over random fact tables,
//! random dimension-0 shard partitions (including empty intervals and
//! shards whose interval holds no entries), and random query boxes, the
//! scatter-gather recombination the router performs — clip the box to
//! each shard's interval, collect per-shard chunk lists, concatenate,
//! re-sort by `(view, slab)`, fold — is **f64-bit-identical** to the
//! single-node canonical answer for SUM, COUNT, and AVG, and per-row for
//! `/rollup`. Checked cold (epoch 0) and again after a mutation batch
//! (epoch 1), because incremental maintenance must not break the
//! partition invariance either.
//!
//! This is the library-level twin of `crates/cluster`'s HTTP tests: no
//! sockets, so proptest can afford hundreds of random partitions. It
//! holds because chunks are keyed by exact dimension-0 leaf (`slab`), so
//! no chunk ever straddles a cut — disjoint intervals partition the
//! chunk list and sorting restores the canonical fold order.

use iolap::core::maintain::{EdbMutation, MaintainableEdb};
use iolap::core::{
    allocate, fold_parts, sort_parts, Algorithm, AllocConfig, ChunkPart, PolicySpec,
};
use iolap::hierarchy::{Hierarchy, HierarchyBuilder};
use iolap::model::{Fact, FactTable, RegionBox, Schema, MAX_DIMS};
use iolap::query::{AggFn, AggResult};
use iolap::serve::EdbSnapshot;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random 2-level hierarchy with ≤ 12 leaves.
fn arb_hierarchy(tag: &'static str) -> impl Strategy<Value = Hierarchy> {
    (2u32..=12, 1u32..=4, any::<u64>()).prop_map(move |(leaves, groups, seed)| {
        let groups = groups.min(leaves);
        let parents: Vec<u32> = (0..leaves)
            .map(|i| if i < groups { i } else { ((seed >> (i % 48)) as u32 ^ i) % groups })
            .collect();
        HierarchyBuilder::new(tag)
            .level("Leaf", leaves)
            .level("Group", groups)
            .parents(2, &parents)
            .build()
    })
}

/// Strategy: a random fact table (mixed precise/imprecise facts).
fn arb_table() -> impl Strategy<Value = FactTable> {
    (arb_hierarchy("D0"), arb_hierarchy("D1"), 1usize..40, any::<u64>()).prop_map(
        |(h0, h1, n, seed)| {
            let schema = Arc::new(Schema::new(vec![Arc::new(h0), Arc::new(h1)], "M"));
            let mut facts = Vec::with_capacity(n);
            let mut s = seed;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for id in 1..=n as u64 {
                let mut dims = [0u32; 2];
                for (d, slot) in dims.iter_mut().enumerate() {
                    let h = schema.dim(d);
                    let r = next();
                    *slot = if r % 10 < 6 {
                        h.leaf_node((r >> 8) as u32 % h.num_leaves()).0
                    } else {
                        (r >> 8) as u32 % h.num_nodes()
                    };
                }
                let measure = 1.0 + (next() % 100) as f64;
                facts.push(Fact::new(id, &dims, measure));
            }
            FactTable::from_facts(schema, facts)
        },
    )
}

/// Random raw cut material: up to 5 cut points, clamped to the leaf
/// domain later. Duplicates and out-of-range values are deliberate —
/// they become empty shard intervals.
fn arb_cuts() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..16, 0..5)
}

/// Turn raw cut material into half-open shard intervals tiling `[0, n0)`.
fn intervals(raw: &[u32], n0: u32) -> Vec<(u32, u32)> {
    let mut cuts: Vec<u32> = raw.iter().map(|&c| c.min(n0)).collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut lo = 0u32;
    for c in cuts {
        out.push((lo, c.max(lo)));
        lo = c.max(lo);
    }
    out.push((lo, n0));
    out
}

/// Clip `region` to the dim0 interval `[lo, hi)`; `None` when disjoint.
fn clip(region: &RegionBox, lo: u32, hi: u32) -> Option<RegionBox> {
    let l = region.lo[0].max(lo);
    let h = region.hi[0].min(hi);
    if l >= h {
        return None;
    }
    let mut r = *region;
    r.lo[0] = l;
    r.hi[0] = h;
    Some(r)
}

/// Build the canonical snapshot the server would publish at `epoch`.
fn snapshot_of(medb: &mut MaintainableEdb, table: &FactTable, epoch: u64) -> EdbSnapshot {
    EdbSnapshot {
        epoch,
        schema: table.schema().clone(),
        table: Arc::new(table.clone()),
        segments: medb.snapshot_segments().expect("snapshot"),
        lattice: None,
    }
}

/// The router's recombination: per-shard clipped chunk lists,
/// concatenated in shard order, re-sorted, folded.
fn scatter_gather(
    snap: &EdbSnapshot,
    shards: &[(u32, u32)],
    region: &RegionBox,
    agg: AggFn,
) -> AggResult {
    let mut parts: Vec<ChunkPart> = Vec::new();
    for &(lo, hi) in shards {
        if let Some(r) = clip(region, lo, hi) {
            parts.extend(snap.aggregate_parts(&r).expect("shard scan").0);
        }
    }
    sort_parts(&mut parts);
    let (sum, count) = fold_parts(&parts);
    AggResult::from_parts(agg, sum, count)
}

/// Per-row scatter-gather for a rollup: merge row `j` of every shard's
/// clipped parts (asserting the rows line up), fold each merged row.
fn scatter_gather_rollup(
    snap: &EdbSnapshot,
    shards: &[(u32, u32)],
    dim: usize,
    region: &RegionBox,
) -> Vec<(String, f64, f64)> {
    let mut merged: Vec<(String, Vec<ChunkPart>)> = Vec::new();
    for &(lo, hi) in shards {
        let Some(r) = clip(region, lo, hi) else { continue };
        let (rows, _) = snap.rollup_scan_parts(dim, 2, Some(&r)).expect("shard rollup");
        if merged.is_empty() {
            merged = rows.into_iter().map(|r| (r.name, r.parts)).collect();
        } else {
            assert_eq!(merged.len(), rows.len(), "shards disagree on row set");
            for (m, row) in merged.iter_mut().zip(rows) {
                assert_eq!(m.0, row.name, "shards disagree on row order");
                m.1.extend(row.parts);
            }
        }
    }
    merged
        .into_iter()
        .map(|(name, mut parts)| {
            sort_parts(&mut parts);
            let (sum, count) = fold_parts(&parts);
            (name, sum, count)
        })
        .collect()
}

fn check_all(snap: &EdbSnapshot, shards: &[(u32, u32)], region: &RegionBox) {
    for agg in [AggFn::Sum, AggFn::Count, AggFn::Avg] {
        let single = snap.aggregate(region, agg).expect("single-node answer");
        let merged = scatter_gather(snap, shards, region, agg);
        assert_eq!(single.value.to_bits(), merged.value.to_bits(), "{agg:?} value");
        assert_eq!(single.sum.to_bits(), merged.sum.to_bits(), "{agg:?} sum");
        assert_eq!(single.count.to_bits(), merged.count.to_bits(), "{agg:?} count");
    }
    // Rollup along dim0 at the Group level (level 2: leaves are 1, root 0
    // is trivial — Group is the interesting partial-row case), dense rows.
    let (single_rows, _) = snap.rollup_scan_parts(0, 2, Some(region)).expect("single rollup");
    let single: Vec<(String, f64, f64)> = single_rows
        .into_iter()
        .map(|r| {
            let mut parts = r.parts;
            sort_parts(&mut parts);
            let (sum, count) = fold_parts(&parts);
            (r.name, sum, count)
        })
        .collect();
    let merged = scatter_gather_rollup(snap, shards, 0, region);
    if merged.is_empty() {
        // Every shard had empty overlap: the router synthesizes dense
        // zero rows, which is exactly what an empty-region single-node
        // rollup folds to.
        assert!(single.iter().all(|(_, s, c)| *s == 0.0 && *c == 0.0));
        return;
    }
    assert_eq!(single.len(), merged.len());
    for ((an, asum, acount), (bn, bsum, bcount)) in single.iter().zip(&merged) {
        assert_eq!(an, bn);
        assert_eq!(asum.to_bits(), bsum.to_bits(), "row {an} sum");
        assert_eq!(acount.to_bits(), bcount.to_bits(), "row {an} count");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random partitions never change a single answer bit — cold and
    /// after a mutation batch flips the epoch.
    #[test]
    fn scatter_gather_matches_single_node(
        table in arb_table(),
        raw_cuts in arb_cuts(),
        (bl0, bl1, w0, w1) in (0u32..12, 0u32..12, 1u32..13, 1u32..13),
    ) {
        // An all-imprecise table can leave the allocator with no candidate
        // cells — a rejected input, not a merge case.
        let has_precise = table.num_precise() > 0;
        prop_assume!(has_precise || table.num_imprecise() == 0);

        let schema = table.schema().clone();
        let (n0, n1) = (schema.dim(0).num_leaves(), schema.dim(1).num_leaves());
        let shards = intervals(&raw_cuts, n0);

        let mut lo = [0u32; MAX_DIMS];
        let mut hi = [0u32; MAX_DIMS];
        lo[0] = bl0.min(n0 - 1);
        lo[1] = bl1.min(n1 - 1);
        hi[0] = (lo[0] + w0).min(n0);
        hi[1] = (lo[1] + w1).min(n1);
        let region = RegionBox { lo, hi, k: 2 };

        let policy = PolicySpec::em_count(0.01);
        let alloc = AllocConfig::builder().in_memory(256).build();
        let run = allocate(&table, &policy, Algorithm::Transitive, &alloc).expect("allocate");
        let mut medb = MaintainableEdb::build(run, policy).expect("maintainable EDB");

        // Cold: epoch 0.
        let snap = snapshot_of(&mut medb, &table, 0);
        check_all(&snap, &shards, &region);
        // Whole cube too — the no-dice fan-out path.
        let mut all_hi = [0u32; MAX_DIMS];
        all_hi[0] = n0;
        all_hi[1] = n1;
        let all = RegionBox { lo: [0u32; MAX_DIMS], hi: all_hi, k: 2 };
        check_all(&snap, &shards, &all);

        // Post-update: mutate the first fact's measure (every shard
        // applies the same batch to its full copy), epoch 1.
        let fact_id = table.facts()[0].id;
        medb.apply_batch(&[EdbMutation::UpdateMeasure { fact_id, new_measure: 4321.25 }])
            .expect("mutation batch");
        let snap1 = snapshot_of(&mut medb, &table, 1);
        check_all(&snap1, &shards, &region);
        check_all(&snap1, &shards, &all);
    }
}
