//! Integration tests for the EDB maintenance path (Section 9) on
//! generated data: the maintained EDB must always equal a from-scratch
//! rebuild.

use iolap::core::maintain::{FactUpdate, MaintainableEdb};
use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{generate, GeneratorConfig};

#[test]
fn batched_updates_match_rebuild_on_generated_data() {
    let policy = PolicySpec::em_measure(0.001);
    let cfg = AllocConfig::builder().in_memory(2048).build();
    let mut table = generate(&GeneratorConfig::automotive(1_500, 21));

    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    let mut maintained = MaintainableEdb::build(run, policy.clone()).unwrap();

    // Update ~1% of the facts (mixed precise/imprecise by construction of
    // the id space: low ids are imprecise).
    let updates: Vec<FactUpdate> = (1..=15)
        .map(|i| FactUpdate { fact_id: i * 97 % 1_500 + 1, new_measure: 5_000.0 + i as f64 })
        .collect();
    let rep = maintained.apply_updates(&updates).unwrap();
    assert!(rep.affected_components >= 1);
    let got = maintained.current_weights().unwrap();

    // Rebuild from scratch with the same measures.
    for f in table.facts_mut() {
        for u in &updates {
            if f.id == u.fact_id {
                f.measure = u.new_measure;
            }
        }
    }
    let mut rebuilt_run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    let want = rebuilt_run.edb.weight_map().unwrap();

    assert_eq!(got.len(), want.len());
    for (id, entries) in &want {
        let g: std::collections::HashMap<_, _> = got[id].iter().cloned().collect();
        assert_eq!(g.len(), entries.len(), "fact {id}");
        for (cell, w) in entries {
            let gw = g[cell];
            assert!(
                (w - gw).abs() < 1e-5,
                "fact {id} cell {:?}: rebuilt {w} vs maintained {gw}",
                &cell[..4]
            );
        }
    }
}

#[test]
fn repeated_updates_to_same_fact_keep_latest() {
    let policy = PolicySpec::em_measure(0.001);
    let cfg = AllocConfig::builder().in_memory(1024).build();
    // A dense little dataset over the paper's 4×4 cell space, so every
    // imprecise fact overlaps plenty of precise cells.
    let schema = iolap::model::paper_example::schema();
    let mut table = generate(&GeneratorConfig::uniform(schema, 200, 0.4, 33));

    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    let mut maintained = MaintainableEdb::build(run, policy.clone()).unwrap();

    // Pick an imprecise fact that actually has EDB entries (ids 1..=80
    // are imprecise).
    let target = {
        let w = maintained.current_weights().unwrap();
        (1u64..=80).find(|id| w.contains_key(id)).expect("some imprecise fact allocates")
    };
    maintained.apply_updates(&[FactUpdate { fact_id: target, new_measure: 1.0 }]).unwrap();
    maintained.apply_updates(&[FactUpdate { fact_id: target, new_measure: 9_999.0 }]).unwrap();
    let got = maintained.current_weights().unwrap();

    for f in table.facts_mut() {
        if f.id == target {
            f.measure = 9_999.0;
        }
    }
    let mut rebuilt = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    let want = rebuilt.edb.weight_map().unwrap();
    let g: std::collections::HashMap<_, _> = got[&target].iter().cloned().collect();
    for (cell, w) in &want[&target] {
        assert!((g[cell] - w).abs() < 1e-5);
    }
}

#[test]
fn non_overlapped_precise_updates_are_cheap() {
    // Updating precise facts in singleton components must not trigger any
    // component re-allocation work (the flat curve of Figure 6).
    let policy = PolicySpec::em_count(0.01);
    let cfg = AllocConfig::builder().in_memory(2048).build();
    let table = generate(&GeneratorConfig::automotive(2_000, 55));
    let schema = table.schema().clone();

    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    let stats = run.report.components.clone().unwrap();
    assert!(stats.singleton_cells > 0, "sparse data must have isolated cells");

    // Find precise facts overlapped by nothing: their cell's degree is 0.
    let prep = &run.prep;
    let mut isolated: Vec<u64> = Vec::new();
    {
        let mut degrees = std::collections::HashMap::new();
        // Recover degrees through the public index + regions.
        let keys = prep.index.keys().to_vec();
        let mut deg = vec![0u32; keys.len()];
        for f in table.facts().iter().filter(|f| !schema.is_precise(f)) {
            prep.index.for_each_in_box(&schema.region(f), |i| deg[i as usize] += 1);
        }
        for (i, k) in keys.iter().enumerate() {
            degrees.insert(*k, deg[i]);
        }
        for f in table.facts() {
            if let Some(cell) = schema.cell_of(f) {
                if degrees.get(&cell) == Some(&0) {
                    isolated.push(f.id);
                }
            }
        }
    }
    assert!(!isolated.is_empty());

    let mut maintained = MaintainableEdb::build(run, policy).unwrap();
    let updates: Vec<FactUpdate> =
        isolated.iter().take(10).map(|&id| FactUpdate { fact_id: id, new_measure: 1.0 }).collect();
    let rep = maintained.apply_updates(&updates).unwrap();
    // Singleton components have no imprecise facts → no equations
    // re-evaluated, no entries rewritten.
    assert_eq!(rep.entries_rewritten, 0);
}
