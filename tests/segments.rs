//! The segment layer's contracts, end to end:
//!
//! 1. **Pruning is invisible** (proptest): over random fact tables and
//!    random query boxes, SUM/COUNT/AVG computed through the fence-pruned
//!    cursor are bit-identical to a naive scan of every entry in every
//!    segment page — pruning may only skip pages provably disjoint from
//!    the box, so the visited entry sequence (and every f64) is unchanged.
//! 2. **Compaction is a rewrite, not an edit** — base + k delta segments
//!    compacted back into few tiers hold exactly the same live entry
//!    multiset as `snapshot_entries`, and its accounted page I/O is exact:
//!    the same mutation sequence charges the same meter reading, run to
//!    run.

use iolap::core::maintain::{EdbMutation, MaintainableEdb};
use iolap::core::{
    accumulate_region, allocate, Algorithm, AllocConfig, CoreError, PolicySpec, SegmentCursor,
    SegmentLayout, SegmentView,
};
use iolap::hierarchy::{Hierarchy, HierarchyBuilder};
use iolap::model::{paper_example, Fact, FactId, FactTable, RegionBox, Schema, MAX_DIMS};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random 2-level hierarchy with ≤ 12 leaves.
fn arb_hierarchy(tag: &'static str) -> impl Strategy<Value = Hierarchy> {
    (2u32..=12, 1u32..=4, any::<u64>()).prop_map(move |(leaves, groups, seed)| {
        let groups = groups.min(leaves);
        let parents: Vec<u32> = (0..leaves)
            .map(|i| if i < groups { i } else { ((seed >> (i % 48)) as u32 ^ i) % groups })
            .collect();
        HierarchyBuilder::new(tag)
            .level("Leaf", leaves)
            .level("Group", groups)
            .parents(2, &parents)
            .build()
    })
}

/// Strategy: a random fact table (mixed precise/imprecise facts).
fn arb_table() -> impl Strategy<Value = FactTable> {
    (arb_hierarchy("D0"), arb_hierarchy("D1"), 1usize..40, any::<u64>()).prop_map(
        |(h0, h1, n, seed)| {
            let schema = Arc::new(Schema::new(vec![Arc::new(h0), Arc::new(h1)], "M"));
            let mut facts = Vec::with_capacity(n);
            let mut s = seed;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for id in 1..=n as u64 {
                let mut dims = [0u32; 2];
                for (d, slot) in dims.iter_mut().enumerate() {
                    let h = schema.dim(d);
                    let r = next();
                    *slot = if r % 10 < 6 {
                        h.leaf_node((r >> 8) as u32 % h.num_leaves()).0
                    } else {
                        (r >> 8) as u32 % h.num_nodes()
                    };
                }
                let measure = 1.0 + (next() % 100) as f64;
                facts.push(Fact::new(id, &dims, measure));
            }
            FactTable::from_facts(schema, facts)
        },
    )
}

/// Strategy: a random (possibly empty, possibly full-space) query box for
/// a 2-dimensional schema; widths are clamped to the leaf domains later.
fn arb_box() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    (0u32..12, 0u32..12, 1u32..13, 1u32..13)
}

/// A naive full-entry scan: every page of every segment decoded in page
/// order, no fences — the independent reimplementation the pruned cursor
/// is checked against. `records()` decompresses columnar pages, so this
/// also exercises the v2 decode path.
fn naive_scan(views: &[SegmentView], region: &RegionBox) -> (f64, f64) {
    let mut sum = 0.0;
    let mut count = 0.0;
    for v in views {
        for e in v.segment.records().expect("decode") {
            if !v.exclude.contains(&e.fact_id) && region.contains_cell(&e.cell) {
                sum += e.weight * e.measure;
                count += e.weight;
            }
        }
    }
    (sum, count)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// SUM/COUNT/AVG through the pruned segment cursor are bit-identical
    /// to the naive every-entry scan, and the page accounting always
    /// covers the whole segment set.
    #[test]
    fn pruned_aggregates_are_bit_identical_to_a_naive_scan(
        table in arb_table(),
        boxes in proptest::collection::vec(arb_box(), 1..8),
    ) {
        let has_precise = table.num_precise() > 0;
        prop_assume!(has_precise || table.num_imprecise() == 0);

        let schema = table.schema().clone();
        let cfg = AllocConfig::builder().in_memory(128).build();
        let policy = PolicySpec::em_count(0.01);
        let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
        let views = run.edb.segments().unwrap();
        let total_pages: u64 = views.iter().map(|v| v.segment.num_pages()).sum();

        for &(x, y, w, h) in &boxes {
            let mut lo = [0u32; MAX_DIMS];
            let mut hi = [0u32; MAX_DIMS];
            let (l0, l1) = (schema.dim(0).num_leaves(), schema.dim(1).num_leaves());
            lo[0] = x.min(l0);
            lo[1] = y.min(l1);
            hi[0] = (x + w).min(l0);
            hi[1] = (y + h).min(l1);
            let region = RegionBox { lo, hi, k: 2 };

            let (want_sum, want_count) = naive_scan(&views, &region);
            let (sum, count, stats) = accumulate_region(&views, &region).unwrap();
            prop_assert_eq!(sum.to_bits(), want_sum.to_bits(), "SUM bits for {:?}", region);
            prop_assert_eq!(count.to_bits(), want_count.to_bits(), "COUNT bits for {:?}", region);
            // AVG is sum/count on both sides; identical ingredients give
            // identical bits (the 0-count guard included).
            let avg = if count > 0.0 { sum / count } else { 0.0 };
            let want_avg = if want_count > 0.0 { want_sum / want_count } else { 0.0 };
            prop_assert_eq!(avg.to_bits(), want_avg.to_bits());
            prop_assert_eq!(stats.pages_read + stats.pages_pruned, total_pages,
                "every page is either read or pruned");

            // The unpruned cursor agrees too (and reads everything).
            let mut full = SegmentCursor::full_scan(&views, region);
            let mut fsum = 0.0;
            let mut fcount = 0.0;
            full.for_each(|e| { fsum += e.weight * e.measure; fcount += e.weight; }).unwrap();
            prop_assert_eq!(fsum.to_bits(), want_sum.to_bits());
            prop_assert_eq!(fcount.to_bits(), want_count.to_bits());
            prop_assert_eq!(full.stats().pages_read, total_pages);
        }
    }
}

/// Live-entry multiset of a set of segment views, as sortable keys.
fn live_multiset(views: &[SegmentView]) -> Vec<(FactId, [u32; MAX_DIMS], u64, u64)> {
    let mut out: Vec<_> = views
        .iter()
        .flat_map(|v| {
            v.segment
                .records()
                .expect("decode")
                .iter()
                .filter(|e| !v.exclude.contains(&e.fact_id))
                .map(|e| (e.fact_id, e.cell, e.weight.to_bits(), e.measure.to_bits()))
                .collect::<Vec<_>>()
        })
        .collect();
    out.sort_unstable();
    out
}

fn build_medb() -> MaintainableEdb {
    let run = allocate(
        &paper_example::table1(),
        &PolicySpec::em_count(0.01),
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(256).build(),
    )
    .unwrap();
    MaintainableEdb::build(run, PolicySpec::em_count(0.01)).unwrap()
}

/// The mutation batches the compaction tests replay: enough rounds to
/// drive several delta segments through a threshold-1 compaction.
fn compaction_batches() -> Vec<Vec<EdbMutation>> {
    let mut f60 = Fact::new(60, &[0, 0], 30.0);
    f60.dims[0] = paper_example::schema().dim(0).all().0;
    vec![
        vec![EdbMutation::UpdateMeasure { fact_id: 1, new_measure: 111.0 }],
        vec![EdbMutation::Insert(f60)],
        vec![EdbMutation::UpdateMeasure { fact_id: 2, new_measure: 222.0 }],
        vec![EdbMutation::Delete(11)],
        vec![EdbMutation::UpdateMeasure { fact_id: 60, new_measure: 333.0 }],
    ]
}

#[test]
fn compaction_round_trip_preserves_the_sorted_live_multiset() {
    let mut medb = build_medb();
    medb.set_compaction_threshold(1); // compact on every refresh
    for batch in compaction_batches() {
        medb.apply_batch(&batch).unwrap();
        let views = medb.snapshot_segments().unwrap();
        // threshold 1 keeps the tier count at base + at most one delta.
        assert!(views.len() <= 2, "{} segments after compaction", views.len());

        // The compacted tiers hold exactly the live multiset the flat
        // snapshot reports.
        let mut want: Vec<_> = medb
            .snapshot_entries()
            .unwrap()
            .iter()
            .map(|e| (e.fact_id, e.cell, e.weight.to_bits(), e.measure.to_bits()))
            .collect();
        want.sort_unstable();
        let views = medb.snapshot_segments().unwrap();
        assert_eq!(live_multiset(&views), want);
    }
    assert!(medb.num_compactions() >= 1, "threshold 1 must have compacted");
}

#[test]
fn compaction_io_is_exactly_accounted_and_reproducible() {
    // Two independent replicas replay the identical mutation sequence;
    // exact I/O accounting means their meters agree read for read, write
    // for write — including every compaction's temp file and external
    // sort. Any hidden (unaccounted) I/O path would have to desynchronize
    // eventually; equality run-to-run plus a nonzero compaction delta is
    // the strongest pin that doesn't hardcode a page count.
    let run_all = || {
        let mut medb = build_medb();
        medb.set_compaction_threshold(1);
        let before = medb.accounted_io();
        let mut deltas = Vec::new();
        for batch in compaction_batches() {
            medb.apply_batch(&batch).unwrap();
            let pre = medb.accounted_io();
            let _ = medb.snapshot_segments().unwrap();
            deltas.push(medb.accounted_io() - pre);
        }
        (medb.num_compactions(), medb.accounted_io() - before, deltas)
    };
    let (compactions_a, total_a, deltas_a) = run_all();
    let (compactions_b, total_b, deltas_b) = run_all();
    assert_eq!(compactions_a, compactions_b);
    assert!(compactions_a >= 1);
    assert_eq!(total_a, total_b, "accounted I/O must be exact, not approximate");
    assert_eq!(deltas_a, deltas_b, "per-refresh I/O must replay identically");
    assert!(
        deltas_a.iter().any(|d| d.total() > 0),
        "compaction must charge the meter (temp file + external sort)"
    );
}

/// Every layout (row/columnar × canonical/Morton) answers bit-identically
/// to the naive decoded scan of its own views, and all layouts hold the
/// same live multiset. Bit-identity across *orders* is not promised —
/// reordering reorders f64 accumulation — but within an order the
/// compressed format must not perturb a single bit.
#[test]
fn every_layout_is_bit_identical_to_its_own_naive_scan() {
    use iolap::core::{CellOrder, PageFormat};
    let run = allocate(
        &paper_example::table1(),
        &PolicySpec::em_count(0.01),
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(256).build(),
    )
    .unwrap();
    let mut edb = run.edb;
    let schema = paper_example::schema();
    let boxes: Vec<RegionBox> = {
        let full = SegmentCursor::all_region(schema.k());
        let mut ma = full;
        ma.hi[0] = 2; // MA leaves
        let mut sedan = full;
        sedan.lo[1] = 0;
        sedan.hi[1] = 2;
        vec![full, ma, sedan]
    };

    let layouts = [
        SegmentLayout::v1_canonical(),
        SegmentLayout::v2_canonical(),
        SegmentLayout { order: CellOrder::Morton, format: PageFormat::Rows },
        SegmentLayout::v2_morton(),
    ];
    let mut multisets = Vec::new();
    for layout in layouts {
        edb.set_segment_layout(layout);
        let views = edb.segments().unwrap();
        for region in &boxes {
            let (want_sum, want_count) = naive_scan(&views, region);
            let (sum, count, _) = accumulate_region(&views, region).unwrap();
            assert_eq!(sum.to_bits(), want_sum.to_bits(), "{layout:?} SUM bits for {region:?}");
            assert_eq!(count.to_bits(), want_count.to_bits(), "{layout:?} COUNT bits");
        }
        multisets.push(live_multiset(&views));
    }
    for m in &multisets[1..] {
        assert_eq!(m, &multisets[0], "layouts must hold the same live multiset");
    }
}

/// A bit-flipped compressed page must surface from the scan as the
/// storage error it is — through `iolap::Error` — never a panic or a
/// silently short answer; and a truncated segment file must fail at load.
#[test]
fn corrupt_and_truncated_compressed_segments_surface_as_storage_errors() {
    use iolap::core::EdbSegment;
    let run = allocate(
        &paper_example::table1(),
        &PolicySpec::em_count(0.01),
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(256).build(),
    )
    .unwrap();
    let mut edb = run.edb;
    edb.set_segment_layout(SegmentLayout::v2_canonical());
    let views = edb.segments().unwrap();
    let k = paper_example::schema().k();

    let dir = std::env::temp_dir().join(format!("iolap-seg-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("base.seg");
    views[0].segment.save(&path).unwrap();

    // Flip one bit inside the first encoded page's payload (the first
    // data block follows the one-page header; its u32 length prefix is
    // followed by the payload, so offset 16 is well inside it).
    let mut bytes = std::fs::read(&path).unwrap();
    let page = 4096;
    bytes[page + 16] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    // Loading only validates the frame; the damage surfaces at scan time.
    let seg = EdbSegment::load(&path, k).unwrap();
    let views = vec![SegmentView {
        segment: Arc::new(seg),
        exclude: Arc::new(std::collections::HashSet::new()),
    }];
    let region = SegmentCursor::all_region(k);
    let err = accumulate_region(&views, &region).unwrap_err();
    assert!(matches!(err, CoreError::Storage(_)), "want a storage error, got {err:?}");
    let facade: iolap::Error = err.into();
    assert!(facade.to_string().contains("corrupt"), "{facade}");

    // Truncating the file kills the load itself (the footer frame is
    // incomplete) — an error, not a panic or a short segment.
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&path, &bytes).unwrap();
    assert!(EdbSegment::load(&path, k).is_err(), "truncated segment must not load");

    std::fs::remove_dir_all(&dir).ok();
}
