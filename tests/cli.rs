//! End-to-end tests of the `iolap` CLI binary: generate → ingest →
//! allocate → roll-up, all through the real executable.

use std::process::Command;

fn iolap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iolap"))
}

#[test]
fn demo_runs_and_prints_regions() {
    let out = iolap().arg("demo").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("East"), "{text}");
    assert!(text.contains("West"), "{text}");
    assert!(text.contains("transitive"), "{text}");
}

#[test]
fn gen_then_allocate_roundtrip() {
    let dir = std::env::temp_dir().join(format!("iolap-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "2000", "--seed", "3", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("facts.csv").exists());
    assert!(dir.join("dim3_LOCATION.csv").exists());

    let out = iolap()
        .args(["allocate", "--data"])
        .arg(&dir)
        .args(["--algorithm", "transitive", "--epsilon", "0.05", "--rollup", "LOCATION:Region"])
        .output()
        .expect("spawn allocate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("loaded 2000 facts"), "{text}");
    assert!(text.contains("EDB:"), "{text}");
    assert!(text.contains("SUM by Region"), "{text}");

    // EDB export writes a parseable CSV.
    let edb_path = dir.join("edb.csv");
    let out = iolap()
        .args(["allocate", "--data"])
        .arg(&dir)
        .args(["--algorithm", "block", "--edb-out"])
        .arg(&edb_path)
        .output()
        .expect("spawn allocate with edb-out");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let edb_text = std::fs::read_to_string(&edb_path).unwrap();
    let header = edb_text.lines().next().unwrap();
    assert!(header.starts_with("fact_id,"), "{header}");
    assert!(edb_text.lines().count() > 1000);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = iolap().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command \"frobnicate\""), "{err}");
    assert!(err.contains("usage"), "{err}");
    assert!(out.stdout.is_empty(), "errors go to stderr, not stdout");
}

#[test]
fn bare_invocation_is_a_usage_error() {
    let out = iolap().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"), "usage goes to stderr");
}

#[test]
fn explicit_help_succeeds_on_stdout() {
    for arg in ["help", "--help", "-h"] {
        let out = iolap().arg(arg).output().expect("spawn");
        assert_eq!(out.status.code(), Some(0), "{arg} is not an error");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage"), "{arg}: {text}");
        assert!(out.stderr.is_empty(), "{arg}: help goes to stdout");
    }
}

#[test]
fn version_prints_cargo_package_version() {
    for arg in ["version", "--version", "-V"] {
        let out = iolap().arg(arg).output().expect("spawn");
        assert_eq!(out.status.code(), Some(0));
        let text = String::from_utf8_lossy(&out.stdout);
        assert_eq!(text.trim(), format!("iolap {}", env!("CARGO_PKG_VERSION")), "{arg}");
    }
}

#[test]
fn serve_requires_data_flag() {
    let out = iolap().arg("serve").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"), "names the missing flag");
}

#[test]
fn query_requires_data_and_rejects_bad_args_with_usage() {
    // Missing --data.
    let out = iolap().arg("query").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--data"), "{err}");
    assert!(err.contains("iolap query"), "usage line names the subcommand: {err}");

    let dir = std::env::temp_dir().join(format!("iolap-cli-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "300", "--seed", "5", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Malformed region (no '='), unknown node, unknown aggregate: all
    // usage errors (exit 2), nothing on stdout.
    for args in [
        vec!["--region", "LOCATION"],
        vec!["--region", "LOCATION=Atlantis"],
        vec!["--agg", "median"],
    ] {
        let out =
            iolap().args(["query", "--data"]).arg(&dir).args(&args).output().expect("spawn query");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(out.stdout.is_empty(), "{args:?}: errors go to stderr");
        assert!(String::from_utf8_lossy(&out.stderr).contains("iolap query"), "{args:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_prints_the_server_json_shape() {
    let dir = std::env::temp_dir().join(format!("iolap-cli-query-json-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "300", "--seed", "5", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = iolap()
        .args(["query", "--data"])
        .arg(&dir)
        .args(["--agg", "count", "--epsilon", "0.05"])
        .output()
        .expect("spawn query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let v = iolap::obs::json::parse(text.trim()).expect("JSON output");
    // Every allocatable fact carries total weight 1, so COUNT over the
    // full space is a whole number ≤ the fact count.
    let count = v.get("count").and_then(|x| x.as_f64()).expect("count field");
    assert!(count > 0.0 && count <= 300.0, "{text}");
    assert_eq!(v.get("agg").and_then(|x| x.as_str()), Some("count"), "{text}");
    assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(0), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_stats_prints_scan_counters_as_a_second_json_line() {
    let dir = std::env::temp_dir().join(format!("iolap-cli-query-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "300", "--seed", "5", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = iolap()
        .args(["query", "--data"])
        .arg(&dir)
        .args(["--agg", "sum", "--epsilon", "0.05", "--stats"])
        .output()
        .expect("spawn query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    // Line 1: the server's /query response shape, unchanged by --stats.
    let resp = iolap::obs::json::parse(lines.next().expect("response line")).expect("JSON");
    assert_eq!(resp.get("agg").and_then(|x| x.as_str()), Some("sum"), "{text}");
    // Line 2: the scan counters. A full-space query prunes nothing, reads
    // every page, and the exact-I/O meter charges the compressed bytes.
    let stats = iolap::obs::json::parse(lines.next().expect("stats line")).expect("stats JSON");
    let u =
        |k: &str| stats.get(k).and_then(|x| x.as_u64()).unwrap_or_else(|| panic!("{k}: {text}"));
    assert!(u("pages_read") > 0, "{text}");
    assert!(u("bytes_read") > 0, "{text}");
    assert_eq!(u("pages_pruned"), 0, "full-space query prunes nothing: {text}");
    assert!(lines.next().is_none(), "exactly two lines: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full `iolap serve` flag matrix: every tuning knob accepted
/// together, the server comes up, answers, and drains on stdin EOF.
#[test]
fn serve_accepts_the_full_flag_matrix() {
    use std::io::{Read, Write};

    // --help names every knob.
    let out = iolap().args(["serve", "--help"]).output().expect("spawn serve --help");
    assert_eq!(out.status.code(), Some(0));
    let help = String::from_utf8_lossy(&out.stderr);
    for f in ["--workers", "--queue", "--cache", "--max-conns", "--timeout-ms", "--idle-ms"] {
        assert!(help.contains(f), "help must mention {f}: {help}");
    }

    let dir = std::env::temp_dir().join(format!("iolap-cli-serve-flags-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "300", "--seed", "11", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let mut child = iolap()
        .args(["serve", "--data"])
        .arg(&dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--epsilon",
            "0.05",
            "--workers",
            "2",
            "--queue",
            "16",
            "--cache",
            "64",
            "--max-conns",
            "100",
            "--timeout-ms",
            "2000",
            "--idle-ms",
            "30000",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The bound address is the first stdout line (the --addr host:0
    // contract scripts rely on).
    let mut stdout = child.stdout.take().unwrap();
    let mut seen = String::new();
    let addr = loop {
        let mut buf = [0u8; 256];
        let n = stdout.read(&mut buf).expect("read serve stdout");
        assert!(n > 0, "serve exited early: {seen}");
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        if let Some((line, _)) = seen.split_once('\n') {
            break line.trim().to_string();
        }
    };

    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    write!(conn, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
    let mut resp = String::new();
    conn.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

    drop(child.stdin.take());
    let status = child.wait().expect("serve exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_answers_queries_until_stdin_closes() {
    use std::io::{Read, Write};
    let dir = std::env::temp_dir().join(format!("iolap-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "500", "--seed", "7", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let mut child = iolap()
        .args(["serve", "--data"])
        .arg(&dir)
        .args(["--addr", "127.0.0.1:0", "--epsilon", "0.05"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The bound address is the first stdout line.
    let mut stdout = child.stdout.take().unwrap();
    let mut seen = String::new();
    let addr = loop {
        let mut buf = [0u8; 256];
        let n = stdout.read(&mut buf).expect("read serve stdout");
        assert!(n > 0, "serve exited early: {seen}");
        seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        if let Some((line, _)) = seen.split_once('\n') {
            break line.trim().to_string();
        }
    };

    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    let body = r#"{"region":{"LOCATION":"ALL"},"agg":"count"}"#;
    write!(
        conn,
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut resp = String::new();
    conn.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("\"count\":"), "{resp}");

    // EOF on stdin is the shutdown signal.
    drop(child.stdin.take());
    let status = child.wait().expect("serve exits");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
