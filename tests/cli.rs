//! End-to-end tests of the `iolap` CLI binary: generate → ingest →
//! allocate → roll-up, all through the real executable.

use std::process::Command;

fn iolap() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iolap"))
}

#[test]
fn demo_runs_and_prints_regions() {
    let out = iolap().arg("demo").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("East"), "{text}");
    assert!(text.contains("West"), "{text}");
    assert!(text.contains("transitive"), "{text}");
}

#[test]
fn gen_then_allocate_roundtrip() {
    let dir = std::env::temp_dir().join(format!("iolap-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = iolap()
        .args(["gen", "--kind", "automotive", "--facts", "2000", "--seed", "3", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn gen");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("facts.csv").exists());
    assert!(dir.join("dim3_LOCATION.csv").exists());

    let out = iolap()
        .args(["allocate", "--data"])
        .arg(&dir)
        .args(["--algorithm", "transitive", "--epsilon", "0.05", "--rollup", "LOCATION:Region"])
        .output()
        .expect("spawn allocate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("loaded 2000 facts"), "{text}");
    assert!(text.contains("EDB:"), "{text}");
    assert!(text.contains("SUM by Region"), "{text}");

    // EDB export writes a parseable CSV.
    let edb_path = dir.join("edb.csv");
    let out = iolap()
        .args(["allocate", "--data"])
        .arg(&dir)
        .args(["--algorithm", "block", "--edb-out"])
        .arg(&edb_path)
        .output()
        .expect("spawn allocate with edb-out");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let edb_text = std::fs::read_to_string(&edb_path).unwrap();
    let header = edb_text.lines().next().unwrap();
    assert!(header.starts_with("fact_id,"), "{header}");
    assert!(edb_text.lines().count() > 1000);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = iolap().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}
