//! The paper's I/O analysis as executable assertions.
//!
//! Theorem 7 (Block): `3T(|S|·|C| + |I|)` I/Os — linear in the iteration
//! count `T`. Theorem 10 (Transitive): `2(|S||C|+|I|) + 5(|C|+|I|) +
//! 3|L|(T+1)` — *independent* of `T` when every component fits the buffer
//! (`|L| = 0`). These shapes, not the constants, are what the evaluation
//! (and this test) checks: Block's measured allocation I/O must grow
//! roughly linearly with pinned iteration counts, Transitive's must stay
//! flat, and Independent must exceed Block (the `7T·W|C|` sorts).

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{generate, GeneratorConfig};
use iolap::model::FactTable;

fn table() -> FactTable {
    // Big enough that C and I span hundreds of pages.
    generate(&GeneratorConfig::automotive(30_000, 13))
}

/// Allocation-phase I/O at a pinned iteration count, under a buffer much
/// smaller than the files (so caching cannot absorb the passes).
fn alloc_ios(table: &FactTable, alg: Algorithm, iters: u32) -> u64 {
    let policy = PolicySpec::em_count(0.0).with_max_iters(iters);
    let cfg = AllocConfig::builder().in_memory(96).build(); // 384 KB
    let run = allocate(table, &policy, alg, &cfg).unwrap();
    assert_eq!(run.report.iterations, iters);
    run.report.io_alloc.total()
}

#[test]
fn prefetch_keeps_accounted_io_bit_identical() {
    // The tentpole contract of the prefetch pipeline: enabling it must not
    // move a single page of *accounted* I/O in any phase of any algorithm —
    // read-ahead stages pages without charging them until the pass consumes
    // them, and write-behind defers its charge to the moment the synchronous
    // schedule would have written.
    let t = generate(&GeneratorConfig::automotive(8_000, 13));
    let policy = PolicySpec::em_count(0.0).with_max_iters(3);
    for alg in [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        let run_with = |depth: usize| {
            let cfg = AllocConfig::builder().in_memory(96).prefetch_depth(depth).build();
            allocate(&t, &policy, alg, &cfg).unwrap()
        };
        let off = run_with(0);
        let on = run_with(32);
        assert!(off.report.prefetch.is_none(), "{alg}: stats without a pipeline");
        assert!(on.report.prefetch.is_some(), "{alg}: no stats with a pipeline");
        assert_eq!(off.report.io_prep, on.report.io_prep, "{alg}: prep I/O diverged");
        assert_eq!(off.report.io_alloc, on.report.io_alloc, "{alg}: alloc I/O diverged");
        assert_eq!(off.report.io_edb, on.report.io_edb, "{alg}: EDB I/O diverged");
        assert_eq!(off.report.iterations, on.report.iterations, "{alg}: iterations diverged");
    }
}

#[test]
fn block_io_grows_linearly_with_iterations() {
    let t = table();
    let io2 = alloc_ios(&t, Algorithm::Block, 2);
    let io6 = alloc_ios(&t, Algorithm::Block, 6);
    let ratio = io6 as f64 / io2 as f64;
    // Theorem 7 predicts exactly 3.0; allow slack for cache edge effects.
    assert!((2.2..=3.8).contains(&ratio), "Block I/O ratio T=6/T=2 was {ratio:.2} ({io2} → {io6})");
}

#[test]
fn transitive_io_is_independent_of_iterations() {
    let t = table();
    let io2 = alloc_ios(&t, Algorithm::Transitive, 2);
    let io6 = alloc_ios(&t, Algorithm::Transitive, 6);
    let ratio = io6 as f64 / io2 as f64;
    // Theorem 10 with |L| = 0: identical I/O regardless of T.
    assert!(
        (0.9..=1.1).contains(&ratio),
        "Transitive I/O ratio T=6/T=2 was {ratio:.2} ({io2} → {io6})"
    );
}

#[test]
fn independent_io_dominates_block() {
    let t = table();
    let ind = alloc_ios(&t, Algorithm::Independent, 3);
    let blk = alloc_ios(&t, Algorithm::Block, 3);
    // Theorem 6 vs 7: 7T(W|C|+|I|) vs 3T(|S||C|+|I|); with W ≈ 10 and
    // |S| = 1 the gap is large.
    assert!(ind > 3 * blk, "Independent ({ind}) should dwarf Block ({blk})");
}

#[test]
fn block_io_tracks_theorem7_magnitude() {
    let t = table();
    let policy = PolicySpec::em_count(0.0).with_max_iters(4);
    let cfg = AllocConfig::builder().in_memory(96).build();
    let run = allocate(&t, &policy, Algorithm::Block, &cfg).unwrap();
    let c_pages = run.prep.cells.num_pages();
    let i_pages = run.prep.facts.num_pages();
    let s = run.report.num_table_sets.max(1);
    let t_iters = 4u64;
    let predicted = 3 * t_iters * (s * c_pages + i_pages);
    let measured = run.report.io_alloc.total();
    let ratio = measured as f64 / predicted as f64;
    // The same asymptotic term, within a small constant (our windows and
    // partial caching shift the constant a little).
    assert!(
        (0.4..=2.0).contains(&ratio),
        "measured {measured} vs Theorem 7 prediction {predicted} (ratio {ratio:.2})"
    );
}
