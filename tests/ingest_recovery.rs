//! Crash-recovery properties of the streaming-ingest pipeline: killing
//! the write path at an arbitrary point — after the WAL append, before
//! the fold, mid-append (torn tail), or around a background-compaction
//! publish — must recover an EDB whose allocation weights are
//! **f64-bit-identical** to a synchronous `apply_batch` replay of the
//! acknowledged batches, at the original batch granularity. A WAL with
//! flipped bits must refuse recovery with an error, never panic or
//! silently skip frames.

use iolap::core::maintain::{EdbMutation, MaintainableEdb};
use iolap::core::{allocate, Algorithm, AllocConfig, MutationWal, PolicySpec};
use iolap::model::{paper_example, Fact, FactId, FactTable};
use iolap::storage::{IoStats, TempDir};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

fn build_edb(table: &FactTable) -> MaintainableEdb {
    let policy = PolicySpec::em_count(0.01);
    let cfg = AllocConfig::builder().in_memory(256).build();
    let run = allocate(table, &policy, Algorithm::Transitive, &cfg).expect("allocation");
    MaintainableEdb::build(run, policy).expect("maintainable build")
}

/// Allocation weights keyed by fact, with each weight as raw bits and
/// cell lists sorted so segment-internal order (which a compaction may
/// legally change) cannot cause a false mismatch.
fn weight_bits(medb: &mut MaintainableEdb) -> BTreeMap<FactId, Vec<(Vec<u32>, u64)>> {
    let mut out = BTreeMap::new();
    for (id, entries) in medb.current_weights().expect("weights") {
        let mut cells: Vec<(Vec<u32>, u64)> =
            entries.iter().map(|(c, w)| (c.to_vec(), w.to_bits())).collect();
        cells.sort();
        out.insert(id, cells);
    }
    out
}

/// One abstract mutation op, resolved against the live id set at replay
/// time so every generated batch is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Update { pick: usize, measure: f64 },
    Insert { template: usize, measure: f64 },
    Delete { pick: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), -1e9f64..1e9).prop_map(|(pick, measure)| Op::Update { pick, measure }),
        (any::<usize>(), -1e9f64..1e9)
            .prop_map(|(template, measure)| Op::Insert { template, measure }),
        any::<usize>().prop_map(|pick| Op::Delete { pick }),
    ]
}

/// Resolve abstract ops into concrete mutations, updating the model id
/// set. Ops that cannot apply (empty id set) are dropped.
fn resolve(
    ops: &[Op],
    ids: &mut HashSet<FactId>,
    next_id: &mut FactId,
    templates: &[Fact],
) -> Vec<EdbMutation> {
    let mut muts = Vec::new();
    let mut batch_ids: Vec<FactId> = {
        let mut v: Vec<FactId> = ids.iter().copied().collect();
        v.sort_unstable();
        v
    };
    for op in ops {
        match op {
            Op::Update { pick, measure } => {
                if batch_ids.is_empty() {
                    continue;
                }
                let id = batch_ids[pick % batch_ids.len()];
                muts.push(EdbMutation::UpdateMeasure { fact_id: id, new_measure: *measure });
            }
            Op::Insert { template, measure } => {
                let t = &templates[template % templates.len()];
                let id = *next_id;
                *next_id += 1;
                ids.insert(id);
                batch_ids.push(id);
                muts.push(EdbMutation::Insert(Fact { id, dims: t.dims, measure: *measure }));
            }
            Op::Delete { pick } => {
                if batch_ids.is_empty() {
                    continue;
                }
                let id = batch_ids[pick % batch_ids.len()];
                batch_ids.retain(|&x| x != id);
                ids.remove(&id);
                muts.push(EdbMutation::Delete(id));
            }
        }
    }
    muts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Kill the pipeline after `committed` group commits — possibly with
    /// a torn (unsealed) tail and possibly mid-compaction — and recover.
    #[test]
    fn recovered_edb_is_bit_identical_to_synchronous_replay(
        scripts in proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..5),
        committed_pick in any::<usize>(),
        torn in 0usize..3,
        // 0 = no compaction, 1 = crash between merge and install,
        // 2 = crash right after install.
        compact_stage in 0u8..3,
    ) {
        let dir = TempDir::new("ingest-recovery").unwrap();
        let wal_path = dir.path().join("ingest.wal");
        let table = paper_example::table1();
        let templates = table.facts().to_vec();
        let mut ids: HashSet<FactId> = table.facts().iter().map(|f| f.id).collect();
        let mut next_id: FactId = ids.iter().max().unwrap() + 1;

        // Resolve every script up front so "committed" vs "lost" batches
        // come from one consistent mutation history.
        let batches: Vec<Vec<EdbMutation>> = scripts
            .iter()
            .map(|ops| resolve(ops, &mut ids, &mut next_id, &templates))
            .filter(|b| !b.is_empty())
            .collect();
        prop_assume!(!batches.is_empty());
        let committed = committed_pick % (batches.len() + 1);

        // --- The pipeline run, killed after `committed` group commits.
        {
            let (mut wal, rec) =
                MutationWal::open_or_create(&wal_path, IoStats::new()).unwrap();
            prop_assert!(rec.batches.is_empty());
            let mut pipeline = build_edb(&table);
            pipeline.set_background_compaction(true);
            pipeline.set_compaction_threshold(1);
            for batch in &batches[..committed] {
                wal.append_batch(batch).unwrap();
                wal.sync().unwrap();
                // The fold may or may not have happened before the
                // crash; recovery must not care. Fold anyway so the
                // compaction stages below have real tiers to merge.
                pipeline.apply_batch(batch).unwrap();
            }
            if compact_stage > 0 && pipeline.needs_compaction() {
                if let Some(plan) = pipeline.prepare_compaction().unwrap() {
                    let done = plan.run().unwrap();
                    if compact_stage == 2 {
                        // Crash right after the install published.
                        pipeline.install_compaction(done).unwrap();
                    }
                    // compact_stage == 1: merged file exists, install
                    // never ran — the crash point mid-publish.
                }
            }
            if torn > 0 && committed < batches.len() {
                // Mid-append crash: frames of the next batch land in the
                // log without a commit frame.
                for m in batches[committed].iter().take(torn) {
                    wal.append(m).unwrap();
                }
                wal.sync().unwrap();
            }
            // Drop = kill. Nothing below may use this state.
        }

        // --- Recovery: fresh EDB from the base table + WAL replay.
        let (_wal, rec) = MutationWal::open_or_create(&wal_path, IoStats::new()).unwrap();
        prop_assert_eq!(rec.batches.len(), committed, "exactly the committed batches replay");
        if committed < batches.len() {
            let expect_torn = torn.min(batches[committed].len()) as u64;
            prop_assert_eq!(rec.torn_frames, expect_torn, "torn tail accounted");
        }
        let mut recovered = build_edb(&table);
        for batch in &rec.batches {
            recovered.apply_batch(batch).unwrap();
        }

        // --- Reference: synchronous replay of the acknowledged history.
        let mut reference = build_edb(&table);
        for batch in &batches[..committed] {
            reference.apply_batch(batch).unwrap();
        }

        prop_assert_eq!(weight_bits(&mut recovered), weight_bits(&mut reference));
    }
}

#[test]
fn corrupted_wal_frame_is_an_error_not_a_panic_or_skip() {
    let dir = TempDir::new("ingest-corrupt").unwrap();
    let wal_path = dir.path().join("ingest.wal");
    {
        let (mut wal, _) = MutationWal::open_or_create(&wal_path, IoStats::new()).unwrap();
        for id in [1u64, 2] {
            wal.append_batch(&[EdbMutation::UpdateMeasure { fact_id: id, new_measure: 7.5 }])
                .unwrap();
            wal.sync().unwrap();
        }
    }
    // Flip one payload bit in the *first* frame. Later frames are still
    // intact, so this cannot be mistaken for a torn tail.
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[30] ^= 0x40;
    std::fs::write(&wal_path, &bytes).unwrap();

    let err = match MutationWal::open_or_create(&wal_path, IoStats::new()) {
        Err(e) => e,
        Ok((_, rec)) => {
            panic!("corrupt WAL must not open (recovered {} batches silently)", rec.batches.len())
        }
    };
    // The failure surfaces through the crate error chain (here via the
    // facade's conversion), with the offending frame named.
    let err = iolap::Error::from(err);
    assert!(format!("{err}").contains("frame"), "diagnostic names the frame: {err}");
}
