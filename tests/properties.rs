//! Property-based tests (proptest) over randomly generated hierarchies
//! and fact tables — the invariants of DESIGN.md §5.

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::hierarchy::{Hierarchy, HierarchyBuilder};
use iolap::model::{cmp_cells, Fact, FactTable, RegionBox, Schema};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random 2-or-3-level hierarchy with ≤ 12 leaves.
fn arb_hierarchy(tag: &'static str) -> impl Strategy<Value = Hierarchy> {
    (2u32..=12, 1u32..=4, any::<u64>()).prop_map(move |(leaves, groups, seed)| {
        let groups = groups.min(leaves);
        // Deterministic pseudo-random parent map from the seed.
        let parents: Vec<u32> = (0..leaves)
            .map(|i| {
                if i < groups {
                    i // guarantee non-empty parents
                } else {
                    ((seed >> (i % 48)) as u32 ^ i) % groups
                }
            })
            .collect();
        HierarchyBuilder::new(tag)
            .level("Leaf", leaves)
            .level("Group", groups)
            .parents(2, &parents)
            .build()
    })
}

/// Strategy: a schema plus a random fact table over it.
fn arb_table() -> impl Strategy<Value = FactTable> {
    (arb_hierarchy("D0"), arb_hierarchy("D1"), 1usize..40, any::<u64>()).prop_map(
        |(h0, h1, n, seed)| {
            let schema = Arc::new(Schema::new(vec![Arc::new(h0), Arc::new(h1)], "M"));
            let mut facts = Vec::with_capacity(n);
            let mut s = seed;
            let mut next = move || {
                // xorshift64
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for id in 1..=n as u64 {
                let mut dims = [0u32; 2];
                for (d, slot) in dims.iter_mut().enumerate() {
                    let h = schema.dim(d);
                    let r = next();
                    // ~60% precise per dimension, otherwise any node.
                    *slot = if r % 10 < 6 {
                        h.leaf_node((r >> 8) as u32 % h.num_leaves()).0
                    } else {
                        (r >> 8) as u32 % h.num_nodes()
                    };
                }
                let measure = 1.0 + (next() % 100) as f64;
                facts.push(Fact::new(id, &dims, measure));
            }
            FactTable::from_facts(schema, facts)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// P1 + P2 (exact form): with a *pinned* iteration count and no
    /// convergence freezing (ε = 0), every algorithm computes the same
    /// trajectory — weights match to within f64 associativity noise.
    #[test]
    fn algorithms_agree_exactly_at_pinned_iterations(table in arb_table()) {
        // Skip degenerate inputs with no candidate cells but imprecise
        // facts — prepare() rejects them by design.
        let has_precise = table.num_precise() > 0;
        prop_assume!(has_precise || table.num_imprecise() == 0);

        let policy = PolicySpec::em_count(0.0).with_max_iters(3);
        let cfg = AllocConfig::builder().in_memory(128).build();
        let mut reference = allocate(&table, &policy, Algorithm::Basic, &cfg).unwrap();
        reference.edb.validate_weights(1e-6).unwrap().unwrap();
        let want = reference.edb.weight_map().unwrap();

        for alg in [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
            let mut run = allocate(&table, &policy, alg, &cfg).unwrap();
            run.edb.validate_weights(1e-6).unwrap().unwrap();
            let got = run.edb.weight_map().unwrap();
            prop_assert_eq!(got.len(), want.len());
            for (id, entries) in &want {
                let g = &got[id];
                prop_assert_eq!(g.len(), entries.len(), "fact {}", id);
                for ((ca, wa), (cb, wb)) in entries.iter().zip(g.iter()) {
                    prop_assert_eq!(ca, cb);
                    prop_assert!((wa - wb).abs() < 1e-9,
                        "{} fact {}: {} vs {}", alg, id, wa, wb);
                }
            }
        }
    }

    /// P1 + P2 (converged form): with ε-convergence enabled, algorithms
    /// may freeze a cell one iteration apart when its relative change
    /// lands *exactly on* ε (floating-point summation order breaks the
    /// tie; Theorem 2 assumes exact arithmetic), so converged runs agree
    /// only up to the convergence slack — a few ε.
    #[test]
    fn converged_allocations_agree_within_epsilon_slack(table in arb_table()) {
        let has_precise = table.num_precise() > 0;
        prop_assume!(has_precise || table.num_imprecise() == 0);

        let eps = 0.01;
        let policy = PolicySpec::em_count(eps);
        let cfg = AllocConfig::builder().in_memory(128).build();
        let mut reference = allocate(&table, &policy, Algorithm::Basic, &cfg).unwrap();
        reference.edb.validate_weights(1e-6).unwrap().unwrap();
        let want = reference.edb.weight_map().unwrap();
        let tol = 6.0 * eps; // weights ≤ 1; freeze-tie slack is O(ε)

        for alg in [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
            let mut run = allocate(&table, &policy, alg, &cfg).unwrap();
            run.edb.validate_weights(1e-6).unwrap().unwrap();
            let got = run.edb.weight_map().unwrap();
            prop_assert_eq!(got.len(), want.len());
            for (id, entries) in &want {
                let g = &got[id];
                prop_assert_eq!(g.len(), entries.len(), "fact {}", id);
                for ((ca, wa), (cb, wb)) in entries.iter().zip(g.iter()) {
                    prop_assert_eq!(ca, cb);
                    prop_assert!((wa - wb).abs() < tol,
                        "{} fact {}: {} vs {}", alg, id, wa, wb);
                }
            }
        }
    }

    /// P8: region algebra — every cell reported inside a region's box is
    /// inside it per the hierarchy, and region sizes multiply.
    #[test]
    fn region_boxes_match_hierarchy_semantics(table in arb_table()) {
        let s = table.schema();
        for f in table.facts() {
            let bx: RegionBox = s.region(f);
            let mut n = 0u64;
            for cell in bx.cells() {
                prop_assert!(bx.contains_cell(&cell));
                n += 1;
            }
            prop_assert_eq!(n, bx.num_cells());
            let expected: u64 = (0..s.k())
                .map(|d| {
                    let node = iolap::hierarchy::NodeId(f.dims[d]);
                    s.dim(d).node(node).num_leaves() as u64
                })
                .product();
            prop_assert_eq!(bx.num_cells(), expected);
        }
    }

    /// P6: the external sorter sorts and preserves multiset + stability.
    #[test]
    fn external_sort_is_correct_and_stable(
        data in proptest::collection::vec((0u64..50, 0u64..1_000_000), 0..3_000),
        budget in 2usize..6,
    ) {
        use iolap::storage::{codec::U64PairCodec, external_sort, Env, SortBudget};
        let env = Env::builder("prop-sort").pool_pages(32).in_memory().build().unwrap();
        let mut f = env.create_file("in", U64PairCodec).unwrap();
        for (i, (k, _)) in data.iter().enumerate() {
            f.push(&(*k, i as u64)).unwrap();
        }
        let sorted = external_sort(&env, f, SortBudget::pages(budget), |v| v.0).unwrap();
        let mut out = Vec::new();
        sorted.read_batch(0, &mut out, data.len().max(1)).unwrap();
        prop_assert_eq!(out.len(), data.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "sortedness");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability");
            }
        }
        let mut keys: Vec<u64> = out.iter().map(|v| v.0).collect();
        keys.sort_unstable();
        let mut want: Vec<u64> = data.iter().map(|v| v.0).collect();
        want.sort_unstable();
        prop_assert_eq!(keys, want, "multiset preserved");
    }

    /// P7: R-tree query equals linear scan.
    #[test]
    fn rtree_matches_linear_scan(
        boxes in proptest::collection::vec((0u32..60, 0u32..60, 1u32..10, 1u32..10), 0..200),
        query in (0u32..60, 0u32..60, 1u32..30, 1u32..30),
    ) {
        use iolap::rtree::{Aabb, RTree};
        let items: Vec<(Aabb, u32)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (Aabb::new(&[x, y], &[x + w, y + h]), i as u32))
            .collect();
        let mut t = RTree::new(2);
        for (b, v) in &items {
            t.insert(*b, *v);
        }
        t.validate().unwrap();
        let q = Aabb::new(&[query.0, query.1], &[query.0 + query.2, query.1 + query.3]);
        let mut got = t.query(&q);
        got.sort_unstable();
        let mut want: Vec<u32> =
            items.iter().filter(|(b, _)| b.overlaps(&q)).map(|(_, v)| *v).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Bulk load agrees too.
        let bulk = RTree::bulk_load(2, items.clone());
        bulk.validate().unwrap();
        let mut got2 = bulk.query(&q);
        got2.sort_unstable();
        let mut want2: Vec<u32> =
            items.iter().filter(|(b, _)| b.overlaps(&q)).map(|(_, v)| *v).collect();
        want2.sort_unstable();
        prop_assert_eq!(got2, want2);
    }

    /// Cell-index box queries equal brute force on random sparse sets.
    #[test]
    fn cell_index_box_queries_match_brute_force(
        cells in proptest::collection::vec((0u32..20, 0u32..20, 0u32..20), 0..300),
        q in (0u32..20, 0u32..20, 0u32..20, 1u32..8, 1u32..8, 1u32..8),
    ) {
        use iolap::graph::CellSetIndex;
        use iolap::model::{CellKey, MAX_DIMS};
        let keys: Vec<CellKey> = cells
            .iter()
            .map(|&(x, y, z)| {
                let mut c = [0u32; MAX_DIMS];
                c[0] = x; c[1] = y; c[2] = z;
                c
            })
            .collect();
        let idx = CellSetIndex::from_unsorted(keys, 3);
        let mut lo = [0u32; MAX_DIMS];
        let mut hi = [0u32; MAX_DIMS];
        lo[0] = q.0; lo[1] = q.1; lo[2] = q.2;
        hi[0] = q.0 + q.3; hi[1] = q.1 + q.4; hi[2] = q.2 + q.5;
        let bx = RegionBox { lo, hi, k: 3 };
        let want: Vec<u64> = (0..idx.len())
            .filter(|&i| bx.contains_cell(idx.key(i)))
            .collect();
        let mut got = Vec::new();
        idx.for_each_in_box(&bx, |i| got.push(i));
        got.sort_unstable(); // visit order is rotation-dependent
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(idx.first_in_box(&bx), want.first().copied());
        prop_assert_eq!(idx.last_in_box(&bx), want.last().copied());
    }

    /// Canonical cell comparison is a total order consistent with sorting.
    #[test]
    fn cell_order_total(
        a in proptest::array::uniform8(0u32..5),
        b in proptest::array::uniform8(0u32..5),
    ) {
        let o1 = cmp_cells(&a, &b, 4);
        let o2 = cmp_cells(&b, &a, 4);
        prop_assert_eq!(o1, o2.reverse());
    }
}
