//! End-to-end tests for the observability layer: span traces, the
//! metrics registry behind `RunReport`, and the zero-cost guarantee that
//! a disabled handle changes nothing about the accounted page I/O.

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{generate, GeneratorConfig};
use iolap::model::paper_example;
use iolap::obs::{json, EventKind, Obs, RingSink};
use std::collections::HashMap;
use std::sync::Arc;

fn traced_run(alg: Algorithm) -> (iolap::core::AllocationRun, Arc<RingSink>, Obs) {
    let sink = Arc::new(RingSink::new(100_000));
    let obs = Obs::with_sink(sink.clone());
    let cfg = AllocConfig::builder().in_memory(64).obs(obs.clone()).build();
    let table = paper_example::table1();
    let run = allocate(&table, &PolicySpec::em_count(0.005), alg, &cfg).unwrap();
    (run, sink, obs)
}

#[test]
fn spans_nest_and_pair_correctly() {
    let (_run, sink, _obs) = traced_run(Algorithm::Transitive);
    let events = sink.events();
    assert!(!events.is_empty());

    // Every span_start has exactly one span_end with the same id, and the
    // end's parent matches the start's.
    let mut open: HashMap<u64, (String, u64)> = HashMap::new();
    let mut closed = 0usize;
    for e in &events {
        match e.kind {
            EventKind::SpanStart => {
                let prev = open.insert(e.span_id, (e.name.clone(), e.parent_id));
                assert!(prev.is_none(), "span id {} started twice", e.span_id);
            }
            EventKind::SpanEnd => {
                let (name, parent) =
                    open.remove(&e.span_id).unwrap_or_else(|| panic!("end without start: {e:?}"));
                assert_eq!(name, e.name, "span {} closed under a different name", e.span_id);
                assert_eq!(parent, e.parent_id);
                assert!(e.dur_us.is_some(), "span_end must carry a duration");
                closed += 1;
            }
            EventKind::Point => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");
    assert!(closed >= 4, "expected at least run/prep/passes/edb spans, got {closed}");

    // The phase spans all exist and nest under alloc.run.
    let start_of = |name: &str| {
        events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == name)
            .unwrap_or_else(|| panic!("missing span {name}"))
    };
    let run_span = start_of("alloc.run");
    assert_eq!(run_span.parent_id, 0, "alloc.run is the root span");
    for phase in ["alloc.prep", "alloc.passes", "alloc.edb"] {
        assert_eq!(start_of(phase).parent_id, run_span.span_id, "{phase} nests under alloc.run");
    }
    assert_eq!(
        start_of("prep.span_pass").parent_id,
        start_of("alloc.prep").span_id,
        "the span pass nests under the prep phase"
    );

    // Per-iteration fixpoint telemetry appears as points under the passes.
    let iters: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Point && e.name == "fixpoint.iteration")
        .collect();
    assert!(!iters.is_empty(), "no fixpoint.iteration points");
    for (i, p) in iters.iter().enumerate() {
        let fields: HashMap<_, _> = p.fields.iter().map(|(k, v)| (k.as_str(), v)).collect();
        assert!(fields.contains_key("algorithm"), "iteration point {i} lacks algorithm");
        assert!(fields.contains_key("iter"), "iteration point {i} lacks iter");
        assert!(fields.contains_key("max_rel_delta"), "iteration point {i} lacks max_rel_delta");
    }

    // Every event serializes to a line our own JSON reader accepts.
    for e in &events {
        json::parse(&e.to_jsonl()).unwrap_or_else(|err| panic!("bad JSONL {err}: {e:?}"));
    }
}

#[test]
fn counters_match_the_run_report() {
    let (run, _sink, obs) = traced_run(Algorithm::Transitive);
    let metrics = obs.metrics().expect("tracing handle exposes metrics");
    let r = &run.report;
    assert_eq!(metrics.counter("report.iterations").get(), u64::from(r.iterations));
    assert_eq!(metrics.counter("report.io.prep.reads").get(), r.io_prep.reads);
    assert_eq!(metrics.counter("report.io.prep.writes").get(), r.io_prep.writes);
    assert_eq!(metrics.counter("report.io.alloc.reads").get(), r.io_alloc.reads);
    assert_eq!(metrics.counter("report.io.edb.writes").get(), r.io_edb.writes);
    assert_eq!(metrics.counter("report.pool.hits").get(), r.pool_hits);
    assert_eq!(metrics.counter("report.pool.misses").get(), r.pool_misses);
    // The live pager counters cover at least the phase totals the report
    // snapshots (the EDB scan in `weight_map` etc. would only add more).
    let total_reads = r.io_prep.reads + r.io_alloc.reads + r.io_edb.reads;
    assert!(metrics.counter("pager.reads").get() >= total_reads);
    assert!(metrics.counter("pager.allocs").get() > 0);
    // Transitive's component census flows into the histogram registry.
    let stats = r.components.as_ref().expect("transitive census");
    assert_eq!(metrics.histogram("transitive.component_tuples").count(), stats.total);
    assert_eq!(metrics.gauge("report.components.total").get(), stats.total as i64);
}

#[test]
fn report_exports_round_trip_through_json_and_prometheus() {
    let (run, _sink, _obs) = traced_run(Algorithm::Block);
    let text = run.report.to_json();
    let parsed = json::parse(&text).expect("report JSON parses");
    let counters = parsed.get("counters").and_then(|j| j.as_object()).expect("counters object");
    let lookup = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(lookup("report.iterations"), u64::from(run.report.iterations));
    assert_eq!(lookup("report.io.alloc.reads"), run.report.io_alloc.reads);

    let prom = run.report.to_prometheus();
    assert!(prom.contains(&format!("iolap_report_iterations {}", run.report.iterations)));
    assert!(prom.contains(&format!("iolap_report_io_alloc_reads {}", run.report.io_alloc.reads)));
    assert!(prom.contains("iolap_report_num_cells"));
}

#[test]
fn segment_scan_counters_cover_every_page() {
    // The pruning counters partition the work: over any number of
    // queries, `edb.pages_pruned + edb.pages_read` must equal exactly the
    // page count a no-index scan would touch (total pages × queries) —
    // a page is either read or provably skipped, never both, never lost.
    use iolap::query::{aggregate_edb, AggFn, QueryBuilder};
    let (run, _sink, obs) = traced_run(Algorithm::Transitive);
    let views = run.edb.segments().unwrap();
    let total_pages: u64 = views.iter().map(|v| v.segment.num_pages()).sum();
    assert!(total_pages > 0);

    let schema = paper_example::schema();
    let queries = [
        QueryBuilder::new(schema.clone()).agg(AggFn::Sum).build().unwrap(),
        QueryBuilder::new(schema.clone()).at("Location", "MA").agg(AggFn::Count).build().unwrap(),
        QueryBuilder::new(schema.clone())
            .at("Automobile", "Sedan")
            .agg(AggFn::Avg)
            .build()
            .unwrap(),
    ];
    for q in &queries {
        aggregate_edb(&run.edb, q).unwrap();
    }

    let metrics = obs.metrics().expect("tracing handle exposes metrics");
    let read = metrics.counter("edb.pages_read").get();
    let pruned = metrics.counter("edb.pages_pruned").get();
    assert_eq!(
        read + pruned,
        total_pages * queries.len() as u64,
        "pruned + read must equal the no-index page count"
    );
    assert_eq!(metrics.gauge("edb.segments").get(), views.len() as i64);
    // The cumulative scan counters on the EDB itself agree with the
    // metrics registry.
    let io = run.edb.segment_io();
    assert_eq!(io.pages_read, read);
    assert_eq!(io.pages_pruned, pruned);
}

#[test]
fn disabled_handle_leaves_accounted_io_bit_identical() {
    // The zero-cost contract: a run with observability off and a run with
    // full tracing on account exactly the same page I/O, pool traffic and
    // iteration count — instrumentation observes, never perturbs.
    let table = generate(&GeneratorConfig::automotive(2_000, 13));
    let policy = PolicySpec::em_count(0.01);
    let reports = [Algorithm::Block, Algorithm::Transitive].map(|alg| {
        let plain_cfg = AllocConfig::builder().in_memory(48).build();
        let plain = allocate(&table, &policy, alg, &plain_cfg).unwrap().report;
        let traced_cfg = AllocConfig::builder()
            .in_memory(48)
            .obs(Obs::with_sink(Arc::new(RingSink::new(10_000))))
            .build();
        let traced = allocate(&table, &policy, alg, &traced_cfg).unwrap().report;
        (plain, traced)
    });
    for (plain, traced) in reports {
        assert_eq!(plain.io_prep, traced.io_prep);
        assert_eq!(plain.io_alloc, traced.io_alloc);
        assert_eq!(plain.io_edb, traced.io_edb);
        assert_eq!(plain.pool_hits, traced.pool_hits);
        assert_eq!(plain.pool_misses, traced.pool_misses);
        assert_eq!(plain.iterations, traced.iterations);
    }
}
