//! Edge-case and failure-injection tests across the pipeline.

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{generate, scaled, DatasetKind, GeneratorConfig};
use iolap::model::{paper_example, Fact, FactTable, Schema};
use std::sync::Arc;

fn tiny_schema() -> Arc<Schema> {
    paper_example::schema()
}

#[test]
fn empty_table_allocates_trivially() {
    let t = FactTable::new(tiny_schema());
    for alg in [Algorithm::Basic, Algorithm::Block, Algorithm::Transitive] {
        let run = allocate(
            &t,
            &PolicySpec::em_count(0.01),
            alg,
            &AllocConfig::builder().in_memory(64).build(),
        )
        .unwrap();
        assert_eq!(run.edb.num_entries(), 0, "{alg}");
        assert!(run.report.converged);
    }
}

#[test]
fn all_precise_table_yields_weight_one_entries_only() {
    let t = paper_example::table1();
    let precise_only =
        FactTable::from_facts(t.schema().clone(), t.facts().iter().take(5).cloned().collect());
    let mut run = allocate(
        &precise_only,
        &PolicySpec::em_count(0.01),
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(64).build(),
    )
    .unwrap();
    assert_eq!(run.edb.num_entries(), 5);
    run.edb.for_each(|e| assert_eq!(e.weight, 1.0)).unwrap();
}

#[test]
fn all_imprecise_without_candidates_is_rejected() {
    // Imprecise facts but zero precise facts → no candidate cells under
    // PreciseCells → a clear error, not a bogus EDB.
    let s = tiny_schema();
    let east = s.dim(0).node_by_name("East").unwrap().0;
    let sedan = s.dim(1).node_by_name("Sedan").unwrap().0;
    let t = FactTable::from_facts(s, vec![Fact::new(1, &[east, sedan], 10.0)]);
    let err = allocate(
        &t,
        &PolicySpec::em_count(0.01),
        Algorithm::Block,
        &AllocConfig::builder().in_memory(64).build(),
    );
    assert!(err.is_err());
    // …but the same table allocates fine under RegionUnion candidates.
    let run = allocate(
        &t,
        &PolicySpec::uniform(),
        Algorithm::Block,
        &AllocConfig::builder().in_memory(64).build(),
    )
    .unwrap();
    assert_eq!(run.edb.num_entries(), 4, "uniform over the 2×2 region");
}

#[test]
fn duplicate_regions_allocate_identically() {
    // Two imprecise facts with identical dimension values (same region):
    // both must appear in the EDB with identical weights.
    let t0 = paper_example::table1();
    let s = t0.schema().clone();
    let mut facts: Vec<Fact> = t0.facts().to_vec();
    let mut dup = facts[7].clone(); // p8 = (CA, ALL)
    dup.id = 99;
    facts.push(dup);
    let t = FactTable::from_facts(s, facts);
    let mut run = allocate(
        &t,
        &PolicySpec::em_count(0.001),
        Algorithm::Block,
        &AllocConfig::builder().in_memory(128).build(),
    )
    .unwrap();
    let m = run.edb.weight_map().unwrap();
    assert_eq!(m[&8].len(), m[&99].len());
    for (a, b) in m[&8].iter().zip(&m[&99]) {
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }
}

#[test]
fn one_page_buffer_still_correct() {
    // The degenerate buffer: everything spills constantly, every group is
    // its own table set. Results must not change.
    let t = generate(&GeneratorConfig::uniform(tiny_schema(), 120, 0.4, 5));
    let policy = PolicySpec::em_count(0.01);
    let mut big =
        allocate(&t, &policy, Algorithm::Block, &AllocConfig::builder().in_memory(4096).build())
            .unwrap();
    let mut small =
        allocate(&t, &policy, Algorithm::Block, &AllocConfig::builder().in_memory(8).build())
            .unwrap();
    let a = big.edb.weight_map().unwrap();
    let b = small.edb.weight_map().unwrap();
    assert_eq!(a.len(), b.len());
    for (id, ea) in &a {
        for ((ca, wa), (cb, wb)) in ea.iter().zip(&b[id]) {
            assert_eq!(ca, cb);
            assert!((wa - wb).abs() < 1e-9);
        }
    }
}

#[test]
fn single_fact_table() {
    let s = tiny_schema();
    let ma = s.dim(0).node_by_name("MA").unwrap().0;
    let civic = s.dim(1).node_by_name("Civic").unwrap().0;
    let t = FactTable::from_facts(s, vec![Fact::new(1, &[ma, civic], 42.0)]);
    let mut run = allocate(
        &t,
        &PolicySpec::em_count(0.01),
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(64).build(),
    )
    .unwrap();
    assert_eq!(run.edb.num_entries(), 1);
    let m = run.edb.weight_map().unwrap();
    assert_eq!(m[&1][0].1, 1.0);
    let stats = run.report.components.unwrap();
    assert_eq!(stats.total, 1);
    assert_eq!(stats.singleton_cells, 1);
}

#[test]
fn scaled_api_and_dataset_kind_parsing() {
    assert_eq!("automotive".parse::<DatasetKind>().unwrap(), DatasetKind::Automotive);
    assert_eq!("SYN".parse::<DatasetKind>().unwrap(), DatasetKind::Synthetic);
    assert!("weird".parse::<DatasetKind>().is_err());
    let t = scaled(DatasetKind::Automotive, 500, 3);
    assert_eq!(t.len(), 500);
    assert_eq!(t.num_imprecise(), 150);
}

#[test]
fn on_disk_backing_matches_in_memory() {
    // Same inputs, real files vs MemPager — identical EDB.
    let t = generate(&GeneratorConfig::uniform(tiny_schema(), 150, 0.3, 11));
    let policy = PolicySpec::em_count(0.01);
    let mut mem = allocate(
        &t,
        &policy,
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(256).build(),
    )
    .unwrap();
    let disk_cfg = AllocConfig::builder().buffer_pages(256).build();
    let mut disk = allocate(&t, &policy, Algorithm::Transitive, &disk_cfg).unwrap();
    let a = mem.edb.weight_map().unwrap();
    let b = disk.edb.weight_map().unwrap();
    assert_eq!(a.len(), b.len());
    for (id, ea) in &a {
        for ((ca, wa), (cb, wb)) in ea.iter().zip(&b[id]) {
            assert_eq!(ca, cb);
            assert!((wa - wb).abs() < 1e-12, "fact {id}");
        }
    }
}

#[test]
fn measure_zero_everywhere_falls_back_to_uniform_for_all_facts() {
    // Measure quantity with all-zero measures: every Γ is 0; every fact
    // takes the uniform fallback — weights still sum to 1.
    let s = tiny_schema();
    let mut t = paper_example::table1();
    let facts = FactTable::from_facts(
        s,
        t.facts_mut().iter().map(|f| Fact { measure: 0.0, ..f.clone() }).collect(),
    );
    let mut run = allocate(
        &facts,
        &PolicySpec::measure(),
        Algorithm::Basic,
        &AllocConfig::builder().in_memory(64).build(),
    )
    .unwrap();
    let checked = run.edb.validate_weights(1e-9).unwrap().unwrap();
    assert_eq!(checked, 14);
}

#[test]
fn runs_are_deterministic() {
    // Same seed + same config ⇒ bit-identical weights, twice over.
    let t1 = generate(&GeneratorConfig::synthetic(1_000, 99));
    let t2 = generate(&GeneratorConfig::synthetic(1_000, 99));
    assert_eq!(t1.facts(), t2.facts());
    let policy = PolicySpec::em_count(0.01);
    let mut a = allocate(
        &t1,
        &policy,
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(512).build(),
    )
    .unwrap();
    let mut b = allocate(
        &t2,
        &policy,
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(512).build(),
    )
    .unwrap();
    let wa = a.edb.weight_map().unwrap();
    let wb = b.edb.weight_map().unwrap();
    assert_eq!(wa.len(), wb.len());
    for (id, ea) in &wa {
        assert_eq!(ea, &wb[id], "fact {id}");
    }
}
