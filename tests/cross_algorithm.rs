//! Cross-algorithm equivalence on generated datasets: the Independent,
//! Block and Transitive algorithms must reach the Basic Algorithm's
//! fixpoint (Corollaries 1–2, Theorem 9) on data large enough to exercise
//! multi-page files, bin-packed table sets, chain covers, and the
//! component machinery.

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{generate, GeneratorConfig};
use iolap::model::FactTable;
use std::collections::HashMap;

type Weights = HashMap<u64, Vec<([u32; 8], f64)>>;

fn weights_of(table: &FactTable, policy: &PolicySpec, alg: Algorithm, pages: usize) -> Weights {
    let mut run =
        allocate(table, policy, alg, &AllocConfig::builder().in_memory(pages).build()).unwrap();
    assert!(run.report.converged, "{alg} did not converge");
    let mut m = run.edb.weight_map().unwrap();
    for v in m.values_mut() {
        v.sort_by_key(|e| e.0);
    }
    m
}

fn assert_same(a: &Weights, b: &Weights, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: fact counts differ");
    for (id, ea) in a {
        let eb = &b[id];
        assert_eq!(ea.len(), eb.len(), "{label}: fact {id} entry counts differ");
        for ((ca, wa), (cb, wb)) in ea.iter().zip(eb.iter()) {
            assert_eq!(ca, cb, "{label}: fact {id} cells differ");
            assert!((wa - wb).abs() < 1e-6, "{label}: fact {id} weights {wa} vs {wb}");
        }
    }
}

#[test]
fn automotive_slice_all_algorithms_agree() {
    let table = generate(&GeneratorConfig::automotive(4_000, 42));
    let policy = PolicySpec::em_count(0.01);
    let reference = weights_of(&table, &policy, Algorithm::Basic, 4096);
    for alg in [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        let got = weights_of(&table, &policy, alg, 4096);
        assert_same(&reference, &got, &format!("{alg}"));
    }
}

#[test]
fn synthetic_slice_with_alls_all_algorithms_agree() {
    // ALL values create wide regions, interleaved partition groups, and a
    // large connected component — the hard case.
    let table = generate(&GeneratorConfig::synthetic(3_000, 7));
    let policy = PolicySpec::em_count(0.02);
    let reference = weights_of(&table, &policy, Algorithm::Basic, 4096);
    for alg in [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        let got = weights_of(&table, &policy, alg, 4096);
        assert_same(&reference, &got, &format!("{alg}"));
    }
}

#[test]
fn tiny_buffers_do_not_change_results() {
    // Shrinking the buffer changes table sets, window sizes, sort runs and
    // the external-component fallback — but never the weights.
    let table = generate(&GeneratorConfig::synthetic(1_500, 3));
    let policy = PolicySpec::em_count(0.02);
    let big = weights_of(&table, &policy, Algorithm::Block, 4096);
    for pages in [16, 32, 64] {
        let small_block = weights_of(&table, &policy, Algorithm::Block, pages);
        assert_same(&big, &small_block, &format!("block@{pages}p"));
        let small_trans = weights_of(&table, &policy, Algorithm::Transitive, pages);
        assert_same(&big, &small_trans, &format!("transitive@{pages}p"));
    }
}

#[test]
fn transitive_components_match_bfs_reference() {
    use iolap::graph::{AllocationGraph, CellSetIndex};

    let table = generate(&GeneratorConfig::automotive(3_000, 5));
    let schema = table.schema().clone();
    let run = allocate(
        &table,
        &PolicySpec::em_count(0.05),
        Algorithm::Transitive,
        &AllocConfig::builder().in_memory(2048).build(),
    )
    .unwrap();
    let stats = run.report.components.unwrap();

    // Reference: explicit graph + BFS.
    let keys: Vec<_> = table.facts().iter().filter_map(|f| schema.cell_of(f)).collect();
    let index = CellSetIndex::from_unsorted(keys, schema.k());
    let regions: Vec<_> =
        table.facts().iter().filter(|f| !schema.is_precise(f)).map(|f| schema.region(f)).collect();
    let g = AllocationGraph::build(&index, &regions);
    let (cell_labels, fact_labels, _n) = g.components_bfs();

    // Count only components containing at least one cell (region-less
    // facts are excluded from Transitive's census — they are
    // unallocatable) plus BFS singletons that are cells.
    let mut bfs_components = std::collections::HashSet::new();
    for l in &cell_labels {
        bfs_components.insert(*l);
    }
    let mut sizes: HashMap<u32, u64> = HashMap::new();
    for l in &cell_labels {
        *sizes.entry(*l).or_insert(0) += 1;
    }
    for l in &fact_labels {
        if bfs_components.contains(l) {
            *sizes.entry(*l).or_insert(0) += 1;
        }
    }
    assert_eq!(stats.total, bfs_components.len() as u64, "component counts");
    assert_eq!(stats.largest, sizes.values().copied().max().unwrap_or(0), "largest component size");
}

#[test]
fn thread_count_does_not_change_the_edb() {
    // Theorem 2: the EM fixpoint is independent of evaluation order and
    // schedule, which is what makes the step-3 worker pool sound. Stronger
    // than weight equality up to ε: the coordinator re-sequences worker
    // results by component order, so the EDB must be *bit-identical* for
    // every thread count.
    let table = generate(&GeneratorConfig::synthetic(3_000, 11));
    let policy = PolicySpec::em_count(0.01);
    let edb_with = |threads: usize, pages: usize| {
        let cfg = AllocConfig::builder().in_memory(pages).threads(threads).build();
        let mut run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
        assert!(run.report.converged, "{threads} threads did not converge");
        run.edb.weight_map().unwrap()
    };
    for pages in [4096, 48] {
        // 48 pages also mixes in external (Block-fallback) components,
        // exercising the drain barrier.
        let reference = edb_with(1, pages);
        for threads in [2, 4, 8] {
            let got = edb_with(threads, pages);
            assert_eq!(reference.len(), got.len(), "{threads} threads @ {pages}p");
            for (id, ea) in &reference {
                let eb = &got[id];
                assert_eq!(ea.len(), eb.len(), "{threads} threads @ {pages}p: fact {id}");
                for ((ca, wa), (cb, wb)) in ea.iter().zip(eb.iter()) {
                    assert_eq!(ca, cb, "{threads} threads @ {pages}p: fact {id} cells");
                    assert_eq!(
                        wa.to_bits(),
                        wb.to_bits(),
                        "{threads} threads @ {pages}p: fact {id} weights {wa} vs {wb}"
                    );
                }
            }
        }
    }
}

#[test]
fn prefetch_does_not_change_the_edb() {
    // The prefetch pipeline overlaps I/O with computation but must not
    // perturb what any pass *sees*: every staged page is invalidated on
    // write-back and consumed only at the pin-miss it replaces, so the
    // materialized EDB must be bit-identical with the pipeline on — for
    // every algorithm, including buffer sizes that force external sorts
    // and Block-fallback components through the write-behind path.
    let table = generate(&GeneratorConfig::synthetic(3_000, 11));
    let policy = PolicySpec::em_count(0.01);
    let edb_with = |alg: Algorithm, depth: usize, pages: usize| {
        let cfg = AllocConfig::builder().in_memory(pages).prefetch_depth(depth).build();
        let mut run = allocate(&table, &policy, alg, &cfg).unwrap();
        assert!(run.report.converged, "{alg} with prefetch depth {depth} did not converge");
        run.edb.weight_map().unwrap()
    };
    for alg in [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        for pages in [4096, 48] {
            let reference = edb_with(alg, 0, pages);
            let got = edb_with(alg, 32, pages);
            assert_eq!(reference.len(), got.len(), "{alg} @ {pages}p");
            for (id, ea) in &reference {
                let eb = &got[id];
                assert_eq!(ea.len(), eb.len(), "{alg} @ {pages}p: fact {id}");
                for ((ca, wa), (cb, wb)) in ea.iter().zip(eb.iter()) {
                    assert_eq!(ca, cb, "{alg} @ {pages}p: fact {id} cells");
                    assert_eq!(
                        wa.to_bits(),
                        wb.to_bits(),
                        "{alg} @ {pages}p: fact {id} weights {wa} vs {wb}"
                    );
                }
            }
        }
    }
}

#[test]
fn measure_policy_agrees_across_algorithms() {
    let table = generate(&GeneratorConfig::automotive(2_000, 9));
    let policy = PolicySpec::em_measure(0.02);
    let reference = weights_of(&table, &policy, Algorithm::Basic, 4096);
    for alg in [Algorithm::Block, Algorithm::Transitive] {
        let got = weights_of(&table, &policy, alg, 4096);
        assert_same(&reference, &got, &format!("{alg}"));
    }
}
