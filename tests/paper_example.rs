//! End-to-end checks against the paper's running example (Table 1,
//! Figures 1–3, Examples 3–5): the one dataset where every intermediate
//! structure is published and hand-checkable.

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::model::paper_example;

fn cfg() -> AllocConfig {
    AllocConfig::builder().in_memory(256).build()
}

#[test]
fn table1_census() {
    let t = paper_example::table1();
    assert_eq!(t.len(), 14);
    assert_eq!(t.num_precise(), 5);
    assert_eq!(t.num_imprecise(), 9);
}

#[test]
fn figure2_structures_via_any_algorithm() {
    let t = paper_example::table1();
    let run = allocate(&t, &PolicySpec::em_count(0.01), Algorithm::Block, &cfg()).unwrap();
    // Figure 2: 5 cells, 9 imprecise facts, 12 edges; Figure 3: 5 summary
    // tables with partial-order width 3.
    assert_eq!(run.report.num_cells, 5);
    assert_eq!(run.report.num_imprecise, 9);
    assert_eq!(run.prep.num_edges, 12);
    assert_eq!(run.report.num_tables, 5);
    assert_eq!(run.report.width, 3);
}

#[test]
fn example5_components_via_transitive() {
    let t = paper_example::table1();
    let run = allocate(&t, &PolicySpec::em_count(0.01), Algorithm::Transitive, &cfg()).unwrap();
    let stats = run.report.components.expect("transitive reports components");
    assert_eq!(stats.total, 2, "Example 5: CC1 and CC2");
    // CC1 = {p1,p4,p5,p6,p8,p10,p11,p13,p14} → 6 imprecise facts + 3 cells.
    assert_eq!(stats.largest, 9);
}

#[test]
fn every_algorithm_produces_a_valid_edb() {
    let t = paper_example::table1();
    for alg in [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        for policy in [
            PolicySpec::em_count(0.005),
            PolicySpec::em_measure(0.005),
            PolicySpec::count(),
            PolicySpec::measure(),
            PolicySpec::uniform(),
        ] {
            let mut run = allocate(&t, &policy, alg, &cfg()).unwrap();
            let facts = run
                .edb
                .validate_weights(1e-9)
                .unwrap()
                .unwrap_or_else(|e| panic!("{alg} with {policy:?}: {e}"));
            assert_eq!(facts, 14, "{alg} {policy:?}");
        }
    }
}

#[test]
fn uniform_policy_spreads_over_whole_regions() {
    // Under Uniform + RegionUnion, p8 = (CA, ALL) must get ¼ on each of
    // its four possible completions — not just the two precise cells.
    let t = paper_example::table1();
    let mut run = allocate(&t, &PolicySpec::uniform(), Algorithm::Basic, &cfg()).unwrap();
    let m = run.edb.weight_map().unwrap();
    let w8 = &m[&8];
    assert_eq!(w8.len(), 4);
    for (_, w) in w8 {
        assert!((w - 0.25).abs() < 1e-12);
    }
}

#[test]
fn em_count_weights_match_hand_computation_after_one_iteration() {
    // One pinned iteration; the Δ¹ values are derived by hand in the
    // iolap-core inmem tests — here we check the resulting EDB weights of
    // p11 = (ALL, Civic): Δ¹(c1) = 2.5, Δ¹(c4) = 4.0, Γ = 6.5.
    let t = paper_example::table1();
    let policy = PolicySpec::em_count(0.0).with_max_iters(1);
    let mut run = allocate(&t, &policy, Algorithm::Block, &cfg()).unwrap();
    let m = run.edb.weight_map().unwrap();
    let w11: Vec<f64> = m[&11].iter().map(|(_, w)| *w).collect();
    assert!((w11[0] - 2.5 / 6.5).abs() < 1e-9, "{w11:?}");
    assert!((w11[1] - 4.0 / 6.5).abs() < 1e-9, "{w11:?}");
}
