//! Property tests for the materialized rollup lattice (DESIGN.md §2.18):
//! a lattice-planned answer is **f64-bit-identical** to the same plan
//! executed with forced leaf scans, across random hierarchies, regions,
//! rollup levels, and segment layouts — cold, after `/update` batches
//! (dirty cuboid cells recomputed), and after a compaction (cuboids
//! rebuilt against the re-encoded segment). The forced-leaf mode replays
//! the exact piece decomposition with fresh per-grain-cell scans, so any
//! bit divergence pinpoints a stale or mis-merged cuboid cell.

use iolap::core::maintain::EdbMutation;
use iolap::core::{
    allocate, Algorithm, AllocConfig, LatticeConfig, MaintainableEdb, PolicySpec, SegmentLayout,
};
use iolap::hierarchy::{Hierarchy, HierarchyBuilder};
use iolap::model::{Fact, FactTable, RegionBox, Schema, MAX_DIMS};
use iolap::query::{plan_aggregate_views, plan_rollup_views, AggFn, PlanMode};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a random 2-level hierarchy (plus ALL) with ≤ 12 leaves.
fn arb_hierarchy(tag: &'static str) -> impl Strategy<Value = Hierarchy> {
    (2u32..=12, 1u32..=4, any::<u64>()).prop_map(move |(leaves, groups, seed)| {
        let groups = groups.min(leaves);
        let parents: Vec<u32> = (0..leaves)
            .map(|i| if i < groups { i } else { ((seed >> (i % 48)) as u32 ^ i) % groups })
            .collect();
        HierarchyBuilder::new(tag)
            .level("Leaf", leaves)
            .level("Group", groups)
            .parents(2, &parents)
            .build()
    })
}

/// Strategy: a schema plus a random fact table over it (~60% precise
/// per dimension, as in `tests/properties.rs`).
fn arb_table() -> impl Strategy<Value = FactTable> {
    (arb_hierarchy("D0"), arb_hierarchy("D1"), 4usize..40, any::<u64>()).prop_map(
        |(h0, h1, n, seed)| {
            let schema = Arc::new(Schema::new(vec![Arc::new(h0), Arc::new(h1)], "M"));
            let mut facts = Vec::with_capacity(n);
            let mut s = seed | 1;
            let mut next = move || {
                // xorshift64
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for id in 1..=n as u64 {
                let mut dims = [0u32; 2];
                for (d, slot) in dims.iter_mut().enumerate() {
                    let h = schema.dim(d);
                    let r = next();
                    *slot = if r % 10 < 6 {
                        h.leaf_node((r >> 8) as u32 % h.num_leaves()).0
                    } else {
                        (r >> 8) as u32 % h.num_nodes()
                    };
                }
                let measure = 1.0 + (next() % 100) as f64;
                facts.push(Fact::new(id, &dims, measure));
            }
            FactTable::from_facts(schema, facts)
        },
    )
}

/// A random query box over the schema's leaf grid, derived from `seed`
/// (possibly empty on a dimension — the planner must tolerate that).
fn random_region(schema: &Schema, seed: u64) -> RegionBox {
    let mut lo = [0u32; MAX_DIMS];
    let mut hi = [0u32; MAX_DIMS];
    let mut s = seed | 1;
    for d in 0..schema.k() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let n = schema.dim(d).num_leaves();
        let a = (s as u32) % (n + 1);
        let b = ((s >> 32) as u32) % (n + 1);
        lo[d] = a.min(b);
        hi[d] = a.max(b);
    }
    RegionBox { lo, hi, k: schema.k() as u8 }
}

/// Assert Lattice and ForcedLeaf modes agree bit-for-bit on an aggregate
/// and on rollups along both dimensions (full space and diced).
fn assert_bit_identical(medb: &mut MaintainableEdb, seed: u64, phase: &str) {
    let schema = medb.schema().clone();
    let views = medb.snapshot_segments().expect("segments");
    let lattice = medb.snapshot_lattice().expect("lattice");
    let region = random_region(&schema, seed);

    for agg in [AggFn::Sum, AggFn::Count, AggFn::Avg] {
        let (a, _) =
            plan_aggregate_views(&views, Some(&lattice), &schema, &region, agg, PlanMode::Lattice)
                .expect("lattice aggregate");
        let (b, _) = plan_aggregate_views(
            &views,
            Some(&lattice),
            &schema,
            &region,
            agg,
            PlanMode::ForcedLeaf,
        )
        .expect("forced-leaf aggregate");
        assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "{phase}: agg sum bits {agg:?}");
        assert_eq!(a.count.to_bits(), b.count.to_bits(), "{phase}: agg count bits {agg:?}");
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "{phase}: agg value bits {agg:?}");
    }

    for dim in 0..schema.k() {
        for level in 1..=2u8 {
            for dice in [None, Some(&region)] {
                let (ra, sa) = plan_rollup_views(
                    &views,
                    Some(&lattice),
                    &schema,
                    dim,
                    level,
                    dice,
                    AggFn::Sum,
                    PlanMode::Lattice,
                )
                .expect("lattice rollup");
                let (rb, sb) = plan_rollup_views(
                    &views,
                    Some(&lattice),
                    &schema,
                    dim,
                    level,
                    dice,
                    AggFn::Sum,
                    PlanMode::ForcedLeaf,
                )
                .expect("forced-leaf rollup");
                assert_eq!(ra.len(), rb.len(), "{phase}: rollup row count");
                for (x, y) in ra.iter().zip(rb.iter()) {
                    assert_eq!(x.node, y.node, "{phase}: rollup node order");
                    assert_eq!(
                        x.result.sum.to_bits(),
                        y.result.sum.to_bits(),
                        "{phase}: rollup sum bits dim {dim} level {level} node {}",
                        x.name
                    );
                    assert_eq!(
                        x.result.count.to_bits(),
                        y.result.count.to_bits(),
                        "{phase}: rollup count bits dim {dim} level {level} node {}",
                        x.name
                    );
                }
                // Both modes walk the same plan, so the hit/miss split
                // must match exactly.
                assert_eq!(
                    (sa.cuboid_hits, sa.cuboid_misses),
                    (sb.cuboid_hits, sb.cuboid_misses),
                    "{phase}: plan shape differs between modes"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The lattice lifecycle keeps bit-identity: cold build, incremental
    /// dirty-cell recompute after an update batch, and whole-cuboid
    /// rebuild after compaction.
    #[test]
    fn lattice_plans_are_bit_identical_to_forced_leaf_scans(
        table in arb_table(),
        layout in 0usize..3,
        qseed in any::<u64>(),
    ) {
        let has_precise = table.num_precise() > 0;
        prop_assume!(has_precise || table.num_imprecise() == 0);

        let n = table.len() as u64;
        let policy = PolicySpec::em_count(0.01);
        let cfg = AllocConfig::builder().in_memory(256).build();
        let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
        let mut medb = MaintainableEdb::build(run, policy).unwrap();
        medb.set_segment_layout(match layout {
            0 => SegmentLayout::v1_canonical(),
            1 => SegmentLayout::v2_canonical(),
            _ => SegmentLayout::v2_morton(),
        });
        // Materialize cuboids even for the tiny segments these tables
        // produce.
        medb.set_lattice_config(LatticeConfig { min_segment_entries: 1, ..Default::default() });

        // Cold: lattice built fresh over the base segment.
        assert_bit_identical(&mut medb, qseed, "cold");

        // After an update batch: the touched boxes queue dirty cells and
        // the next lattice snapshot recomputes exactly those.
        let batch: Vec<EdbMutation> = (1..=n.min(5))
            .map(|id| EdbMutation::UpdateMeasure {
                fact_id: id,
                new_measure: 1.0 + ((qseed.wrapping_mul(id) >> 7) % 100) as f64,
            })
            .collect();
        medb.apply_batch(&batch).unwrap();
        assert_bit_identical(&mut medb, qseed.wrapping_add(1), "post-update");

        // After compaction: tiers merge into one re-encoded segment and
        // its cuboids are rebuilt whole.
        medb.set_compaction_threshold(1);
        let batch: Vec<EdbMutation> = (1..=n.min(3))
            .map(|id| EdbMutation::UpdateMeasure {
                fact_id: id,
                new_measure: 2.0 + ((qseed.wrapping_mul(id + 7) >> 9) % 100) as f64,
            })
            .collect();
        medb.apply_batch(&batch).unwrap();
        assert_bit_identical(&mut medb, qseed.wrapping_add(2), "post-compaction");
        prop_assert!(medb.num_compactions() > 0, "threshold 1 must have compacted");
    }
}
