//! The server's core guarantee: an HTTP answer is **bit-identical** to
//! querying the materialized EDB through the library's snapshot
//! machinery — cold cache, warm cache, and across an `/update`
//! round-trip — and updates invalidate only the cache entries whose
//! region overlaps what the batch touched.
//!
//! Allocation is deterministic (single-threaded Transitive), so a local
//! run with the same table/policy/config reproduces the server's EDB
//! exactly; Rust's shortest-round-trip f64 formatting then makes the
//! JSON wire lossless, and `to_bits` equality is a fair comparison. The
//! reference is [`EdbSnapshot::aggregate`], the canonical chunked fold
//! (per-view, per-dim0-slab partials folded in (view, slab) order) —
//! the same order every server reproduces regardless of how its
//! segments, update history, or the cluster's shard cuts partition the
//! entries.

use iolap::core::maintain::EdbMutation;
use iolap::core::{allocate, Algorithm, AllocConfig, MaintainableEdb, PolicySpec};
use iolap::model::paper_example;
use iolap::obs::json;
use iolap::query::{AggFn, QueryBuilder};
use iolap::serve::wire;
use iolap::serve::{http_roundtrip, EdbSnapshot, ServeConfig, Server, ServerHandle};
use std::net::TcpStream;
use std::sync::Arc;

fn policy() -> PolicySpec {
    PolicySpec::em_count(0.01)
}

fn alloc_cfg() -> AllocConfig {
    AllocConfig::builder().in_memory(256).build()
}

fn start_server() -> ServerHandle {
    Server::builder(paper_example::table1(), policy())
        .alloc(alloc_cfg())
        .config(ServeConfig::default())
        .bind("127.0.0.1:0")
        .expect("server starts")
}

/// `(value, sum, count)` bits from a `/query` JSON response, plus the
/// `cached` flag.
fn parse_agg(body: &str) -> (u64, u64, u64, bool) {
    let v = json::parse(body).expect("valid JSON");
    let f = |k: &str| v.get(k).and_then(|x| x.as_f64()).expect(k).to_bits();
    let cached = v.get("cached").and_then(|x| x.as_bool()).expect("cached");
    (f("value"), f("sum"), f("count"), cached)
}

fn server_query(conn: &mut TcpStream, at: &[(&str, &str)], agg: AggFn) -> (u64, u64, u64, bool) {
    let body = wire::query_body(at, agg, None);
    let (status, resp) = http_roundtrip(conn, "POST", "/query", &body).expect("roundtrip");
    assert_eq!(status, 200, "{resp}");
    parse_agg(&resp)
}

const QUERIES: &[(&[(&str, &str)], AggFn)] = &[
    (&[("Location", "MA")], AggFn::Sum),
    (&[("Location", "MA")], AggFn::Count),
    (&[("Location", "MA")], AggFn::Avg),
    (&[("Location", "West"), ("Automobile", "Sedan")], AggFn::Sum),
    (&[("Location", "East")], AggFn::Count),
    (&[], AggFn::Sum),
];

#[test]
fn server_answers_match_aggregate_edb_bit_for_bit() {
    let h = start_server();
    let mut conn = TcpStream::connect(h.addr()).expect("connect");

    // `/healthz` must expose the serving role and the current epoch.
    let (status, body) = http_roundtrip(&mut conn, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200, "{body}");
    let hv = json::parse(&body).unwrap();
    assert_eq!(hv.get("epoch").and_then(|e| e.as_u64()), Some(0), "{body}");
    assert_eq!(hv.get("role").and_then(|r| r.as_str()), Some("single"), "{body}");

    // The same allocation, through the library's snapshot machinery.
    let run = allocate(&paper_example::table1(), &policy(), Algorithm::Transitive, &alloc_cfg())
        .expect("local allocation");
    let mut medb = MaintainableEdb::build(run, policy()).expect("maintainable");
    let snap = EdbSnapshot {
        epoch: 0,
        schema: medb.schema().clone(),
        table: Arc::new(paper_example::table1()),
        segments: medb.snapshot_segments().expect("segments"),
        lattice: None,
    };

    for &(at, agg) in QUERIES {
        let mut b = QueryBuilder::new(paper_example::schema()).agg(agg);
        for (d, n) in at {
            b = b.at(d, n);
        }
        let q = b.build().expect("query");
        let local = snap.aggregate(&q.region, agg).expect("snapshot aggregate");

        // Cold: computed from the snapshot.
        let (v, s, c, cached) = server_query(&mut conn, at, agg);
        assert!(!cached, "{at:?} first ask must be a miss");
        assert_eq!(v, local.value.to_bits(), "{at:?} {agg:?} value");
        assert_eq!(s, local.sum.to_bits(), "{at:?} {agg:?} sum");
        assert_eq!(c, local.count.to_bits(), "{at:?} {agg:?} count");

        // Warm: served from the cache, still the same bits.
        let (v, s, c, cached) = server_query(&mut conn, at, agg);
        assert!(cached, "{at:?} second ask must hit");
        assert_eq!((v, s, c), (local.value.to_bits(), local.sum.to_bits(), local.count.to_bits()));
    }
    h.shutdown();
}

#[test]
fn update_round_trip_stays_bit_identical_to_the_library() {
    let h = start_server();
    let mut conn = TcpStream::connect(h.addr()).expect("connect");

    // Mirror the server's state through the maintenance machinery.
    let run = allocate(&paper_example::table1(), &policy(), Algorithm::Transitive, &alloc_cfg())
        .expect("local allocation");
    let mut medb = MaintainableEdb::build(run, policy()).expect("maintainable");

    let muts = vec![
        wire::MutationReq::Update { fact_id: 2, measure: 500.0 },
        wire::MutationReq::Insert { id: 50, dims: vec!["NY".into(), "F150".into()], measure: 42.0 },
    ];
    let (status, resp) =
        http_roundtrip(&mut conn, "POST", "/update", &wire::update_body(&muts)).expect("update");
    assert_eq!(status, 200, "{resp}");
    let v = json::parse(&resp).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1));

    // The epoch flip is visible through `/healthz` alongside the role.
    let (status, body) = http_roundtrip(&mut conn, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200, "{body}");
    let hv = json::parse(&body).unwrap();
    assert_eq!(hv.get("epoch").and_then(|e| e.as_u64()), Some(1), "{body}");
    assert_eq!(hv.get("role").and_then(|r| r.as_str()), Some("single"), "{body}");

    let ny_f150 = {
        let s = paper_example::schema();
        let l = s.dim(0).node_by_name("NY").unwrap().0;
        let a = s.dim(1).node_by_name("F150").unwrap().0;
        let mut dims = [0u32; iolap::model::MAX_DIMS];
        dims[0] = l;
        dims[1] = a;
        iolap::model::Fact { id: 50, dims, measure: 42.0 }
    };
    medb.apply_batch(&[
        EdbMutation::UpdateMeasure { fact_id: 2, new_measure: 500.0 },
        EdbMutation::Insert(ny_f150),
    ])
    .expect("local batch");

    // Local post-update view, through the same snapshot machinery the
    // server publishes from.
    let snap = EdbSnapshot {
        epoch: 1,
        schema: medb.schema().clone(),
        table: Arc::new(paper_example::table1()), // unused for EDB aggregates
        segments: medb.snapshot_segments().expect("segments"),
        lattice: None, // /query aggregates never consult the lattice
    };

    for &(at, agg) in QUERIES {
        let b = at
            .iter()
            .fold(QueryBuilder::new(paper_example::schema()).agg(agg), |b, (d, n)| b.at(d, n));
        let q = b.build().expect("query");
        let local = snap.aggregate(&q.region, agg).expect("snapshot aggregate");
        let (v, s, c, _) = server_query(&mut conn, at, agg);
        assert_eq!(v, local.value.to_bits(), "{at:?} {agg:?} value after update");
        assert_eq!(s, local.sum.to_bits(), "{at:?} {agg:?} sum after update");
        assert_eq!(c, local.count.to_bits(), "{at:?} {agg:?} count after update");
    }
    h.shutdown();
}

#[test]
fn updates_invalidate_only_overlapping_cache_entries() {
    let h = start_server();
    let mut conn = TcpStream::connect(h.addr()).expect("connect");

    // Fact 2 lives at (MA, Sierra) in component CC2 = {p2,p3,p7,p9,p12},
    // whose cells and fact regions all sit in the Truck half of the cube.
    // Updating it therefore touches boxes confined to Truck × Location:
    // a cached Sedan-half query must survive, a Truck-half query must go.
    let sedan: &[(&str, &str)] = &[("Automobile", "Sedan")];
    let truck: &[(&str, &str)] = &[("Automobile", "Truck")];
    let (.., cached) = server_query(&mut conn, sedan, AggFn::Sum);
    assert!(!cached);
    let (.., cached) = server_query(&mut conn, truck, AggFn::Sum);
    assert!(!cached);

    let muts = vec![wire::MutationReq::Update { fact_id: 2, measure: 300.0 }];
    let (status, resp) =
        http_roundtrip(&mut conn, "POST", "/update", &wire::update_body(&muts)).expect("update");
    assert_eq!(status, 200, "{resp}");
    let v = json::parse(&resp).unwrap();
    let invalidated = v.get("invalidated").and_then(|x| x.as_u64()).expect("invalidated");
    assert!(invalidated >= 1, "the Truck entry overlaps a touched box: {resp}");

    let (.., cached) = server_query(&mut conn, sedan, AggFn::Sum);
    assert!(cached, "Sedan-half entry is disjoint from every touched box and must survive");
    let (.., cached) = server_query(&mut conn, truck, AggFn::Sum);
    assert!(!cached, "Truck-half entry must have been invalidated");

    assert!(
        h.obs().counter("serve.cache.invalidated").unwrap().get() >= 1,
        "invalidation must be visible in the metrics"
    );

    // The segment layer's answer-path counters are exported over HTTP:
    // every served (non-cached) aggregate either read or pruned pages.
    let (status, prom) = http_roundtrip(&mut conn, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    for series in [
        "iolap_edb_pages_read",
        "iolap_edb_pages_pruned",
        "iolap_edb_bytes_read",
        "iolap_edb_segments",
        "iolap_edb_compression_ratio",
        "iolap_edb_cuboid_hits",
        "iolap_edb_cuboid_misses",
        "iolap_edb_cuboid_bytes",
    ] {
        assert!(prom.contains(series), "missing {series} in /metrics:\n{prom}");
    }
    let read = h.obs().counter("edb.pages_read").unwrap().get();
    let pruned = h.obs().counter("edb.pages_pruned").unwrap().get();
    assert!(read + pruned > 0, "served queries must account their page scans");
    // Every page read moved bytes through the exact-I/O meter, and the
    // published (default ColumnarV2) segments compress: the gauge reports
    // milli-ratio > 1000 = shrinking at rest.
    if read > 0 {
        assert!(
            h.obs().counter("edb.bytes_read").unwrap().get() > 0,
            "read pages must account their bytes"
        );
    }
    assert!(
        h.obs().gauge("edb.compression_ratio").unwrap().get() > 1000,
        "compressed default layout must report ratio above 1000 milli"
    );
    h.shutdown();
}
