//! Incremental EDB maintenance (Section 9 of the paper).
//!
//! Builds a maintainable Extended Database (Transitive run + R-tree over
//! component bounding boxes), applies update batches of growing size, and
//! compares the maintenance cost against rebuilding from scratch — the
//! experiment behind the paper's Figure 6.
//!
//! ```bash
//! cargo run --release --example incremental_updates
//! ```

use iolap::core::maintain::{FactUpdate, MaintainableEdb};
use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{generate, GeneratorConfig};
use std::time::Instant;

fn main() {
    let n_facts = 30_000u64;
    let table = generate(&GeneratorConfig::automotive(n_facts, 7));
    let policy = PolicySpec::em_measure(0.01);
    let cfg = AllocConfig::builder().in_memory(4096).build();

    // Build once (and time the full build as the rebuild baseline).
    let t0 = Instant::now();
    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    let rebuild_time = t0.elapsed();
    let stats = run.report.components.clone().unwrap();
    println!(
        "Built EDB over {n_facts} facts: {} components ({} singleton cells, largest {}), rebuild takes {rebuild_time:?}",
        stats.total, stats.singleton_cells, stats.largest
    );

    let mut maintained = MaintainableEdb::build(run, policy.clone()).unwrap();
    println!("R-tree indexes {} component bounding boxes\n", maintained.num_components());

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "updates", "components", "tuples", "maintain", "vs rebuild"
    );
    for pct in [0.1f64, 0.5, 1.0, 2.5, 5.0] {
        let n = ((n_facts as f64) * pct / 100.0).max(1.0) as u64;
        // Random-ish spread of fact ids (precise and imprecise mixed).
        let updates: Vec<FactUpdate> = (0..n)
            .map(|i| FactUpdate {
                fact_id: (i * 7919) % n_facts + 1,
                new_measure: 100.0 + i as f64,
            })
            .collect();
        let rep = maintained.apply_updates(&updates).unwrap();
        let ratio = rep.wall.as_secs_f64() / rebuild_time.as_secs_f64();
        println!(
            "{:>7.1}% {:>12} {:>12} {:>14?} {:>11.3}x",
            pct, rep.affected_components, rep.affected_tuples, rep.wall, ratio
        );
    }
    println!("\nRatios well below 1.0 reproduce the paper's conclusion: for");
    println!("reasonable update volumes, maintenance beats rebuilding.");
}
