//! The paper's motivating scenario: automotive warranty/repair records
//! where some facts are imprecise ("a particular repair took place in the
//! state Wisconsin, without specifying a city").
//!
//! Generates an automotive-like dataset (Table 2's dimensions at reduced
//! scale), allocates with EM-Count via the Transitive algorithm, and then
//! answers OLAP questions three classical ways (None / Contains /
//! Overlaps) and the allocation way — showing why allocation is the
//! principled middle ground.
//!
//! ```bash
//! cargo run --release --example automotive_warranty
//! ```

use iolap::core::{allocate, plan, prepare, Algorithm, AllocConfig, PolicySpec};
use iolap::datagen::{census, generate, GeneratorConfig};
use iolap::query::{
    aggregate_classical, aggregate_edb, drilldown, pivot, AggFn, Classical, QueryBuilder,
};

fn main() {
    // 40k facts keeps this example fast while exercising every code path.
    let cfg_data = GeneratorConfig::automotive(40_000, 2026);
    let table = generate(&cfg_data);
    println!("Generated automotive-like dataset:\n{}", census(&table));

    let policy = PolicySpec::em_count(0.01);
    let cfg = AllocConfig::builder().in_memory(4096).build();

    // Pre-run planning (the paper's "future work" estimators): how many
    // iterations will ε = 0.01 need, and is there a giant component?
    {
        let env = cfg.build_env("plan").unwrap();
        let mut prep = prepare(&table, &policy, &env, 256).unwrap();
        let est = plan(&mut prep, &policy, 0.2).unwrap();
        println!(
            "planner (20% sample): ~{} iterations, largest component ≈ {} tuples
",
            est.iterations, est.largest_component
        );
    }

    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).expect("allocation succeeds");
    println!("{}", run.report);

    let schema = table.schema().clone();

    // Drill down the LOCATION hierarchy: repairs per region.
    println!("Weighted repair COUNT per region (allocation-based):");
    let loc = schema.dim(3);
    for &region in loc.nodes_at_level(3) {
        let q =
            QueryBuilder::new(schema.clone()).at_node(3, region).agg(AggFn::Count).build().unwrap();
        let r = aggregate_edb(&run.edb, &q).unwrap();
        println!("  {:<22} {:>10.1}", loc.node_name(region), r.value);
    }
    println!();

    // Compare semantics on one region: classical answers bracket the
    // allocated one.
    let region = loc.nodes_at_level(3)[0];
    let q = QueryBuilder::new(schema.clone()).at_node(3, region).agg(AggFn::Count).build().unwrap();
    let none = aggregate_classical(&table, &q, Classical::None).value;
    let contains = aggregate_classical(&table, &q, Classical::Contains).value;
    let overlaps = aggregate_classical(&table, &q, Classical::Overlaps).value;
    let alloc = aggregate_edb(&run.edb, &q).unwrap().value;
    println!("COUNT(repairs) in {}:", loc.node_name(region));
    println!("  ignore imprecise (None)     = {none:>10.1}");
    println!("  only if contained (Contains)= {contains:>10.1}");
    println!("  whenever overlapping        = {overlaps:>10.1}");
    println!("  allocation-weighted (EDB)   = {alloc:>10.1}");
    println!("  (None ≤ allocated ≤ Overlaps always holds)");
    assert!(none <= alloc + 1e-6 && alloc <= overlaps + 1e-6);
    println!();

    // Average repair amount per brand make.
    println!("AVG(amount) for the first five makes:");
    let brand = schema.dim(1);
    for &make in brand.nodes_at_level(2).iter().take(5) {
        let q = QueryBuilder::new(schema.clone()).at_node(1, make).agg(AggFn::Avg).build().unwrap();
        let r = aggregate_edb(&run.edb, &q).unwrap();
        println!("  {:<22} {:>10.2}", brand.node_name(make), r.value);
    }
    println!();

    // Drill into the busiest region, then cross-tab it against quarters.
    let mut regions =
        drilldown(&run.edb, &schema, 3, schema.dim(3).all(), AggFn::Count).expect("drilldown");
    regions.sort_by(|a, b| b.result.value.total_cmp(&a.result.value));
    let busiest = &regions[0];
    println!(
        "Busiest region: {} ({:.0} weighted repairs). Its states:",
        busiest.name, busiest.result.value
    );
    let mut states = drilldown(&run.edb, &schema, 3, busiest.node, AggFn::Count).unwrap();
    states.sort_by(|a, b| b.result.value.total_cmp(&a.result.value));
    for s in states.iter().take(5) {
        println!("  {:<22} {:>10.1}", s.name, s.result.value);
    }
    println!();
    let p = pivot(&run.edb, &schema, 3, 3, 2, 3, None, AggFn::Count).expect("pivot");
    // Regions × Quarters is 10×5 — print the first rows.
    let rendered = p.render("Weighted repair COUNT, Region × Quarter:");
    for line in rendered.lines().take(7) {
        println!("{line}");
    }
}
