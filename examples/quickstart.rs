//! Quickstart: the paper's running example, end to end.
//!
//! Builds Table 1 (Figure 1's dimensions), runs EM-Count allocation with
//! each of the four algorithms, prints the run reports, and shows the
//! resulting Extended Database entries for a few facts.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::model::paper_example;
use iolap::query::{aggregate_edb, pivot, AggFn, QueryBuilder};

fn main() {
    let table = paper_example::table1();
    let schema = table.schema().clone();
    println!("Fact table (Table 1 of the paper):");
    for f in table.facts() {
        println!("  {}", schema.describe_fact(f));
    }
    println!();

    let policy = PolicySpec::em_count(0.005);
    let cfg = AllocConfig::builder().in_memory(256).build();

    // All four algorithms compute the same fixpoint.
    for alg in [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        let run = allocate(&table, &policy, alg, &cfg).expect("allocation succeeds");
        println!("{}", run.report);
    }

    // Inspect the Extended Database of one run.
    let mut run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
    println!("Extended Database: {} entries", run.edb.num_entries());
    let weights = run.edb.weight_map().unwrap();
    for id in [6u64, 8, 11] {
        let f = table.fact_by_id(id).unwrap();
        println!("  {} allocates to:", schema.describe_fact(f));
        for (cell, w) in &weights[&id] {
            let loc = schema.dim(0).node_name(schema.dim(0).leaf_node(cell[0]));
            let auto = schema.dim(1).node_name(schema.dim(1).leaf_node(cell[1]));
            println!("    ({loc}, {auto})  p = {w:.4}");
        }
    }
    println!();

    // Aggregation queries over the EDB.
    for (loc, auto) in [("East", "ALL"), ("West", "ALL"), ("ALL", "Sedan"), ("ALL", "Truck")] {
        let q = QueryBuilder::new(schema.clone())
            .at("Location", loc)
            .at("Automobile", auto)
            .agg(AggFn::Sum)
            .build()
            .unwrap();
        let r = aggregate_edb(&run.edb, &q).unwrap();
        println!(
            "SUM(Sales) over ({loc}, {auto}) = {:>8.2}  (weighted count {:.2})",
            r.value, r.count
        );
    }
    println!();

    // The multidimensional view of Figure 1, as a weighted cross-tab.
    let p = pivot(&run.edb, &schema, 0, 2, 1, 2, None, AggFn::Sum).unwrap();
    print!("{}", p.render("SUM(Sales), Region × Category:"));
}
