//! A gallery of allocation policies on one imprecise fact.
//!
//! Shows how the policy choice (Uniform / Count / Measure / EM-Count /
//! EM-Measure) changes the Extended Database — the design space of the
//! companion papers [5, 6] that the allocation-policy template abstracts.
//!
//! ```bash
//! cargo run --release --example policy_gallery
//! ```

use iolap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap::model::paper_example;

fn main() {
    let table = paper_example::table1();
    let schema = table.schema().clone();
    let cfg = AllocConfig::builder().in_memory(256).build();

    // Watch fact p8 = (CA, ALL; 160): its possible completions are the
    // four cells (CA, Civic..Sierra), of which only (CA, Civic) and
    // (CA, Sierra) hold precise facts (p4: 175, p5: 50).
    let watched = 8u64;
    let f = table.fact_by_id(watched).unwrap();
    println!("Policies applied to {}:\n", schema.describe_fact(f));

    let policies: Vec<(&str, PolicySpec)> = vec![
        ("uniform (whole region)", PolicySpec::uniform()),
        ("count (δ = #precise)", PolicySpec::count()),
        ("measure (δ = Σ measure)", PolicySpec::measure()),
        ("EM-count, ε = 0.005", PolicySpec::em_count(0.005)),
        ("EM-measure, ε = 0.005", PolicySpec::em_measure(0.005)),
    ];

    for (name, policy) in policies {
        let mut run = allocate(&table, &policy, Algorithm::Basic, &cfg).unwrap();
        let weights = run.edb.weight_map().unwrap();
        let entries = &weights[&watched];
        print!("{name:<26} →");
        for (cell, w) in entries {
            let auto = schema.dim(1).node_name(schema.dim(1).leaf_node(cell[1]));
            print!("  {auto}: {w:.3}");
        }
        println!("   [{} iterations]", run.report.iterations);
    }

    println!();
    println!("Uniform spreads over all 4 completions; count/measure use only");
    println!("the evidence cells; the EM policies additionally let overlapping");
    println!("imprecise facts (p10, p11, p13, p14) pull mass around until the");
    println!("fixpoint — the correlation-aware behaviour the paper argues for.");
}
