//! The `Iolap` entry point: open a dataset, configure a run, allocate.
//!
//! ```
//! use iolap::prelude::*;
//!
//! let table = iolap::model::paper_example::table1();
//! let mut run = Iolap::from_table(table)
//!     .config(AllocConfig::builder().in_memory(256).build())
//!     .policy(PolicySpec::em_count(0.005))
//!     .allocate(Algorithm::Transitive)
//!     .unwrap();
//! assert!(run.report.converged);
//! assert_eq!(run.edb.num_facts_allocated(), 14);
//! ```

use crate::error::{Error, Result, ResultExt};
use iolap_core::{allocate, Algorithm, AllocConfig, AllocationRun, PolicySpec};
use iolap_model::csv::{facts_from_csv, hierarchy_from_csv, parse_csv};
use iolap_model::{FactTable, Schema};
use iolap_obs::Obs;
use iolap_serve::{Server, ServerHandle};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A configured imprecise-OLAP database: one fact table plus the knobs of
/// a run. Construction is cheap — the storage environment is built (and
/// the paged files written) only when [`allocate`](Self::allocate) runs.
pub struct Iolap {
    schema: Arc<Schema>,
    table: FactTable,
    cfg: AllocConfig,
}

impl Iolap {
    /// Open a CSV dataset directory (as written by `iolap gen`):
    /// `dimN_<name>.csv` hierarchy files plus `facts.csv`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let (schema, table) =
            load_dataset(dir).context(format!("loading dataset from {}", dir.display()))?;
        Ok(Iolap { schema, table, cfg: AllocConfig::default() })
    }

    /// Wrap an in-memory fact table (tests, examples, generated data).
    pub fn from_table(table: FactTable) -> Self {
        let schema = table.schema().clone();
        Iolap { schema, table, cfg: AllocConfig::default() }
    }

    /// Replace the run configuration (see [`AllocConfig::builder`]).
    pub fn config(mut self, cfg: AllocConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the allocation policy (shorthand for rebuilding the config).
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.cfg.policy = Some(policy);
        self
    }

    /// Attach an observability handle for the next run.
    pub fn observe(mut self, obs: Obs) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Enable the asynchronous I/O prefetch pipeline with the given
    /// staging depth in pages (`0` disables; shorthand for rebuilding the
    /// config). Accounted page I/O is unchanged — only overlapped.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.cfg.prefetch = if depth == 0 {
            iolap_storage::PrefetchConfig::disabled()
        } else {
            iolap_storage::PrefetchConfig::depth(depth)
        };
        self
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The loaded fact table.
    pub fn table(&self) -> &FactTable {
        &self.table
    }

    /// The current run configuration.
    pub fn alloc_config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Run `algorithm` with the configured policy (default: EM-Count with
    /// ε = 0.01, the paper's baseline) and materialize the EDB.
    pub fn allocate(&self, algorithm: Algorithm) -> Result<AllocationRun> {
        let policy = self.cfg.policy.clone().unwrap_or_else(|| PolicySpec::em_count(0.01));
        allocate(&self.table, &policy, algorithm, &self.cfg)
            .context(format!("running {algorithm} allocation"))
    }

    /// Allocate (Transitive — required for incremental maintenance) and
    /// serve the materialized EDB over HTTP on `addr`. Blocks until the
    /// initial allocation is built and the socket is listening; the
    /// returned handle owns the server threads and shuts the server down
    /// when dropped. See `iolap_serve` for the endpoint surface.
    pub fn serve(&self, addr: &str, cfg: iolap_serve::ServeConfig) -> Result<ServerHandle> {
        let policy = self.cfg.policy.clone().unwrap_or_else(|| PolicySpec::em_count(0.01));
        Server::builder(self.table.clone(), policy)
            .alloc(self.cfg.clone())
            .config(cfg)
            .bind(addr)
            .map_err(|e| Error::data(format!("starting query server: {e}")))
    }
}

/// Load `dimN_*.csv` + `facts.csv` from a directory.
fn load_dataset(dir: &Path) -> Result<(Arc<Schema>, FactTable)> {
    let mut dim_files: Vec<(usize, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        let name = p.file_name().and_then(|s| s.to_str()).unwrap_or("").to_string();
        if let Some(rest) = name.strip_prefix("dim") {
            if let Some((idx, _)) = rest.split_once('_') {
                if let Ok(i) = idx.parse::<usize>() {
                    dim_files.push((i, p));
                }
            }
        }
    }
    if dim_files.is_empty() {
        return Err(Error::data("no dimN_*.csv files found"));
    }
    dim_files.sort();
    let mut dims = Vec::with_capacity(dim_files.len());
    for (i, p) in &dim_files {
        let text = std::fs::read_to_string(p)?;
        let rows = parse_csv(&text);
        let (header, body) =
            rows.split_first().ok_or_else(|| Error::data("empty dimension file"))?;
        let level_names: Vec<&str> = header.iter().map(String::as_str).collect();
        let body_text = body
            .iter()
            .map(|r| r.iter().map(|f| csv_quote(f)).collect::<Vec<_>>().join(","))
            .collect::<Vec<_>>()
            .join("\n");
        // Dimension name from the file name suffix.
        let name = p
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.split_once('_'))
            .map(|(_, n)| n.to_string())
            .unwrap_or_else(|| format!("dim{i}"));
        dims.push(Arc::new(hierarchy_from_csv(&name, &level_names, &body_text)?));
    }
    let schema = Arc::new(Schema::new(dims, "measure"));
    let facts_text = std::fs::read_to_string(dir.join("facts.csv"))?;
    let table = facts_from_csv_with_positional_dims(schema.clone(), &facts_text)?;
    Ok((schema, table))
}

/// `facts.csv` written by `iolap gen` uses the generated dimension names
/// in its header; re-ingested hierarchies are named after the files, so
/// map the columns positionally instead of by name.
fn facts_from_csv_with_positional_dims(schema: Arc<Schema>, text: &str) -> Result<FactTable> {
    // Rewrite the header to the schema's dimension names, then reuse the
    // by-name loader.
    let rows = parse_csv(text);
    let (header, _) = rows.split_first().ok_or_else(|| Error::data("empty facts.csv"))?;
    if header.len() != schema.k() + 2 {
        return Err(Error::data("facts.csv column count mismatch"));
    }
    let mut fixed = String::new();
    let dims: Vec<String> = (0..schema.k()).map(|d| schema.dim(d).name().to_string()).collect();
    fixed.push_str(&format!("id,{},measure\n", dims.join(",")));
    let mut first = true;
    for line in text.lines() {
        if first {
            first = false;
            continue;
        }
        fixed.push_str(line);
        fixed.push('\n');
    }
    Ok(facts_from_csv(schema, &fixed)?)
}

/// Re-quote a CSV field when it needs escaping.
pub(crate) fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    #[test]
    fn from_table_allocates_with_defaults() {
        let db = Iolap::from_table(paper_example::table1())
            .config(AllocConfig::builder().in_memory(256).build());
        let run = db.allocate(Algorithm::Block).unwrap();
        assert!(run.report.converged);
        assert_eq!(db.schema().k(), 2);
        assert_eq!(db.table().len(), 14);
    }

    #[test]
    fn policy_and_observe_thread_through() {
        let obs = Obs::metrics_only();
        let db = Iolap::from_table(paper_example::table1())
            .config(AllocConfig::builder().in_memory(256).build())
            .policy(PolicySpec::uniform())
            .observe(obs.clone());
        assert_eq!(db.alloc_config().policy, Some(PolicySpec::uniform()));
        let run = db.allocate(Algorithm::Transitive).unwrap();
        assert!(run.report.converged);
        assert!(obs.metrics().unwrap().counter("report.iterations").get() <= 1);
    }

    #[test]
    fn open_missing_directory_reports_context() {
        let err = match Iolap::open("/nonexistent/iolap-dataset") {
            Err(e) => e,
            Ok(_) => panic!("open of a missing directory must fail"),
        };
        let s = format!("{err}");
        assert!(s.contains("loading dataset from"), "{s}");
    }
}
