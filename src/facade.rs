//! The `Iolap` entry point: open a dataset, configure a run, allocate.
//!
//! ```
//! use iolap::prelude::*;
//!
//! let table = iolap::model::paper_example::table1();
//! let mut run = Iolap::from_table(table)
//!     .config(AllocConfig::builder().in_memory(256).build())
//!     .policy(PolicySpec::em_count(0.005))
//!     .allocate(Algorithm::Transitive)
//!     .unwrap();
//! assert!(run.report.converged);
//! assert_eq!(run.edb.num_facts_allocated(), 14);
//! ```

use crate::error::{Error, Result, ResultExt};
use iolap_core::{allocate, Algorithm, AllocConfig, AllocationRun, PolicySpec};
use iolap_model::{FactTable, Schema};
use iolap_obs::Obs;
use iolap_serve::{Server, ServerHandle};
use std::path::Path;
use std::sync::Arc;

/// A configured imprecise-OLAP database: one fact table plus the knobs of
/// a run. Construction is cheap — the storage environment is built (and
/// the paged files written) only when [`allocate`](Self::allocate) runs.
pub struct Iolap {
    schema: Arc<Schema>,
    table: FactTable,
    cfg: AllocConfig,
}

impl Iolap {
    /// Open a CSV dataset directory (as written by `iolap gen`):
    /// `dimN_<name>.csv` hierarchy files plus `facts.csv`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let (schema, table) =
            load_dataset(dir).context(format!("loading dataset from {}", dir.display()))?;
        Ok(Iolap { schema, table, cfg: AllocConfig::default() })
    }

    /// Wrap an in-memory fact table (tests, examples, generated data).
    pub fn from_table(table: FactTable) -> Self {
        let schema = table.schema().clone();
        Iolap { schema, table, cfg: AllocConfig::default() }
    }

    /// Replace the run configuration (see [`AllocConfig::builder`]).
    pub fn config(mut self, cfg: AllocConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the allocation policy (shorthand for rebuilding the config).
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.cfg.policy = Some(policy);
        self
    }

    /// Attach an observability handle for the next run.
    pub fn observe(mut self, obs: Obs) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Enable the asynchronous I/O prefetch pipeline with the given
    /// staging depth in pages (`0` disables; shorthand for rebuilding the
    /// config). Accounted page I/O is unchanged — only overlapped.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.cfg.prefetch = if depth == 0 {
            iolap_storage::PrefetchConfig::disabled()
        } else {
            iolap_storage::PrefetchConfig::depth(depth)
        };
        self
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The loaded fact table.
    pub fn table(&self) -> &FactTable {
        &self.table
    }

    /// The current run configuration.
    pub fn alloc_config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Run `algorithm` with the configured policy (default: EM-Count with
    /// ε = 0.01, the paper's baseline) and materialize the EDB.
    pub fn allocate(&self, algorithm: Algorithm) -> Result<AllocationRun> {
        let policy = self.cfg.policy.clone().unwrap_or_else(|| PolicySpec::em_count(0.01));
        allocate(&self.table, &policy, algorithm, &self.cfg)
            .context(format!("running {algorithm} allocation"))
    }

    /// Allocate (Transitive — required for incremental maintenance) and
    /// serve the materialized EDB over HTTP on `addr`. Blocks until the
    /// initial allocation is built and the socket is listening; the
    /// returned handle owns the server threads and shuts the server down
    /// when dropped. See `iolap_serve` for the endpoint surface.
    pub fn serve(&self, addr: &str, cfg: iolap_serve::ServeConfig) -> Result<ServerHandle> {
        let policy = self.cfg.policy.clone().unwrap_or_else(|| PolicySpec::em_count(0.01));
        Server::builder(self.table.clone(), policy)
            .alloc(self.cfg.clone())
            .config(cfg)
            .bind(addr)
            .map_err(|e| Error::data(format!("starting query server: {e}")))
    }
}

/// Load `dimN_*.csv` + `facts.csv` from a directory (the layout written
/// by [`iolap_model::csv::write_dataset`]).
fn load_dataset(dir: &Path) -> Result<(Arc<Schema>, FactTable)> {
    iolap_model::csv::read_dataset(dir).map_err(Error::data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    #[test]
    fn from_table_allocates_with_defaults() {
        let db = Iolap::from_table(paper_example::table1())
            .config(AllocConfig::builder().in_memory(256).build());
        let run = db.allocate(Algorithm::Block).unwrap();
        assert!(run.report.converged);
        assert_eq!(db.schema().k(), 2);
        assert_eq!(db.table().len(), 14);
    }

    #[test]
    fn policy_and_observe_thread_through() {
        let obs = Obs::metrics_only();
        let db = Iolap::from_table(paper_example::table1())
            .config(AllocConfig::builder().in_memory(256).build())
            .policy(PolicySpec::uniform())
            .observe(obs.clone());
        assert_eq!(db.alloc_config().policy, Some(PolicySpec::uniform()));
        let run = db.allocate(Algorithm::Transitive).unwrap();
        assert!(run.report.converged);
        assert!(obs.metrics().unwrap().counter("report.iterations").get() <= 1);
    }

    #[test]
    fn open_missing_directory_reports_context() {
        let err = match Iolap::open("/nonexistent/iolap-dataset") {
            Err(e) => e,
            Ok(_) => panic!("open of a missing directory must fail"),
        };
        let s = format!("{err}");
        assert!(s.contains("loading dataset from"), "{s}");
    }
}
