//! The unified workspace error: one type facade callers match on.
//!
//! The per-crate errors (`iolap_storage::StorageError`,
//! `iolap_core::CoreError`) stay as they are — internal layers keep their
//! precise types — but everything that crosses the `iolap` facade boundary
//! converts into [`Error`], which carries the original error as a
//! [`ErrorKind`] plus an optional operation-context string ("loading
//! dataset from ./data", "running transitive allocation", …).

use std::fmt;

/// What went wrong, preserving the originating layer's error.
#[derive(Debug)]
pub enum ErrorKind {
    /// Storage-layer failure (pager, buffer pool, external sort).
    Storage(iolap_storage::StorageError),
    /// Allocation-pipeline failure (prep, policies, algorithms).
    Core(iolap_core::CoreError),
    /// Data-format failure (CSV ingestion, query building).
    Data(String),
    /// OS-level I/O failure outside the paged storage layer (reading
    /// dataset files, writing exports).
    Io(std::io::Error),
}

/// The facade error type: an [`ErrorKind`] plus optional operation context.
#[derive(Debug)]
pub struct Error {
    /// What the facade was doing when the error occurred, if known.
    pub context: Option<String>,
    /// The underlying failure.
    pub kind: ErrorKind,
}

impl Error {
    /// Wrap a data-format failure message.
    pub fn data(msg: impl Into<String>) -> Self {
        Error { context: None, kind: ErrorKind::Data(msg.into()) }
    }

    /// Attach (or replace) the operation-context string.
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(ctx) = &self.context {
            write!(f, "while {ctx}: ")?;
        }
        match &self.kind {
            ErrorKind::Storage(e) => write!(f, "{e}"),
            ErrorKind::Core(e) => write!(f, "{e}"),
            ErrorKind::Data(msg) => write!(f, "{msg}"),
            ErrorKind::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ErrorKind::Storage(e) => Some(e),
            ErrorKind::Core(e) => Some(e),
            ErrorKind::Data(_) => None,
            ErrorKind::Io(e) => Some(e),
        }
    }
}

impl From<iolap_storage::StorageError> for Error {
    fn from(e: iolap_storage::StorageError) -> Self {
        Error { context: None, kind: ErrorKind::Storage(e) }
    }
}

impl From<iolap_core::CoreError> for Error {
    fn from(e: iolap_core::CoreError) -> Self {
        Error { context: None, kind: ErrorKind::Core(e) }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error { context: None, kind: ErrorKind::Io(e) }
    }
}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::data(msg)
    }
}

/// Result alias over the facade [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Extension to bolt operation context onto any fallible facade call.
pub trait ResultExt<T> {
    /// Convert the error into [`Error`] and attach `context`.
    fn context(self, context: impl Into<String>) -> Result<T>;
}

impl<T, E: Into<Error>> ResultExt<T> for std::result::Result<T, E> {
    fn context(self, context: impl Into<String>) -> Result<T> {
        self.map_err(|e| e.into().with_context(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_source() {
        let e: Error = iolap_storage::StorageError::InvalidConfig("zero pages".into()).into();
        assert!(matches!(e.kind, ErrorKind::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = iolap_core::CoreError::Config("bad".into()).into();
        assert!(matches!(e.kind, ErrorKind::Core(_)));

        let e: Error = "malformed csv".to_string().into();
        assert!(matches!(e.kind, ErrorKind::Data(_)));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn context_prefixes_display() {
        let e = Error::data("row 3 has 2 columns").with_context("loading facts.csv");
        let s = format!("{e}");
        assert!(s.starts_with("while loading facts.csv:"), "{s}");
        assert!(s.contains("row 3"), "{s}");
    }

    #[test]
    fn result_ext_attaches_context() {
        let r: std::result::Result<(), iolap_core::CoreError> =
            Err(iolap_core::CoreError::BadInput("no facts".into()));
        let e = r.context("running allocation").unwrap_err();
        assert_eq!(e.context.as_deref(), Some("running allocation"));
    }
}
