//! # iolap
//!
//! A full Rust reproduction of Burdick, Deshpande, Jayram, Ramakrishnan &
//! Vaithyanathan, *"Efficient Allocation Algorithms for OLAP Over
//! Imprecise Data"* (VLDB 2006).
//!
//! The facade gives one entry point — [`Iolap`] — plus a [`prelude`] so
//! applications import a single crate:
//!
//! ```
//! use iolap::prelude::*;
//!
//! // Table 1 of the paper: 5 precise + 9 imprecise facts.
//! let table = iolap::model::paper_example::table1();
//!
//! // Apply EM-Count allocation with the Transitive algorithm.
//! let mut run = Iolap::from_table(table)
//!     .config(AllocConfig::builder().in_memory(256).build())
//!     .policy(PolicySpec::em_count(0.005))
//!     .allocate(Algorithm::Transitive)
//!     .unwrap();
//! assert!(run.report.converged);
//!
//! // Query the Extended Database: total sales in the West region.
//! let q = QueryBuilder::new(iolap::model::paper_example::schema())
//!     .at("Location", "West")
//!     .agg(AggFn::Sum)
//!     .build()
//!     .unwrap();
//! let west = aggregate_edb(&run.edb, &q).unwrap();
//! assert!(west.value > 0.0);
//! ```
//!
//! To see *where inside a run* the time and I/O go, attach an
//! observability handle ([`obs::Obs`]) before allocating — spans, counters
//! and histograms cover the pager, buffer pool, external sort and every
//! allocation phase, and [`core::RunReport::to_json`] /
//! [`core::RunReport::to_prometheus`] export the end-of-run totals.
//!
//! The layer crates stay importable for lower-level work:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`hierarchy`] | `iolap-hierarchy` | Hierarchical domains (Def. 1) |
//! | [`model`] | `iolap-model` | Facts, cells, regions, EDB records (Defs. 2–4) |
//! | [`storage`] | `iolap-storage` | Pager, buffer pool, external sort |
//! | [`obs`] | `iolap-obs` | Structured tracing + metrics |
//! | [`graph`] | `iolap-graph` | Summary tables, chain cover, partitions, ccid map |
//! | [`rtree`] | `iolap-rtree` | R-tree for EDB maintenance (Section 9) |
//! | [`core`] | `iolap-core` | Policies + Basic/Independent/Block/Transitive |
//! | [`query`] | `iolap-query` | Allocation-weighted aggregation |
//! | [`datagen`] | `iolap-datagen` | The paper's datasets, synthesized |
//! | [`serve`] | `iolap-serve` | Concurrent HTTP query server over the EDB |

#![warn(missing_docs)]

mod error;
mod facade;

pub use error::{Error, ErrorKind, Result, ResultExt};
pub use facade::Iolap;

pub use iolap_cluster as cluster;
pub use iolap_core as core;
pub use iolap_datagen as datagen;
pub use iolap_graph as graph;
pub use iolap_hierarchy as hierarchy;
pub use iolap_model as model;
pub use iolap_obs as obs;
pub use iolap_query as query;
pub use iolap_rtree as rtree;
pub use iolap_serve as serve;
pub use iolap_storage as storage;

/// The single-import surface for applications: the [`Iolap`] entry point,
/// the run knobs, the query builders, and the observability handles.
pub mod prelude {
    pub use crate::error::{Error, ErrorKind, Result, ResultExt};
    pub use crate::facade::Iolap;
    pub use iolap_core::{
        allocate, Algorithm, AllocConfig, AllocConfigBuilder, AllocationRun, PolicySpec, RunReport,
    };
    pub use iolap_model::{Fact, FactTable, Schema};
    pub use iolap_obs::{JsonlSink, Metrics, Obs, RingSink};
    pub use iolap_query::{aggregate_edb, pivot, rollup, AggFn, QueryBuilder};
    pub use iolap_serve::{
        ServeConfig, ServeConfigBuilder, ServeError, Server, ServerBuilder, ServerHandle,
        ShedPolicy,
    };
    pub use iolap_storage::{PrefetchConfig, PrefetchStats};
}
