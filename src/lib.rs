//! # imprecise-olap
//!
//! A full Rust reproduction of Burdick, Deshpande, Jayram, Ramakrishnan &
//! Vaithyanathan, *"Efficient Allocation Algorithms for OLAP Over
//! Imprecise Data"* (VLDB 2006).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`hierarchy`] | `iolap-hierarchy` | Hierarchical domains (Def. 1) |
//! | [`model`] | `iolap-model` | Facts, cells, regions, EDB records (Defs. 2–4) |
//! | [`storage`] | `iolap-storage` | Pager, buffer pool, external sort |
//! | [`graph`] | `iolap-graph` | Summary tables, chain cover, partitions, ccid map |
//! | [`rtree`] | `iolap-rtree` | R-tree for EDB maintenance (Section 9) |
//! | [`core`] | `iolap-core` | Policies + Basic/Independent/Block/Transitive |
//! | [`query`] | `iolap-query` | Allocation-weighted aggregation |
//! | [`datagen`] | `iolap-datagen` | The paper's datasets, synthesized |
//!
//! ## Quickstart
//!
//! ```
//! use imprecise_olap::core::{allocate, Algorithm, AllocConfig, PolicySpec};
//! use imprecise_olap::model::paper_example;
//! use imprecise_olap::query::{aggregate_edb, AggFn, QueryBuilder};
//!
//! // Table 1 of the paper: 5 precise + 9 imprecise facts.
//! let table = paper_example::table1();
//!
//! // Apply EM-Count allocation with the Transitive algorithm.
//! let policy = PolicySpec::em_count(0.005);
//! let mut run = allocate(&table, &policy, Algorithm::Transitive,
//!                        &AllocConfig::in_memory(256)).unwrap();
//! assert!(run.report.converged);
//!
//! // Query the Extended Database: total sales in the West region.
//! let q = QueryBuilder::new(paper_example::schema())
//!     .at("Location", "West")
//!     .agg(AggFn::Sum)
//!     .build()
//!     .unwrap();
//! let west = aggregate_edb(&mut run.edb, &q).unwrap();
//! assert!(west.value > 0.0);
//! ```

#![warn(missing_docs)]

pub use iolap_core as core;
pub use iolap_datagen as datagen;
pub use iolap_graph as graph;
pub use iolap_hierarchy as hierarchy;
pub use iolap_model as model;
pub use iolap_query as query;
pub use iolap_rtree as rtree;
pub use iolap_storage as storage;
