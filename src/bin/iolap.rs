//! `iolap` — command-line front end for the imprecise-OLAP library.
//!
//! ```text
//! iolap demo
//!     Run the paper's running example end to end and print everything.
//!
//! iolap gen --kind automotive|synthetic --facts N --seed S --out DIR
//!     Generate a dataset and write it as CSV: one file per dimension
//!     (header = level names, one row per leaf) plus facts.csv.
//!
//! iolap allocate --data DIR [--algorithm basic|independent|block|transitive]
//!                [--policy em-count|em-measure|count|measure|uniform]
//!                [--epsilon E] [--buffer-kb KB] [--rollup DIM:LEVEL]
//!                [--edb-out FILE] [--trace-out FILE]
//!     Ingest the CSVs from DIR (as written by `gen`), run allocation,
//!     print the run report, optionally print roll-ups, dump the EDB,
//!     and/or write a JSONL span trace.
//!
//! iolap serve --data DIR [--addr HOST:PORT] [--policy P] [--epsilon E]
//!             [--buffer-kb KB] [--workers N] [--queue N] [--cache N]
//!             [--max-conns N] [--timeout-ms MS] [--idle-ms MS] [--role R]
//!     Allocate DIR with the Transitive algorithm and serve the EDB over
//!     HTTP (POST /query, /rollup, /update; GET /healthz, /metrics).
//!     The first stdout line is the actually-bound address (use
//!     `--addr HOST:0` for an OS-assigned port); progress chatter goes
//!     to stderr. Runs until stdin reaches EOF, then drains and exits.
//!
//! iolap shard --data DIR --out DIR --shards N [--policy P] [--epsilon E]
//!             [--buffer-kb KB]
//!     Partition the dataset into N shard directories (each a complete
//!     single-node data dir plus shard.json) and write cluster.json.
//!
//! iolap router --cluster DIR --shard ADDR[,ADDR...] [--shard ...]
//!              [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--max-conns N] [--timeout-ms MS] [--idle-ms MS]
//!     Scatter-gather router over a partitioned cluster: one --shard
//!     flag per shard index, each listing that shard's replica
//!     addresses. The first stdout line is the actually-bound address;
//!     runs until stdin reaches EOF.
//!
//! iolap query --data DIR [--region Dim=Node,...] [--rollup DIM@LEVEL]
//!             [--agg sum|count|avg] [--policy P] [--epsilon E]
//!             [--buffer-kb KB] [--stats]
//!     One-shot query: allocate DIR (Transitive), evaluate the aggregate
//!     over the region — or, with --rollup, the per-node rollup along
//!     DIM at LEVEL diced to the region — and print the server's JSON
//!     response shape to stdout. Region, level, and aggregate names
//!     resolve exactly as over HTTP, and answers are planned over the
//!     materialized cuboid lattice (--stats reports the cuboid
//!     hit/miss tallies next to the scan counters).
//! ```

use iolap::datagen::{scaled, DatasetKind};
use iolap::model::paper_example;
use iolap::prelude::*;
use iolap::query::render_rollup;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "usage: iolap demo | gen | allocate | serve | query | shard | router   \
     (see --help per command)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("allocate") => cmd_allocate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("router") => cmd_router(&args[1..]),
        // Asking for help is a successful run: usage on stdout, exit 0.
        Some("help" | "--help" | "-h") => {
            println!("{USAGE}");
            0
        }
        Some("version" | "--version" | "-V") => {
            println!("iolap {}", env!("CARGO_PKG_VERSION"));
            0
        }
        // A command we don't know (or no command) is an error: usage on
        // stderr, exit 2 (the conventional usage-error status).
        Some(other) => {
            eprintln!("iolap: unknown command {other:?}");
            eprintln!("{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Every value of a flag that may repeat (`--shard a --shard b` → [a, b]).
fn flags_all(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

// ---------------------------------------------------------------------------

fn cmd_demo() -> i32 {
    let table = paper_example::table1();
    let schema = table.schema().clone();
    println!("Paper running example (Table 1): {} facts", table.len());
    let run = Iolap::from_table(table)
        .config(AllocConfig::builder().in_memory(256).build())
        .policy(PolicySpec::em_count(0.005))
        .allocate(Algorithm::Transitive)
        .expect("allocation");
    println!("{}", run.report);
    let rows = rollup(&run.edb, &schema, 0, 2, None, AggFn::Sum).expect("rollup");
    print!("{}", render_rollup("SUM(Sales) by Region:", &rows));
    0
}

// ---------------------------------------------------------------------------

fn cmd_gen(args: &[String]) -> i32 {
    if has_flag(args, "--help") {
        eprintln!("iolap gen --kind automotive|synthetic --facts N --seed S --out DIR");
        return 0;
    }
    let kind: DatasetKind = flag(args, "--kind")
        .unwrap_or_else(|| "automotive".into())
        .parse()
        .expect("--kind automotive|synthetic");
    let n: u64 =
        flag(args, "--facts").unwrap_or_else(|| "10000".into()).parse().expect("--facts N");
    let seed: u64 = flag(args, "--seed").unwrap_or_else(|| "42".into()).parse().expect("--seed S");
    let out = PathBuf::from(flag(args, "--out").unwrap_or_else(|| "iolap-data".into()));
    std::fs::create_dir_all(&out).expect("creating output dir");

    let table = scaled(kind, n, seed);
    let schema = table.schema().clone();
    iolap::model::csv::write_dataset(&table, &out).expect("writing CSVs");
    println!("wrote {} facts over {} dimensions to {}", table.len(), schema.k(), out.display());
    0
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

// ---------------------------------------------------------------------------

fn cmd_allocate(args: &[String]) -> i32 {
    if has_flag(args, "--help") {
        eprintln!(
            "iolap allocate --data DIR [--algorithm A] [--policy P] [--epsilon E] \
             [--buffer-kb KB] [--threads N] [--prefetch N] [--rollup DIM:LEVEL] \
             [--edb-out FILE] [--trace-out FILE]"
        );
        return 0;
    }
    let dir = PathBuf::from(flag(args, "--data").expect("--data DIR required"));
    let algorithm: Algorithm = flag(args, "--algorithm")
        .unwrap_or_else(|| "transitive".into())
        .parse()
        .expect("--algorithm basic|independent|block|transitive");
    let epsilon: f64 =
        flag(args, "--epsilon").unwrap_or_else(|| "0.01".into()).parse().expect("--epsilon E");
    let policy = match flag(args, "--policy").unwrap_or_else(|| "em-count".into()).as_str() {
        "em-count" => PolicySpec::em_count(epsilon),
        "em-measure" => PolicySpec::em_measure(epsilon),
        "count" => PolicySpec::count(),
        "measure" => PolicySpec::measure(),
        "uniform" => PolicySpec::uniform(),
        other => {
            eprintln!("unknown policy {other:?}");
            return 2;
        }
    };
    let buffer_kb: u64 =
        flag(args, "--buffer-kb").unwrap_or_else(|| "4096".into()).parse().expect("--buffer-kb KB");
    let buffer_pages = ((buffer_kb * 1024) as usize).div_ceil(4096).max(8);
    let threads: usize =
        flag(args, "--threads").unwrap_or_else(|| "1".into()).parse().expect("--threads N");
    // Read-ahead depth in pages; 0 keeps the prefetch pipeline off.
    let prefetch: usize =
        flag(args, "--prefetch").unwrap_or_else(|| "0".into()).parse().expect("--prefetch N");

    // Ingest.
    let db = match Iolap::open(&dir) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let (schema, table) = (db.schema().clone(), db.table());
    println!(
        "loaded {} facts ({} imprecise) over {} dimensions",
        table.len(),
        table.num_imprecise(),
        schema.k()
    );

    let mut obs = Obs::disabled();
    if let Some(path) = flag(args, "--trace-out") {
        let sink = JsonlSink::create(&path).expect("--trace-out file");
        obs = Obs::with_sink(Arc::new(sink));
    }
    let cfg = AllocConfig::builder()
        .buffer_pages(buffer_pages)
        .threads(threads)
        .prefetch_depth(prefetch)
        .obs(obs.clone())
        .build();
    let mut run = db.config(cfg).policy(policy).allocate(algorithm).expect("allocation");
    obs.flush();
    println!("{}", run.report);
    println!("EDB: {} entries for {} facts", run.edb.num_entries(), run.edb.num_facts_allocated());

    if let Some(spec) = flag(args, "--rollup") {
        let (dim_name, level_name) = spec.split_once(':').expect("--rollup DIM:LEVEL");
        let d =
            (0..schema.k()).find(|&d| schema.dim(d).name() == dim_name).expect("known dimension");
        let h = schema.dim(d);
        let level = (1..=h.levels()).find(|&l| h.level_name(l) == level_name).expect("known level");
        let rows = rollup(&run.edb, &schema, d, level, None, AggFn::Sum).expect("rollup");
        // Print the top 20 by value.
        let mut rows = rows;
        rows.sort_by(|a, b| b.result.value.total_cmp(&a.result.value));
        rows.truncate(20);
        print!("{}", render_rollup(&format!("SUM by {level_name} (top 20):"), &rows));
    }

    if let Some(path) = flag(args, "--edb-out") {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("EDB out file"));
        writeln!(
            f,
            "fact_id,{},weight,measure",
            (0..schema.k()).map(|d| schema.dim(d).name().to_string()).collect::<Vec<_>>().join(",")
        )
        .unwrap();
        let schema2 = schema.clone();
        run.edb
            .for_each(|e| {
                let names: Vec<String> = (0..schema2.k())
                    .map(|d| quote(&schema2.dim(d).node_name(schema2.dim(d).leaf_node(e.cell[d]))))
                    .collect();
                writeln!(f, "{},{},{},{}", e.fact_id, names.join(","), e.weight, e.measure)
                    .unwrap();
            })
            .expect("EDB scan");
        println!("EDB written to {path}");
    }
    0
}

// ---------------------------------------------------------------------------

const QUERY_USAGE: &str = "iolap query --data DIR [--region Dim=Node,...] \
     [--rollup DIM@LEVEL] [--agg sum|count|avg] [--policy P] [--epsilon E] \
     [--buffer-kb KB] [--stats]";

fn cmd_query(args: &[String]) -> i32 {
    if has_flag(args, "--help") {
        eprintln!("{QUERY_USAGE}");
        return 0;
    }
    let Some(dir) = flag(args, "--data").or_else(|| flag(args, "--dir")) else {
        eprintln!("iolap query: --data DIR is required");
        eprintln!("{QUERY_USAGE}");
        return 2;
    };
    // `--region Location=MA,Automobile=Sedan`; unlisted dimensions mean
    // ALL, exactly as the server's `at` list.
    let mut at: Vec<(String, String)> = Vec::new();
    if let Some(spec) = flag(args, "--region") {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let Some((dim, node)) = part.split_once('=') else {
                eprintln!("iolap query: bad --region part {part:?} (want Dim=Node)");
                eprintln!("{QUERY_USAGE}");
                return 2;
            };
            at.push((dim.trim().to_string(), node.trim().to_string()));
        }
    }
    let agg =
        match iolap::serve::wire::parse_agg(&flag(args, "--agg").unwrap_or_else(|| "sum".into())) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("iolap query: {msg}");
                eprintln!("{QUERY_USAGE}");
                return 2;
            }
        };
    let epsilon: f64 =
        flag(args, "--epsilon").unwrap_or_else(|| "0.01".into()).parse().expect("--epsilon E");
    let policy = match flag(args, "--policy").unwrap_or_else(|| "em-count".into()).as_str() {
        "em-count" => PolicySpec::em_count(epsilon),
        "em-measure" => PolicySpec::em_measure(epsilon),
        "count" => PolicySpec::count(),
        "measure" => PolicySpec::measure(),
        "uniform" => PolicySpec::uniform(),
        other => {
            eprintln!("iolap query: unknown policy {other:?}");
            eprintln!("{QUERY_USAGE}");
            return 2;
        }
    };
    let buffer_kb: u64 =
        flag(args, "--buffer-kb").unwrap_or_else(|| "4096".into()).parse().expect("--buffer-kb KB");
    let buffer_pages = ((buffer_kb * 1024) as usize).div_ceil(4096).max(8);

    let db = match Iolap::open(&dir) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let schema = db.schema().clone();
    // Resolve the region before paying for allocation, so a typo'd node
    // name fails fast with a usage error.
    let region = match iolap::serve::snapshot::resolve_region(&schema, &at) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("iolap query: {msg}");
            eprintln!("{QUERY_USAGE}");
            return 2;
        }
    };
    // `--rollup Dim@Level` resolves names exactly as the server's
    // /rollup endpoint; also validated before allocation.
    let rollup_at = match flag(args, "--rollup") {
        Some(spec) => {
            let Some((dim, level)) = spec.split_once('@') else {
                eprintln!("iolap query: bad --rollup {spec:?} (want DIM@LEVEL)");
                eprintln!("{QUERY_USAGE}");
                return 2;
            };
            match iolap::serve::snapshot::resolve_level(&schema, dim.trim(), level.trim()) {
                Ok(dl) => Some(dl),
                Err(msg) => {
                    eprintln!("iolap query: {msg}");
                    eprintln!("{QUERY_USAGE}");
                    return 2;
                }
            }
        }
        None => None,
    };
    let run = match db
        .config(AllocConfig::builder().buffer_pages(buffer_pages).build())
        .policy(policy)
        .allocate(Algorithm::Transitive)
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    use iolap::query::{plan_aggregate, plan_rollup, PlanMode};
    let q = iolap::query::Query { region, agg };
    // Both shapes run through the lattice planner — the server's answer
    // paths — and print the matching wire response (epoch 0: freshly
    // allocated).
    let stats = match rollup_at {
        Some((dim, level)) => {
            let (rows, stats) = match plan_rollup(
                &run.edb,
                &schema,
                dim,
                level,
                Some(&q),
                agg,
                PlanMode::Lattice,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            };
            println!("{}", iolap::serve::wire::rollup_response(&rows, agg, 0));
            stats
        }
        None => {
            let (result, stats) = match plan_aggregate(&run.edb, &schema, &q, PlanMode::Lattice) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            };
            println!("{}", iolap::serve::wire::query_response(&result, agg, false, 0));
            stats
        }
    };
    if has_flag(args, "--stats") {
        // Counters as a second JSON line so the first line stays
        // byte-identical to the server's response shape.
        println!(
            "{{\"pages_read\":{},\"pages_pruned\":{},\"bytes_read\":{},\
             \"cuboid_hits\":{},\"cuboid_misses\":{}}}",
            stats.scan.pages_read,
            stats.scan.pages_pruned,
            stats.scan.bytes_read,
            stats.cuboid_hits,
            stats.cuboid_misses
        );
    }
    0
}

// ---------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> i32 {
    if has_flag(args, "--help") {
        eprintln!(
            "iolap serve --data DIR [--addr HOST:PORT] [--policy P] [--epsilon E] \
             [--buffer-kb KB] [--workers N] [--queue N] [--cache N] \
             [--max-conns N] [--timeout-ms MS] [--idle-ms MS] [--role single|shard] \
             [--no-wal] [--group-ms MS] [--group-frames N]"
        );
        return 0;
    }
    // --dir is accepted as an alias for --data (matches the README).
    let Some(dir) = flag(args, "--data").or_else(|| flag(args, "--dir")) else {
        eprintln!("iolap serve: --data DIR is required");
        return 2;
    };
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8642".into());
    let epsilon: f64 =
        flag(args, "--epsilon").unwrap_or_else(|| "0.01".into()).parse().expect("--epsilon E");
    let policy = match flag(args, "--policy").unwrap_or_else(|| "em-count".into()).as_str() {
        "em-count" => PolicySpec::em_count(epsilon),
        "em-measure" => PolicySpec::em_measure(epsilon),
        "count" => PolicySpec::count(),
        "measure" => PolicySpec::measure(),
        "uniform" => PolicySpec::uniform(),
        other => {
            eprintln!("unknown policy {other:?}");
            return 2;
        }
    };
    let buffer_kb: u64 =
        flag(args, "--buffer-kb").unwrap_or_else(|| "4096".into()).parse().expect("--buffer-kb KB");
    let buffer_pages = ((buffer_kb * 1024) as usize).div_ceil(4096).max(8);
    let workers: usize =
        flag(args, "--workers").unwrap_or_else(|| "4".into()).parse().expect("--workers N");
    let queue: usize =
        flag(args, "--queue").unwrap_or_else(|| "128".into()).parse().expect("--queue N");
    let cache: usize =
        flag(args, "--cache").unwrap_or_else(|| "4096".into()).parse().expect("--cache N");
    let max_conns: usize =
        flag(args, "--max-conns").unwrap_or_else(|| "8192".into()).parse().expect("--max-conns N");
    // --timeout-ms sets the read AND write socket timeouts; --idle-ms
    // bounds how long a parked keep-alive connection is kept.
    let timeout_ms: u64 = flag(args, "--timeout-ms")
        .unwrap_or_else(|| "5000".into())
        .parse()
        .expect("--timeout-ms MS");
    let idle_ms: u64 =
        flag(args, "--idle-ms").unwrap_or_else(|| "60000".into()).parse().expect("--idle-ms MS");

    let role = flag(args, "--role").unwrap_or_else(|| "single".into());
    // Streaming ingest: updates are WAL-durable by default (the log
    // lives next to the data); --group-ms > 0 acks at durable and folds
    // on the group-commit cadence instead of per request.
    let no_wal = has_flag(args, "--no-wal");
    let group_ms: u64 =
        flag(args, "--group-ms").unwrap_or_else(|| "0".into()).parse().expect("--group-ms MS");
    let group_frames: u64 = flag(args, "--group-frames")
        .unwrap_or_else(|| "256".into())
        .parse()
        .expect("--group-frames N");

    let db = match Iolap::open(&dir) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    eprintln!(
        "loaded {} facts ({} imprecise); allocating (transitive)...",
        db.table().len(),
        db.table().num_imprecise()
    );
    let mut builder = ServeConfig::builder()
        .workers(workers)
        .queue_depth(queue)
        .cache_capacity(cache)
        .max_connections(max_conns)
        .read_timeout(std::time::Duration::from_millis(timeout_ms))
        .write_timeout(std::time::Duration::from_millis(timeout_ms))
        .idle_timeout(std::time::Duration::from_millis(idle_ms))
        .role(&role)
        .group_window(std::time::Duration::from_millis(group_ms))
        .group_frames(group_frames);
    if !no_wal {
        builder = builder.wal_path(std::path::Path::new(&dir).join("ingest.wal"));
    }
    let serve_cfg = builder.build();
    let handle = match db
        .config(AllocConfig::builder().buffer_pages(buffer_pages).build())
        .policy(policy)
        .serve(&addr, serve_cfg)
    {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    // The actually-bound address is the FIRST stdout line (and the only
    // startup output on stdout) so scripts can `--addr host:0` and read
    // the OS-assigned port; everything else is stderr chatter.
    println!("{}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!("iolap serve: listening on http://{}", handle.addr());
    eprintln!("endpoints: POST /query /rollup /update; GET /healthz /metrics");
    eprintln!("(reading stdin; EOF shuts the server down)");

    wait_for_stdin_eof();
    eprintln!("iolap serve: shutting down");
    handle.shutdown();
    0
}

/// Block until stdin closes — works interactively (Ctrl-D), under a
/// FIFO (CI), and when the parent process exits.
fn wait_for_stdin_eof() {
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------

const SHARD_USAGE: &str = "iolap shard --data DIR --out DIR --shards N \
     [--policy P] [--epsilon E] [--buffer-kb KB]";

fn cmd_shard(args: &[String]) -> i32 {
    if has_flag(args, "--help") {
        eprintln!("{SHARD_USAGE}");
        return 0;
    }
    let Some(data) = flag(args, "--data").or_else(|| flag(args, "--dir")) else {
        eprintln!("iolap shard: --data DIR is required");
        eprintln!("{SHARD_USAGE}");
        return 2;
    };
    let Some(out) = flag(args, "--out") else {
        eprintln!("iolap shard: --out DIR is required");
        eprintln!("{SHARD_USAGE}");
        return 2;
    };
    let shards: usize =
        flag(args, "--shards").unwrap_or_else(|| "2".into()).parse().expect("--shards N");
    let epsilon: f64 =
        flag(args, "--epsilon").unwrap_or_else(|| "0.01".into()).parse().expect("--epsilon E");
    let policy = match flag(args, "--policy").unwrap_or_else(|| "em-count".into()).as_str() {
        "em-count" => PolicySpec::em_count(epsilon),
        "em-measure" => PolicySpec::em_measure(epsilon),
        "count" => PolicySpec::count(),
        "measure" => PolicySpec::measure(),
        "uniform" => PolicySpec::uniform(),
        other => {
            eprintln!("iolap shard: unknown policy {other:?}");
            eprintln!("{SHARD_USAGE}");
            return 2;
        }
    };
    let buffer_kb: u64 =
        flag(args, "--buffer-kb").unwrap_or_else(|| "4096".into()).parse().expect("--buffer-kb KB");
    let buffer_pages = ((buffer_kb * 1024) as usize).div_ceil(4096).max(8);
    let alloc = AllocConfig::builder().buffer_pages(buffer_pages).build();

    let manifest = match iolap::cluster::partition_dataset(
        std::path::Path::new(&data),
        std::path::Path::new(&out),
        shards,
        &policy,
        &alloc,
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("iolap shard: {e}");
            return 1;
        }
    };
    for m in &manifest.shards {
        println!(
            "{}: dim0 leaves [{}, {}) — {} entries",
            iolap::cluster::shard_dir_name(m.index),
            m.lo,
            m.hi,
            m.entries
        );
    }
    println!("wrote {} shard dirs + cluster.json under {out}", manifest.shards.len());
    0
}

// ---------------------------------------------------------------------------

const ROUTER_USAGE: &str = "iolap router --cluster DIR --shard ADDR[,ADDR...] \
     [--shard ...] [--addr HOST:PORT] [--workers N] [--queue N] \
     [--max-conns N] [--timeout-ms MS] [--idle-ms MS]";

fn cmd_router(args: &[String]) -> i32 {
    if has_flag(args, "--help") {
        eprintln!("{ROUTER_USAGE}");
        return 0;
    }
    let Some(cluster_dir) = flag(args, "--cluster") else {
        eprintln!("iolap router: --cluster DIR is required");
        eprintln!("{ROUTER_USAGE}");
        return 2;
    };
    // One --shard flag per shard index, in shard order; each value is a
    // comma-separated replica address list for that shard.
    let shard_specs = flags_all(args, "--shard");
    if shard_specs.is_empty() {
        eprintln!("iolap router: at least one --shard ADDR[,ADDR...] is required");
        eprintln!("{ROUTER_USAGE}");
        return 2;
    }
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8640".into());
    let workers: usize =
        flag(args, "--workers").unwrap_or_else(|| "4".into()).parse().expect("--workers N");
    let queue: usize =
        flag(args, "--queue").unwrap_or_else(|| "128".into()).parse().expect("--queue N");
    let max_conns: usize =
        flag(args, "--max-conns").unwrap_or_else(|| "8192".into()).parse().expect("--max-conns N");
    let timeout_ms: u64 = flag(args, "--timeout-ms")
        .unwrap_or_else(|| "5000".into())
        .parse()
        .expect("--timeout-ms MS");
    let idle_ms: u64 =
        flag(args, "--idle-ms").unwrap_or_else(|| "60000".into()).parse().expect("--idle-ms MS");

    let cfg = ServeConfig::builder()
        .workers(workers)
        .queue_depth(queue)
        .max_connections(max_conns)
        .read_timeout(std::time::Duration::from_millis(timeout_ms))
        .write_timeout(std::time::Duration::from_millis(timeout_ms))
        .idle_timeout(std::time::Duration::from_millis(idle_ms))
        .build();
    let mut builder = iolap::cluster::Router::builder(&cluster_dir).config(cfg);
    for (i, spec) in shard_specs.iter().enumerate() {
        let replicas: Vec<&str> =
            spec.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        builder = builder.shard_replicas(i, &replicas);
    }
    let handle = match builder.bind(&addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("iolap router: {e}");
            return 1;
        }
    };
    // Same contract as `iolap serve`: bound address is the first (and
    // only) startup line on stdout.
    println!("{}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "iolap router: routing {} shard groups on http://{}",
        shard_specs.len(),
        handle.addr()
    );
    eprintln!("endpoints: POST /query /rollup /update; GET /healthz /metrics");
    eprintln!("(reading stdin; EOF shuts the router down)");

    wait_for_stdin_eof();
    eprintln!("iolap router: shutting down");
    handle.shutdown();
    0
}
