//! Offline stand-in for the `serde` crate.
//!
//! The workspace never serializes through serde (no serde_json/bincode in
//! the dependency set); the derives on config structs are forward-looking
//! annotations. This stand-in supplies the trait names so `use serde::…`
//! resolves, and (with the `derive` feature) re-exports the no-op derive
//! macros from the vendored `serde_derive`.

/// Marker for types that could be serialized.
pub trait Serialize {}

/// Marker for types that could be deserialized.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
