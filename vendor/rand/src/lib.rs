//! Offline stand-in for the `rand` crate (0.10-style API surface).
//!
//! Provides exactly what this workspace uses: a deterministic, seedable
//! [`rngs::StdRng`] plus [`RngExt::random_range`] over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), which is fine here:
//! every consumer treats the stream as an arbitrary deterministic source.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator: uniformly random 64-bit words.
pub trait Rng {
    /// Next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`Rng`] (the `rand 0.10` naming).
pub trait RngExt: Rng {
    /// Sample uniformly from `range` (`a..b`, `a..=b`, integer or float).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self)
    }

    /// A uniformly random boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping is biased by at most
                // 2^-64 per draw — irrelevant for synthetic data generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + sample_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (sample_unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_samples_cover_the_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }
}
