//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`bench_function`, `benchmark_group` + `sample_size` + `finish`,
//! `Bencher::{iter, iter_batched}`, the `criterion_group!` /
//! `criterion_main!` macros) with a straightforward wall-clock harness:
//! per sample, the routine runs in a timed batch and the harness reports
//! min / median / mean per-iteration times. No statistical regression
//! analysis, plots, or HTML reports — numbers print to stdout.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup per measured batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs: large batches.
    SmallInput,
    /// Large routine inputs: one input per measurement.
    LargeInput,
    /// Exactly one routine call per batch.
    PerIteration,
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Honour `--bench` style argv noise from `cargo bench`; everything
    /// else is ignored by this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Print the run footer (upstream prints a summary; ours is a no-op).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate: one untimed warm-up call, then pick an iteration count
    // aiming at ~50 ms per sample (clamped to [1, 1024]).
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(50).as_nanos() / per_iter.as_nanos()).clamp(1, 1024) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_nanos[0];
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let mean = per_iter_nanos.iter().sum::<f64>() / per_iter_nanos.len() as f64;
    println!(
        "{name:<50} min {:>12}  median {:>12}  mean {:>12}  ({samples} samples × {iters} iters)",
        fmt_nanos(min),
        fmt_nanos(median),
        fmt_nanos(mean)
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iters() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
