//! Offline stand-in for the `bytes` crate.
//!
//! The codecs in this workspace only use the cursor-style [`Buf`] /
//! [`BufMut`] traits over byte slices (fixed-width little-endian record
//! fields), so that is all this stand-in provides. Reads and writes
//! advance the slice exactly like the real crate's impls for `&[u8]` and
//! `&mut [u8]`.

/// Read cursor over a buffer of bytes.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a buffer of bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Write a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        let taken = std::mem::take(self);
        let (head, tail) = taken.split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_slice() {
        let mut raw = [0u8; 23];
        {
            let mut w: &mut [u8] = &mut raw;
            w.put_u8(7);
            w.put_u16_le(300);
            w.put_u32_le(70_000);
            w.put_u64_le(1 << 40);
            w.put_f64_le(2.5);
            assert!(w.is_empty());
        }
        let mut r: &[u8] = &raw;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vec_appends() {
        let mut v = Vec::new();
        v.put_u32_le(9);
        assert_eq!(v, vec![9, 0, 0, 0]);
    }
}
