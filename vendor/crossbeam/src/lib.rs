//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses crossbeam for its multi-producer multi-consumer
//! channels (the Transitive worker pool). This stand-in implements the
//! [`channel`] module's `bounded`/`unbounded` API over a `Mutex<VecDeque>`
//! plus two condvars — the same blocking semantics, without the lock-free
//! internals (worker-pool traffic here is coarse-grained: one message per
//! connected component, so lock overhead is immaterial).

pub mod channel {
    //! MPMC channels: `bounded(cap)` and `unbounded()`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloning adds a sender.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel. Cloning adds a receiver.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Create a channel that holds at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap))
    }

    /// Create a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    drop(st);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate until the channel is closed and drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in() {
        let (tx, rx) = channel::bounded::<u64>(2);
        let (out_tx, out_rx) = channel::unbounded::<u64>();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let out = out_tx.clone();
                s.spawn(move || {
                    for v in rx.iter() {
                        out.send(v * 2).unwrap();
                    }
                });
            }
            drop(rx);
            drop(out_tx);
            for v in 0..100 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let mut got: Vec<u64> = out_rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_errors_after_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
