//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A generator of test values. Object-safe (the combinators require
/// `Self: Sized`), so `Box<dyn Strategy<Value = V>>` works for unions.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate an intermediate value, build a dependent strategy from it,
    /// and generate from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Retry until `f` accepts the value (bounded; panics if the filter
    /// rejects everything).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
