//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest its property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `any::<T>()`, `collection::{vec, hash_set}`, `array::uniform*`, the
//! `proptest!` / `prop_assert*!` / `prop_assume!` / `prop_oneof!` macros,
//! and a deterministic case runner.
//!
//! Deliberate simplifications versus upstream:
//! * **No shrinking.** A failing case reports its RNG seed instead of a
//!   minimized input; rerunning is deterministic for a given test name.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * Value distributions are plain uniform draws.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;

        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy producing any value of a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(<$t>::MIN..=<$t>::MAX)
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any { _marker: std::marker::PhantomData }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_range(0u8..=1) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any { _marker: std::marker::PhantomData }
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m = rng.random_range(-1.0f64..1.0);
            let e = rng.random_range(-60i32..60);
            m * (e as f64).exp2()
        }
    }

    impl Arbitrary for f64 {
        type Strategy = Any<f64>;
        fn arbitrary() -> Any<f64> {
            Any { _marker: std::marker::PhantomData }
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Strategies for collections of strategy-generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive element-count range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for a `Vec` of elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` with a size drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for a `HashSet` of elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `HashSet` with a size drawn from `size`. Collisions are retried a
    /// bounded number of times; a saturated value domain yields a smaller
    /// set (never an infinite loop).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < 16 * target + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod array {
    //! Fixed-size arrays of strategy-generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]`.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of the given arity with elements from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }

    uniform_fns!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8
    );
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `#[test] fn name(binding in strategy, …)`
/// runs `ProptestConfig::cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand one test fn at a time (recursive muncher).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &__cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let ($($pat,)+) =
                        ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Assert inside a proptest body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion `left == right` failed\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion `left == right` failed: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l != *__r, "assertion `left != right` failed\n  both: {:?}", __l);
    }};
}

/// Discard the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
