//! The deterministic case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// How a single case ended other than success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; generate a fresh one.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(…)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 4096 }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0100_01b3);
    }
    h
}

/// Run `case` until `cfg.cases` successes. Each case's RNG is seeded from
/// the test's full path and a stream counter, so runs are reproducible and
/// independent of execution order. An environment override
/// `PROPTEST_CASES=N` rescales the case count (useful in CI smoke runs).
pub fn run(
    cfg: &ProptestConfig,
    test_path: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    let base = fnv1a(test_path);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut stream = 0u64;
    while successes < cases {
        let seed = base ^ (stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17);
        stream += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= cfg.max_global_rejects,
                    "{test_path}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_path}: property failed on case {} (rng seed {seed:#018x})\n{msg}",
                    successes + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn runner_counts_successes() {
        let mut n = 0;
        run(&ProptestConfig { cases: 10, ..Default::default() }, "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_panics_on_failure() {
        run(&ProptestConfig::default(), "t", |_| Err(TestCaseError::fail("nope")));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_in_range(x in 10u32..20, v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_flat_map_compose(
            v in (1usize..4).prop_flat_map(|n| crate::collection::vec(
                prop_oneof![Just(1u8), Just(2u8), 5u8..7], n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2 || b == 5 || b == 6));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
