//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace actually serializes through serde (there is
//! no serde_json / bincode in the sanctioned dependency set) — the derives
//! only annotate config structs for future use. The stand-in accepts the
//! derive attributes and expands to nothing, so annotated code compiles
//! unchanged.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
