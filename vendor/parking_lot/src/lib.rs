//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guards. Both are thin
//! wrappers over the `std::sync` primitives that recover the inner value
//! on poison (matching `parking_lot`'s no-poisoning semantics).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Panicked holders do not
    /// poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
