//! Axis-aligned bounding boxes over integer coordinates.

use crate::MAX_DIMS;

/// A k-dimensional half-open box `∏ [lo_d, hi_d)` of `u32` coordinates.
///
/// Degenerate boxes (`lo_d == hi_d` in some dimension) are empty and never
/// overlap anything; construction enforces `lo ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aabb {
    /// Inclusive lower corner (entries ≥ `k` are zero).
    pub lo: [u32; MAX_DIMS],
    /// Exclusive upper corner.
    pub hi: [u32; MAX_DIMS],
    /// Dimensionality.
    pub k: u8,
}

impl Aabb {
    /// Box from corner slices of equal length `k ≤ MAX_DIMS`.
    pub fn new(lo: &[u32], hi: &[u32]) -> Self {
        assert_eq!(lo.len(), hi.len());
        assert!(lo.len() <= MAX_DIMS);
        let mut l = [0u32; MAX_DIMS];
        let mut h = [0u32; MAX_DIMS];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        for d in 0..lo.len() {
            assert!(l[d] <= h[d], "inverted box in dimension {d}");
        }
        Aabb { lo: l, hi: h, k: lo.len() as u8 }
    }

    /// An empty box (useful as a fold identity via [`Aabb::union`]).
    pub fn empty(k: usize) -> Self {
        let mut lo = [0u32; MAX_DIMS];
        let hi = [0u32; MAX_DIMS];
        for l in lo.iter_mut().take(k) {
            *l = u32::MAX;
        }
        Aabb { lo, hi, k: k as u8 }
    }

    /// Dimensionality.
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Is the box empty (zero extent in any dimension)?
    pub fn is_empty(&self) -> bool {
        (0..self.k()).any(|d| self.lo[d] >= self.hi[d])
    }

    /// Volume as `f64` (cells covered); `0.0` for empty boxes.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..self.k()).map(|d| (self.hi[d] - self.lo[d]) as f64).product()
    }

    /// Half-perimeter (sum of extents) — cheaper tie-breaker than volume.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..self.k()).map(|d| (self.hi[d] - self.lo[d]) as f64).sum()
    }

    /// Do the boxes share any cell?
    pub fn overlaps(&self, other: &Aabb) -> bool {
        debug_assert_eq!(self.k, other.k);
        if self.is_empty() || other.is_empty() {
            return false;
        }
        (0..self.k()).all(|d| self.lo[d] < other.hi[d] && other.lo[d] < self.hi[d])
    }

    /// Does `self` fully contain `other`? (Empty boxes are contained
    /// everywhere.)
    pub fn contains(&self, other: &Aabb) -> bool {
        debug_assert_eq!(self.k, other.k);
        if other.is_empty() {
            return true;
        }
        (0..self.k()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Smallest box covering both.
    pub fn union(&self, other: &Aabb) -> Aabb {
        debug_assert_eq!(self.k, other.k);
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let mut lo = [0u32; MAX_DIMS];
        let mut hi = [0u32; MAX_DIMS];
        for d in 0..self.k() {
            lo[d] = self.lo[d].min(other.lo[d]);
            hi[d] = self.hi[d].max(other.hi[d]);
        }
        Aabb { lo, hi, k: self.k }
    }

    /// Volume increase if `self` were grown to cover `other` (Guttman's
    /// enlargement criterion).
    pub fn enlargement(&self, other: &Aabb) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Center point (for STR bulk-load sorting), as f64 per dimension.
    pub fn center(&self, d: usize) -> f64 {
        (self.lo[d] as f64 + self.hi[d] as f64) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_margin_center() {
        let b = Aabb::new(&[1, 2], &[4, 6]);
        assert_eq!(b.volume(), 12.0);
        assert_eq!(b.margin(), 7.0);
        assert_eq!(b.center(0), 2.5);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let b = Aabb::new(&[0, 0], &[5, 5]);
        assert!(!e.overlaps(&b));
        assert!(!b.overlaps(&e));
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        assert!(b.contains(&e));
    }

    #[test]
    fn overlap_and_containment() {
        let a = Aabb::new(&[0, 0], &[4, 4]);
        let b = Aabb::new(&[3, 3], &[6, 6]);
        let c = Aabb::new(&[4, 0], &[6, 4]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlap
        assert!(a.contains(&Aabb::new(&[1, 1], &[2, 2])));
        assert!(!a.contains(&b));
    }

    #[test]
    fn union_and_enlargement() {
        let a = Aabb::new(&[0, 0], &[2, 2]);
        let b = Aabb::new(&[4, 4], &[6, 6]);
        let u = a.union(&b);
        assert_eq!(u, Aabb::new(&[0, 0], &[6, 6]));
        assert_eq!(a.enlargement(&b), 36.0 - 4.0);
        assert_eq!(a.enlargement(&Aabb::new(&[0, 0], &[1, 1])), 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_box_panics() {
        let _ = Aabb::new(&[5, 0], &[1, 1]);
    }
}
