//! The R-tree proper.

use crate::aabb::Aabb;

/// Maximum entries per node (Guttman's `M`).
const MAX_ENTRIES: usize = 16;
/// Minimum fill (Guttman's `m ≤ M/2`).
const MIN_ENTRIES: usize = MAX_ENTRIES / 4;

#[derive(Debug, Clone)]
enum NodeKind<T> {
    /// Leaf entries: (box, payload).
    Leaf(Vec<(Aabb, T)>),
    /// Internal entries: (subtree box, child node index).
    Internal(Vec<(Aabb, usize)>),
}

#[derive(Debug, Clone)]
struct Node<T> {
    kind: NodeKind<T>,
}

impl<T> Node<T> {
    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(e) => e.len(),
        }
    }

    fn bbox(&self, k: usize) -> Aabb {
        let mut b = Aabb::empty(k);
        match &self.kind {
            NodeKind::Leaf(e) => {
                for (r, _) in e {
                    b = b.union(r);
                }
            }
            NodeKind::Internal(e) => {
                for (r, _) in e {
                    b = b.union(r);
                }
            }
        }
        b
    }
}

/// An in-memory R-tree with Guttman quadratic splits.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    k: usize,
    nodes: Vec<Node<T>>,
    root: usize,
    /// Height: 1 = root is a leaf.
    height: usize,
    len: usize,
}

impl<T: Clone> RTree<T> {
    /// An empty tree over `k`-dimensional boxes.
    pub fn new(k: usize) -> Self {
        let root = Node { kind: NodeKind::Leaf(Vec::new()) };
        RTree { k, nodes: vec![root], root: 0, height: 1, len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    // -- search ------------------------------------------------------------

    /// Visit every entry whose box overlaps `query`.
    pub fn search(&self, query: &Aabb, mut visit: impl FnMut(&Aabb, &T)) {
        self.search_node(self.root, query, &mut visit);
    }

    fn search_node(&self, node: usize, query: &Aabb, visit: &mut impl FnMut(&Aabb, &T)) {
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                for (r, v) in entries {
                    if r.overlaps(query) {
                        visit(r, v);
                    }
                }
            }
            NodeKind::Internal(entries) => {
                for (r, child) in entries {
                    if r.overlaps(query) {
                        self.search_node(*child, query, visit);
                    }
                }
            }
        }
    }

    /// Collect payloads overlapping `query`.
    pub fn query(&self, query: &Aabb) -> Vec<T> {
        let mut out = Vec::new();
        self.search(query, |_, v| out.push(v.clone()));
        out
    }

    // -- insert ------------------------------------------------------------

    /// Insert an entry.
    pub fn insert(&mut self, rect: Aabb, value: T) {
        assert_eq!(rect.k as usize, self.k);
        let split = self.insert_at(self.root, self.height, rect, value);
        if let Some((bb_new, new_node)) = split {
            // Root split: grow the tree.
            let old_root = self.root;
            let bb_old = self.nodes[old_root].bbox(self.k);
            let new_root =
                Node { kind: NodeKind::Internal(vec![(bb_old, old_root), (bb_new, new_node)]) };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
            self.height += 1;
        }
        self.len += 1;
    }

    /// Insert into the subtree at `node` (whose height is `height`);
    /// returns the (bbox, index) of a newly split-off sibling if any.
    fn insert_at(
        &mut self,
        node: usize,
        height: usize,
        rect: Aabb,
        value: T,
    ) -> Option<(Aabb, usize)> {
        if height == 1 {
            // Leaf level.
            if let NodeKind::Leaf(entries) = &mut self.nodes[node].kind {
                entries.push((rect, value));
                if entries.len() > MAX_ENTRIES {
                    return Some(self.split_leaf(node));
                }
            } else {
                unreachable!("height-1 node must be a leaf");
            }
            return None;
        }
        // Choose subtree with least enlargement (ties: least volume).
        let child_slot = {
            let NodeKind::Internal(entries) = &self.nodes[node].kind else {
                unreachable!("internal node expected");
            };
            let mut best = 0usize;
            let mut best_cost = (f64::INFINITY, f64::INFINITY);
            for (i, (r, _)) in entries.iter().enumerate() {
                let cost = (r.enlargement(&rect), r.volume());
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            best
        };
        let (child_bb, child_idx) = {
            let NodeKind::Internal(entries) = &self.nodes[node].kind else { unreachable!() };
            entries[child_slot]
        };
        let split = self.insert_at(child_idx, height - 1, rect, value);
        // Refresh the chosen child's bbox. Without a split, growing by
        // `rect` is exact; after a split the child lost entries to its
        // sibling, so recompute from scratch.
        let updated = if split.is_some() {
            self.nodes[child_idx].bbox(self.k)
        } else {
            child_bb.union(&rect)
        };
        if let NodeKind::Internal(entries) = &mut self.nodes[node].kind {
            entries[child_slot].0 = updated;
            if let Some((bb_new, new_child)) = split {
                entries.push((bb_new, new_child));
                if entries.len() > MAX_ENTRIES {
                    return Some(self.split_internal(node));
                }
            }
        }
        None
    }

    /// Guttman quadratic split of an overfull leaf; returns the new
    /// sibling's (bbox, index) and shrinks the original in place.
    fn split_leaf(&mut self, node: usize) -> (Aabb, usize) {
        let NodeKind::Leaf(entries) = &mut self.nodes[node].kind else { unreachable!() };
        let items = std::mem::take(entries);
        let (a, b) = quadratic_split(items, |e| e.0, self.k);
        self.nodes[node].kind = NodeKind::Leaf(a);
        let sibling = Node { kind: NodeKind::Leaf(b) };
        self.nodes.push(sibling);
        let idx = self.nodes.len() - 1;
        (self.nodes[idx].bbox(self.k), idx)
    }

    /// Quadratic split of an overfull internal node.
    fn split_internal(&mut self, node: usize) -> (Aabb, usize) {
        let NodeKind::Internal(entries) = &mut self.nodes[node].kind else { unreachable!() };
        let items = std::mem::take(entries);
        let (a, b) = quadratic_split(items, |e| e.0, self.k);
        self.nodes[node].kind = NodeKind::Internal(a);
        let sibling = Node { kind: NodeKind::Internal(b) };
        self.nodes.push(sibling);
        let idx = self.nodes.len() - 1;
        (self.nodes[idx].bbox(self.k), idx)
    }

    // -- delete ------------------------------------------------------------

    /// Remove the first entry with an identical box for which `pred`
    /// accepts the payload. Returns the removed payload. Underfull nodes
    /// are condensed by reinserting their entries (Guttman's
    /// CondenseTree).
    pub fn remove(&mut self, rect: &Aabb, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut orphans: Vec<(Aabb, T)> = Vec::new();
        let removed = self.remove_rec(self.root, self.height, rect, &mut pred, &mut orphans);
        if removed.is_some() {
            self.len -= 1;
            // Shrink the root if it became a unary internal node.
            while self.height > 1 {
                let NodeKind::Internal(entries) = &self.nodes[self.root].kind else { break };
                if entries.len() == 1 {
                    self.root = entries[0].1;
                    self.height -= 1;
                } else {
                    break;
                }
            }
            let orphan_count = orphans.iter().map(|_| 1usize).sum::<usize>();
            for (r, v) in orphans {
                self.insert(r, v);
            }
            self.len -= orphan_count; // reinserts double-counted
        }
        removed
    }

    fn remove_rec(
        &mut self,
        node: usize,
        height: usize,
        rect: &Aabb,
        pred: &mut impl FnMut(&T) -> bool,
        orphans: &mut Vec<(Aabb, T)>,
    ) -> Option<T> {
        if height == 1 {
            let NodeKind::Leaf(entries) = &mut self.nodes[node].kind else { unreachable!() };
            if let Some(pos) = entries.iter().position(|(r, v)| r == rect && pred(v)) {
                return Some(entries.remove(pos).1);
            }
            return None;
        }
        let candidates: Vec<(usize, usize)> = {
            let NodeKind::Internal(entries) = &self.nodes[node].kind else { unreachable!() };
            entries
                .iter()
                .enumerate()
                .filter(|(_, (r, _))| r.contains(rect) || r.overlaps(rect))
                .map(|(slot, (_, child))| (slot, *child))
                .collect()
        };
        for (slot, child) in candidates {
            if let Some(v) = self.remove_rec(child, height - 1, rect, pred, orphans) {
                // Recompute the child's bbox; condense if underfull.
                let child_len = self.nodes[child].len();
                if child_len < MIN_ENTRIES {
                    // Orphan the child's remaining entries and drop it.
                    self.collect_entries(child, height - 1, orphans);
                    let NodeKind::Internal(entries) = &mut self.nodes[node].kind else {
                        unreachable!()
                    };
                    entries.remove(slot);
                } else {
                    let bb = self.nodes[child].bbox(self.k);
                    let NodeKind::Internal(entries) = &mut self.nodes[node].kind else {
                        unreachable!()
                    };
                    entries[slot].0 = bb;
                }
                return Some(v);
            }
        }
        None
    }

    /// Gather every leaf entry under `node` into `out` (node is abandoned).
    fn collect_entries(&mut self, node: usize, height: usize, out: &mut Vec<(Aabb, T)>) {
        if height == 1 {
            let NodeKind::Leaf(entries) = &mut self.nodes[node].kind else { unreachable!() };
            out.append(entries);
            return;
        }
        let children: Vec<usize> = {
            let NodeKind::Internal(entries) = &self.nodes[node].kind else { unreachable!() };
            entries.iter().map(|(_, c)| *c).collect()
        };
        for c in children {
            self.collect_entries(c, height - 1, out);
        }
        if let NodeKind::Internal(entries) = &mut self.nodes[node].kind {
            entries.clear();
        }
    }

    // -- bulk load -----------------------------------------------------------

    /// Sort-Tile-Recursive bulk load: builds a packed tree in O(n log n).
    pub fn bulk_load(k: usize, mut items: Vec<(Aabb, T)>) -> Self {
        if items.is_empty() {
            return Self::new(k);
        }
        let len = items.len();
        let mut tree = RTree { k, nodes: Vec::new(), root: 0, height: 1, len };

        // STR tiling: recursively sort by successive center coordinates.
        str_sort(&mut items, 0, k, MAX_ENTRIES);

        // Build leaves.
        let mut level: Vec<(Aabb, usize)> = Vec::new();
        for chunk in items.chunks(MAX_ENTRIES) {
            let node = Node { kind: NodeKind::Leaf(chunk.to_vec()) };
            tree.nodes.push(node);
            let idx = tree.nodes.len() - 1;
            level.push((tree.nodes[idx].bbox(k), idx));
        }
        // Build internal levels.
        while level.len() > 1 {
            let mut next: Vec<(Aabb, usize)> = Vec::new();
            str_sort(&mut level, 0, k, MAX_ENTRIES);
            for chunk in level.chunks(MAX_ENTRIES) {
                let node = Node { kind: NodeKind::Internal(chunk.to_vec()) };
                tree.nodes.push(node);
                let idx = tree.nodes.len() - 1;
                next.push((tree.nodes[idx].bbox(k), idx));
            }
            level = next;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree
    }

    // -- validation ----------------------------------------------------------

    /// Check structural invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        self.validate_node(self.root, self.height, None, &mut count)?;
        if count != self.len {
            return Err(format!("len {} but {} entries found", self.len, count));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        node: usize,
        height: usize,
        parent_bb: Option<&Aabb>,
        count: &mut usize,
    ) -> Result<(), String> {
        let bb = self.nodes[node].bbox(self.k);
        if let Some(p) = parent_bb {
            if !p.contains(&bb) {
                return Err(format!("node {node}: bbox escapes parent"));
            }
        }
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                if height != 1 {
                    return Err(format!("leaf {node} at height {height}"));
                }
                *count += entries.len();
            }
            NodeKind::Internal(entries) => {
                if height == 1 {
                    return Err(format!("internal node {node} at leaf height"));
                }
                if entries.is_empty() {
                    return Err(format!("empty internal node {node}"));
                }
                for (r, child) in entries {
                    let child_bb = self.nodes[*child].bbox(self.k);
                    if *r != child_bb {
                        return Err(format!("node {node}: stale child bbox"));
                    }
                    self.validate_node(*child, height - 1, Some(r), count)?;
                }
            }
        }
        Ok(())
    }
}

/// Recursive STR tiling sort: sorts `items` so that consecutive chunks of
/// `cap` form spatially coherent tiles.
fn str_sort<E>(items: &mut [E], dim: usize, k: usize, cap: usize)
where
    E: HasBox,
{
    if dim >= k || items.len() <= cap {
        return;
    }
    items.sort_by(|a, b| {
        a.bbox().center(dim).partial_cmp(&b.bbox().center(dim)).expect("finite centers")
    });
    // Number of slabs along this dimension.
    let n_chunks = items.len().div_ceil(cap);
    let slabs = (n_chunks as f64).powf(1.0 / (k - dim) as f64).ceil() as usize;
    let slab_len = items.len().div_ceil(slabs.max(1));
    for slab in items.chunks_mut(slab_len.max(1)) {
        str_sort(slab, dim + 1, k, cap);
    }
}

trait HasBox {
    fn bbox(&self) -> &Aabb;
}

impl<T> HasBox for (Aabb, T) {
    fn bbox(&self) -> &Aabb {
        &self.0
    }
}

/// Guttman's quadratic split: pick the pair wasting the most area as
/// seeds, then greedily assign by enlargement preference, respecting the
/// minimum fill.
fn quadratic_split<E>(items: Vec<E>, get: impl Fn(&E) -> Aabb, k: usize) -> (Vec<E>, Vec<E>) {
    debug_assert!(items.len() > MAX_ENTRIES);
    // Pick seeds.
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let a = get(&items[i]);
            let b = get(&items[j]);
            let d = a.union(&b).volume() - a.volume() - b.volume();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut group1: Vec<E> = Vec::new();
    let mut group2: Vec<E> = Vec::new();
    let mut bb1 = get(&items[s1]);
    let mut bb2 = get(&items[s2]);
    let mut rest: Vec<E> = Vec::new();
    for (i, e) in items.into_iter().enumerate() {
        if i == s1 {
            group1.push(e);
        } else if i == s2 {
            group2.push(e);
        } else {
            rest.push(e);
        }
    }
    let total = rest.len() + 2;
    let min = MIN_ENTRIES.max(1);
    for e in rest {
        let remaining = total - group1.len() - group2.len() - 1;
        // Force assignment if a group must take everything left to reach
        // the minimum fill.
        if group1.len() + remaining < min {
            bb1 = bb1.union(&get(&e));
            group1.push(e);
            continue;
        }
        if group2.len() + remaining < min {
            bb2 = bb2.union(&get(&e));
            group2.push(e);
            continue;
        }
        let r = get(&e);
        let d1 = bb1.enlargement(&r);
        let d2 = bb2.enlargement(&r);
        if (d1, bb1.volume(), group1.len()) <= (d2, bb2.volume(), group2.len()) {
            bb1 = bb1.union(&r);
            group1.push(e);
        } else {
            bb2 = bb2.union(&r);
            group2.push(e);
        }
    }
    let _ = k;
    (group1, group2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: &[u32], hi: &[u32]) -> Aabb {
        Aabb::new(lo, hi)
    }

    /// Deterministic pseudo-random boxes.
    fn boxes(n: u32) -> Vec<(Aabb, u32)> {
        (0..n)
            .map(|i| {
                let x = (i.wrapping_mul(2_654_435_761)) % 1000;
                let y = (i.wrapping_mul(40_503)) % 1000;
                let w = 1 + (i % 20);
                let h = 1 + ((i * 7) % 20);
                (b(&[x, y], &[x + w, y + h]), i)
            })
            .collect()
    }

    fn linear_query(items: &[(Aabb, u32)], q: &Aabb) -> Vec<u32> {
        let mut v: Vec<u32> =
            items.iter().filter(|(r, _)| r.overlaps(q)).map(|(_, i)| *i).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_then_query_matches_linear_scan() {
        let items = boxes(500);
        let mut t = RTree::new(2);
        for (r, v) in &items {
            t.insert(*r, *v);
        }
        assert_eq!(t.len(), 500);
        t.validate().unwrap();
        let queries =
            [b(&[0, 0], &[1000, 1000]), b(&[100, 100], &[200, 300]), b(&[999, 999], &[1000, 1000])];
        for q in &queries {
            let mut got = t.query(q);
            got.sort_unstable();
            assert_eq!(got, linear_query(&items, q), "{q:?}");
        }
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let items = boxes(800);
        let t = RTree::bulk_load(2, items.clone());
        assert_eq!(t.len(), 800);
        t.validate().unwrap();
        let q = b(&[250, 0], &[500, 500]);
        let mut got = t.query(&q);
        got.sort_unstable();
        assert_eq!(got, linear_query(&items, &q));
    }

    #[test]
    fn remove_entries() {
        let items = boxes(200);
        let mut t = RTree::new(2);
        for (r, v) in &items {
            t.insert(*r, *v);
        }
        // Remove half.
        for (r, v) in items.iter().filter(|(_, v)| v % 2 == 0) {
            let removed = t.remove(r, |x| x == v);
            assert_eq!(removed, Some(*v));
        }
        assert_eq!(t.len(), 100);
        t.validate().unwrap();
        let q = b(&[0, 0], &[1000, 1000]);
        let mut got = t.query(&q);
        got.sort_unstable();
        let want: Vec<u32> = (0..200).filter(|v| v % 2 == 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t: RTree<u32> = RTree::new(2);
        t.insert(b(&[0, 0], &[1, 1]), 7);
        assert_eq!(t.remove(&b(&[5, 5], &[6, 6]), |_| true), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<u32> = RTree::new(3);
        assert!(t.is_empty());
        assert!(t.query(&b(&[0, 0, 0], &[9, 9, 9])).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_boxes_coexist() {
        let mut t = RTree::new(2);
        let r = b(&[1, 1], &[2, 2]);
        for v in 0..40u32 {
            t.insert(r, v);
        }
        assert_eq!(t.len(), 40);
        t.validate().unwrap();
        let mut got = t.query(&r);
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        // Predicate-targeted removal.
        assert_eq!(t.remove(&r, |&v| v == 17), Some(17));
        assert_eq!(t.len(), 39);
    }

    #[test]
    fn four_dimensional_boxes() {
        let mut t = RTree::new(4);
        let mut items = Vec::new();
        for i in 0..300u32 {
            let p = [(i * 7) % 50, (i * 13) % 50, (i * 17) % 50, (i * 23) % 50];
            let r = Aabb::new(&p, &[p[0] + 3, p[1] + 3, p[2] + 3, p[3] + 3]);
            items.push((r, i));
            t.insert(r, i);
        }
        t.validate().unwrap();
        let q = Aabb::new(&[10, 10, 10, 10], &[30, 30, 30, 30]);
        let mut got = t.query(&q);
        got.sort_unstable();
        let mut want: Vec<u32> =
            items.iter().filter(|(r, _)| r.overlaps(&q)).map(|(_, v)| *v).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stress_interleaved_insert_remove() {
        let items = boxes(400);
        let mut t = RTree::new(2);
        for (r, v) in items.iter().take(300) {
            t.insert(*r, *v);
        }
        for (r, v) in items.iter().take(150) {
            assert!(t.remove(r, |x| x == v).is_some());
        }
        for (r, v) in items.iter().skip(300) {
            t.insert(*r, *v);
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 300 - 150 + 100);
        let q = b(&[0, 0], &[1000, 1000]);
        let survivors: Vec<(Aabb, u32)> =
            items.iter().enumerate().filter(|(i, _)| *i >= 150).map(|(_, e)| *e).collect();
        let mut got = t.query(&q);
        got.sort_unstable();
        assert_eq!(got, linear_query(&survivors, &q));
    }
}
