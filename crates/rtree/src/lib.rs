//! # iolap-rtree
//!
//! A from-scratch R-tree (Guttman, SIGMOD 1984 — the paper's reference
//! \[12\]) over k-dimensional integer boxes, with quadratic-split insertion,
//! deletion with subtree reinsertion, overlap queries, and
//! Sort-Tile-Recursive bulk loading.
//!
//! The EDB maintenance algorithm of Section 9 indexes the bounding boxes
//! of the allocation graph's connected components in an R-tree and, for
//! each update, queries the tree for overlapped components. The paper used
//! a third-party disk-based implementation \[13\]; this crate provides the
//! same interface semantics in memory (component counts are far below the
//! fact counts — 283k boxes for the paper's automotive data — so memory
//! residence is the realistic deployment too).
//!
//! ```
//! use iolap_rtree::{Aabb, RTree};
//!
//! let mut t: RTree<u32> = RTree::new(2);
//! t.insert(Aabb::new(&[0, 0], &[2, 2]), 1);
//! t.insert(Aabb::new(&[5, 5], &[9, 9]), 2);
//! let mut hits = Vec::new();
//! t.search(&Aabb::new(&[1, 1], &[6, 6]), |_, &id| hits.push(id));
//! hits.sort();
//! assert_eq!(hits, vec![1, 2]);
//! ```

#![warn(missing_docs)]

mod aabb;
mod tree;

pub use aabb::Aabb;
pub use tree::RTree;

/// Maximum dimensionality (mirrors `iolap_model::MAX_DIMS` without the
/// dependency).
pub const MAX_DIMS: usize = 8;
