//! Criterion benchmark for the Transitive step-3 worker pool: the same
//! synthetic allocation at 1, 2, 4 and 8 worker threads. Theorem 2 makes
//! the schedule irrelevant to the fixpoint, so the four variants do
//! identical numeric work — any wall-clock difference is the pool.
//!
//! The buffer is sized so every component is buffer-resident (the
//! parallelizable regime); `par_speedup` covers the mixed
//! external-component case from the command line.

use criterion::{criterion_group, criterion_main, Criterion};
use iolap_core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap_datagen::{generate, GeneratorConfig};
use std::hint::black_box;

fn bench_par_components(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::synthetic(40_000, 11));
    let policy = PolicySpec::em_count(0.01).with_max_iters(60);
    let mut g = c.benchmark_group("transitive_step3");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| {
                let cfg = AllocConfig::builder().in_memory(1 << 16).threads(threads).build();
                let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
                black_box(run.report.iterations)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_par_components);
criterion_main!(benches);
