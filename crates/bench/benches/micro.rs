//! Criterion micro-benchmarks for the building blocks whose costs the
//! paper's theorems compose: external sort, box queries, one EM iteration
//! per algorithm, component identification, R-tree operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use iolap_core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap_datagen::{generate, GeneratorConfig};
use iolap_graph::CellSetIndex;
use iolap_model::FactTable;
use iolap_rtree::{Aabb, RTree};
use iolap_storage::{external_sort, Env, SortBudget};
use std::hint::black_box;

fn small_table() -> FactTable {
    generate(&GeneratorConfig::automotive(20_000, 42))
}

fn bench_external_sort(c: &mut Criterion) {
    let env = Env::builder("bench-sort").pool_pages(4096).in_memory().build().unwrap();
    c.bench_function("extsort/100k_u64_budget8p", |b| {
        b.iter_batched(
            || {
                let mut f = env.create_file("in", iolap_storage::codec::U64Codec).unwrap();
                for i in 0..100_000u64 {
                    f.push(&(i.wrapping_mul(2_654_435_761) % 1_000_000)).unwrap();
                }
                f
            },
            |f| {
                let sorted = external_sort(&env, f, SortBudget::pages(8), |v| *v).unwrap();
                sorted.delete().unwrap();
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_box_queries(c: &mut Criterion) {
    let table = small_table();
    let schema = table.schema().clone();
    let keys: Vec<_> = table.facts().iter().filter_map(|f| schema.cell_of(f)).collect();
    let index = CellSetIndex::from_unsorted(keys, schema.k());
    let regions: Vec<_> =
        table.facts().iter().filter(|f| !schema.is_precise(f)).map(|f| schema.region(f)).collect();
    c.bench_function("cellindex/for_each_in_box_6k_regions", |b| {
        b.iter(|| {
            let mut edges = 0u64;
            for bx in &regions {
                index.for_each_in_box(bx, |i| edges += black_box(i) & 1);
            }
            black_box(edges)
        })
    });
}

fn bench_allocation_iteration(c: &mut Criterion) {
    let table = small_table();
    let mut group = c.benchmark_group("one_em_iteration");
    group.sample_size(10);
    for alg in [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
        group.bench_function(format!("{alg}"), |b| {
            b.iter(|| {
                // Pin exactly one iteration (ε = 0 never converges).
                let policy = PolicySpec::em_count(0.0).with_max_iters(1);
                let run = allocate(
                    &table,
                    &policy,
                    alg,
                    &AllocConfig::builder().in_memory(1 << 16).build(),
                )
                .unwrap();
                black_box(run.report.iterations)
            })
        });
    }
    group.finish();
}

fn bench_component_identification(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::synthetic(20_000, 7));
    let mut group = c.benchmark_group("components");
    group.sample_size(10);
    group.bench_function("transitive_identify_20k", |b| {
        b.iter(|| {
            // max_iters = 0 isolates prep + identification + sort + census.
            let policy = PolicySpec::em_count(0.0).with_max_iters(0);
            let run = allocate(
                &table,
                &policy,
                Algorithm::Transitive,
                &AllocConfig::builder().in_memory(1 << 16).build(),
            )
            .unwrap();
            black_box(run.report.components.unwrap().total)
        })
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let items: Vec<(Aabb, u32)> = (0..50_000u32)
        .map(|i| {
            let x = i.wrapping_mul(2_654_435_761) % 10_000;
            let y = i.wrapping_mul(40_503) % 10_000;
            (Aabb::new(&[x, y], &[x + 1 + i % 30, y + 1 + (i * 3) % 30]), i)
        })
        .collect();
    c.bench_function("rtree/bulk_load_50k", |b| {
        b.iter(|| black_box(RTree::bulk_load(2, items.clone()).len()))
    });
    let tree = RTree::bulk_load(2, items);
    c.bench_function("rtree/query_1k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for q in 0..1_000u32 {
                let x = q.wrapping_mul(7_919) % 9_000;
                let y = q.wrapping_mul(104_729) % 9_000;
                let bx = Aabb::new(&[x, y], &[x + 200, y + 200]);
                tree.search(&bx, |_, _| hits += 1);
            }
            black_box(hits)
        })
    });
}

criterion_group!(
    benches,
    bench_external_sort,
    bench_box_queries,
    bench_allocation_iteration,
    bench_component_identification,
    bench_rtree
);
criterion_main!(benches);
