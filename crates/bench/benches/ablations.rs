//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Per-component convergence** (Transitive): Section 11.1 argues that
//!   iterating each component only until *its* cells converge is a large
//!   win over running the global iteration count everywhere.
//! * **Summary-table re-sorting** (Independent): Algorithm 3 re-sorts the
//!   summary tables every iteration; caching the sorted chain files is
//!   the obvious (non-paper) optimization, isolating how much of
//!   Independent's cost is fact-sorting vs. the W sorts of `C`.
//! * **Converged-cell skip**: all three algorithms freeze converged cells
//!   (the other Section 11.1 optimization); disabling is approximated by
//!   pinning the iteration count so nothing converges early.

use criterion::{criterion_group, criterion_main, Criterion};
use iolap_core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap_datagen::{generate, GeneratorConfig};
use std::hint::black_box;

fn bench_per_component_convergence(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::automotive(30_000, 9));
    let mut group = c.benchmark_group("ablation/per_component_convergence");
    group.sample_size(10);
    for (label, enabled) in [("on", true), ("off", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let policy = PolicySpec::em_count(0.005);
                let cfg = AllocConfig::builder()
                    .in_memory(1 << 16)
                    .per_component_convergence(enabled)
                    .build();
                let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
                black_box(run.report.iterations)
            })
        });
    }
    group.finish();
}

fn bench_independent_resort(c: &mut Criterion) {
    let table = generate(&GeneratorConfig::automotive(30_000, 9));
    let mut group = c.benchmark_group("ablation/independent_fact_resort");
    group.sample_size(10);
    for (label, resort) in [("paper_resorts", true), ("cached_chains", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let policy = PolicySpec::em_count(0.01);
                let cfg = AllocConfig::builder().in_memory(1 << 16).resort_facts(resort).build();
                let run = allocate(&table, &policy, Algorithm::Independent, &cfg).unwrap();
                black_box(run.report.iterations)
            })
        });
    }
    group.finish();
}

fn bench_iteration_scaling(c: &mut Criterion) {
    // Block's cost grows with T; Transitive's stays ~flat (the paper's
    // headline comparison) — benchmarked here at pinned iteration counts.
    let table = generate(&GeneratorConfig::automotive(30_000, 9));
    let mut group = c.benchmark_group("ablation/iteration_scaling");
    group.sample_size(10);
    for iters in [2u32, 6] {
        for alg in [Algorithm::Block, Algorithm::Transitive] {
            group.bench_function(format!("{alg}_T{iters}"), |b| {
                b.iter(|| {
                    let policy = PolicySpec::em_count(0.0).with_max_iters(iters);
                    let run = allocate(
                        &table,
                        &policy,
                        alg,
                        &AllocConfig::builder().in_memory(1 << 16).build(),
                    )
                    .unwrap();
                    black_box(run.report.iterations)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_per_component_convergence,
    bench_independent_resort,
    bench_iteration_scaling
);
criterion_main!(benches);
