//! Minimal flag parsing shared by the harness binaries (no external CLI
//! crate — the sanctioned dependency list is small and these flags are
//! trivial).

use iolap_datagen::DatasetKind;
use iolap_obs::{JsonlSink, Obs};
use std::sync::Arc;

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Number of facts (scaled-down default; `--paper-scale` overrides).
    pub facts: u64,
    /// Dataset family.
    pub dataset: DatasetKind,
    /// RNG seed.
    pub seed: u64,
    /// Use the publication dataset sizes.
    pub paper_scale: bool,
    /// Use real temp files instead of in-memory pagers.
    pub on_disk: bool,
    /// Worker threads for Transitive step 3 (`1` = sequential, `0` = one
    /// per core).
    pub threads: usize,
    /// Prefetch read-ahead depth in pages (`0` = pipeline off). Accounted
    /// page I/O is unchanged either way — only overlapped.
    pub prefetch: usize,
    /// Write machine-readable results to this path as JSON.
    pub json: Option<String>,
    /// Write a JSONL span/metric trace of every run to this path.
    pub trace_out: Option<String>,
    /// Extra `key=value` pairs for experiment-specific knobs.
    pub extra: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args()`, with `default_facts` as the laptop-scale
    /// default.
    pub fn parse(default_facts: u64) -> Self {
        let mut out = Args {
            facts: default_facts,
            dataset: DatasetKind::Automotive,
            seed: 42,
            paper_scale: false,
            on_disk: false,
            threads: 1,
            prefetch: 0,
            json: None,
            trace_out: None,
            extra: Vec::new(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = argv[i].as_str();
            let take = |out_i: &mut usize| -> String {
                *out_i += 1;
                argv.get(*out_i).cloned().unwrap_or_else(|| {
                    eprintln!("missing value for {a}");
                    std::process::exit(2);
                })
            };
            match a {
                "--facts" => out.facts = take(&mut i).parse().expect("--facts N"),
                "--seed" => out.seed = take(&mut i).parse().expect("--seed S"),
                "--dataset" => {
                    out.dataset = take(&mut i).parse().expect("--dataset automotive|synthetic")
                }
                "--paper-scale" => out.paper_scale = true,
                "--on-disk" => out.on_disk = true,
                "--threads" => out.threads = take(&mut i).parse().expect("--threads N"),
                "--prefetch" => out.prefetch = take(&mut i).parse().expect("--prefetch N"),
                "--json" => out.json = Some(take(&mut i)),
                "--trace-out" => out.trace_out = Some(take(&mut i)),
                // Sugar for the serve_load sweep: `--connections 256,1000`
                // is the same as the `connections=256,1000` extra.
                "--connections" => out.extra.push(("connections".into(), take(&mut i))),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --facts N --seed S --dataset automotive|synthetic --paper-scale --on-disk --threads N --prefetch N --json PATH --trace-out PATH [key=value ...]"
                    );
                    std::process::exit(0);
                }
                kv if kv.contains('=') => {
                    let (k, v) = kv.split_once('=').expect("checked");
                    out.extra.push((k.trim_start_matches('-').to_string(), v.to_string()));
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        if out.paper_scale {
            out.facts = iolap_datagen::AUTOMOTIVE_FACTS;
        }
        out
    }

    /// Look up an experiment-specific `key=value` flag.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Parse an extra flag into any `FromStr` type, with a default.
    pub fn extra_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.extra(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Build the observability handle this invocation asked for: a JSONL
    /// trace sink when `--trace-out PATH` was given, disabled otherwise.
    ///
    /// Creating the sink truncates the file, so call this **once** per
    /// process and clone the returned handle into each run's config.
    pub fn obs(&self) -> Obs {
        match &self.trace_out {
            Some(path) => {
                let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create --trace-out {path}: {e}");
                    std::process::exit(2);
                });
                Obs::with_sink(Arc::new(sink))
            }
            None => Obs::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_lookup() {
        let a = Args {
            facts: 1,
            dataset: DatasetKind::Automotive,
            seed: 1,
            paper_scale: false,
            on_disk: false,
            threads: 1,
            prefetch: 0,
            json: None,
            trace_out: None,
            extra: vec![("eps".into(), "0.05".into())],
        };
        assert_eq!(a.extra("eps"), Some("0.05"));
        assert_eq!(a.extra_or("eps", 0.0f64), 0.05);
        assert_eq!(a.extra_or("missing", 7u32), 7);
        assert!(!a.obs().is_enabled(), "no --trace-out means a disabled handle");
    }
}
