//! Shared measurement helpers for the harness binaries.

use iolap_core::{allocate_in_env, Algorithm, AllocConfig, PolicySpec, RunReport};
use iolap_model::FactTable;
use iolap_storage::Env;

/// One measured point of a figure: algorithm, configuration, and the run
/// report (wall-clock + page I/O).
#[derive(Debug, Clone)]
pub struct OnePoint {
    /// Algorithm that produced the point.
    pub algorithm: Algorithm,
    /// Buffer size in pages.
    pub buffer_pages: usize,
    /// Convergence threshold used.
    pub epsilon: f64,
    /// Full run report.
    pub report: RunReport,
}

impl OnePoint {
    /// Seconds spent in the allocation passes (the paper's reported time
    /// excludes preprocessing and the final EDB write).
    pub fn alloc_secs(&self) -> f64 {
        self.report.wall_alloc.as_secs_f64()
    }

    /// Allocation-phase page I/Os.
    pub fn alloc_ios(&self) -> u64 {
        self.report.io_alloc.total()
    }
}

/// Run one (algorithm, buffer, ε) cell of an experiment grid in a fresh
/// environment, returning the measured point.
pub fn run_once(
    table: &FactTable,
    algorithm: Algorithm,
    buffer_pages: usize,
    epsilon: f64,
    max_iters: u32,
    on_disk: bool,
) -> OnePoint {
    let policy = PolicySpec::em_count(epsilon).with_max_iters(max_iters);
    let mut cfg = AllocConfig { buffer_pages, ..Default::default() };
    cfg.in_memory_backing = !on_disk;
    let env: Env = cfg.build_env(&format!("bench-{algorithm}")).expect("env");
    let run = allocate_in_env(table, &policy, algorithm, &cfg, &env).expect("allocation");
    OnePoint { algorithm, buffer_pages, epsilon, report: run.report }
}

/// Pages for a buffer given in KB (the paper quotes buffer sizes in
/// KB/MB).
pub fn kb_to_pages(kb: u64) -> usize {
    ((kb * 1024) as usize).div_ceil(iolap_storage::PAGE_SIZE)
}

/// Render a header + rows of aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter().map(|r| r[i].len()).chain(std::iter::once(h.len())).max().unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    for r in rows {
        line(r.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_conversion() {
        assert_eq!(kb_to_pages(600), 150); // the paper's 600 KB buffer
        assert_eq!(kb_to_pages(1024), 256); // 1 MB
        assert_eq!(kb_to_pages(12 * 1024), 3072); // 12 MB
    }

    #[test]
    fn run_once_smoke() {
        let table = iolap_model::paper_example::table1();
        let p = run_once(&table, Algorithm::Block, 64, 0.05, 50, false);
        assert!(p.report.converged);
        assert_eq!(p.buffer_pages, 64);
    }
}
