//! Shared measurement helpers for the harness binaries.

use iolap_core::{allocate_in_env, Algorithm, AllocConfig, PolicySpec, RunReport};
use iolap_model::FactTable;
use iolap_obs::Obs;
use iolap_storage::Env;

/// One measured point of a figure: algorithm, configuration, and the run
/// report (wall-clock + page I/O).
#[derive(Debug, Clone)]
pub struct OnePoint {
    /// Algorithm that produced the point.
    pub algorithm: Algorithm,
    /// Buffer size in pages.
    pub buffer_pages: usize,
    /// Convergence threshold used.
    pub epsilon: f64,
    /// Step-3 worker threads (Transitive; `1` elsewhere).
    pub threads: usize,
    /// Prefetch read-ahead depth in pages (`0` = pipeline off).
    pub prefetch_depth: usize,
    /// Full run report.
    pub report: RunReport,
}

impl OnePoint {
    /// Seconds spent in the allocation passes (the paper's reported time
    /// excludes preprocessing and the final EDB write).
    pub fn alloc_secs(&self) -> f64 {
        self.report.wall_alloc.as_secs_f64()
    }

    /// Allocation-phase page I/Os.
    pub fn alloc_ios(&self) -> u64 {
        self.report.io_alloc.total()
    }

    /// The point as JSON fields, for `write_json` outputs.
    pub fn json_fields(&self) -> Vec<(&'static str, Json)> {
        let mut fields = vec![
            ("algorithm", Json::S(self.algorithm.to_string())),
            ("buffer_pages", Json::U(self.buffer_pages as u64)),
            ("epsilon", Json::F(self.epsilon)),
            ("threads", Json::U(self.threads as u64)),
            ("prefetch_depth", Json::U(self.prefetch_depth as u64)),
            ("iterations", Json::U(u64::from(self.report.iterations))),
            ("converged", Json::B(self.report.converged)),
            ("alloc_secs", Json::F(self.alloc_secs())),
            ("alloc_ios", Json::U(self.alloc_ios())),
            ("pool_hits", Json::U(self.report.pool_hits)),
            ("pool_misses", Json::U(self.report.pool_misses)),
            ("pool_hit_ratio", Json::F(self.report.pool_hit_ratio())),
        ];
        if let Some(pf) = self.report.prefetch {
            fields.push(("prefetch_issued", Json::U(pf.issued)));
            fields.push(("prefetch_hits", Json::U(pf.hits)));
            fields.push(("prefetch_wasted", Json::U(pf.wasted)));
            fields.push(("prefetch_late", Json::U(pf.late)));
        }
        fields
    }
}

/// Run one (algorithm, config, ε) cell of an experiment grid in a fresh
/// environment, returning the measured point. The config carries the
/// buffer size, thread count, backing and observability handle — build it
/// with [`AllocConfig::builder`], e.g. via [`bench_config`].
pub fn run_once(
    table: &FactTable,
    algorithm: Algorithm,
    epsilon: f64,
    max_iters: u32,
    cfg: &AllocConfig,
) -> OnePoint {
    let policy = PolicySpec::em_count(epsilon).with_max_iters(max_iters);
    let env: Env = cfg.build_env(&format!("bench-{algorithm}")).expect("env");
    let run = allocate_in_env(table, &policy, algorithm, cfg, &env).expect("allocation");
    OnePoint {
        algorithm,
        buffer_pages: cfg.buffer_pages,
        epsilon,
        threads: cfg.threads,
        prefetch_depth: if cfg.prefetch.is_enabled() { cfg.prefetch.depth } else { 0 },
        report: run.report,
    }
}

/// The harness binaries' standard config: `buffer_pages` of in-memory
/// (or real-file, with `--on-disk`) backing, step-3 worker `threads`,
/// `prefetch` pages of read-ahead (`0` = pipeline off), and the
/// invocation's observability handle.
pub fn bench_config(
    buffer_pages: usize,
    on_disk: bool,
    threads: usize,
    prefetch: usize,
    obs: Obs,
) -> AllocConfig {
    AllocConfig::builder()
        .buffer_pages(buffer_pages)
        .in_memory_backing(!on_disk)
        .threads(threads)
        .prefetch_depth(prefetch)
        .obs(obs)
        .build()
}

/// Pages for a buffer given in KB (the paper quotes buffer sizes in
/// KB/MB).
pub fn kb_to_pages(kb: u64) -> usize {
    ((kb * 1024) as usize).div_ceil(iolap_storage::PAGE_SIZE)
}

/// Render a header + rows of aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter().map(|r| r[i].len()).chain(std::iter::once(h.len())).max().unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    for r in rows {
        line(r.clone());
    }
}

/// A JSON scalar for machine-readable outputs (the sanctioned dependency
/// list has no JSON crate, and these outputs are flat enough that a
/// hand-rolled emitter stays trivial).
#[derive(Debug, Clone)]
pub enum Json {
    /// Unsigned integer.
    U(u64),
    /// Float (non-finite values render as `null`).
    F(f64),
    /// String (escaped on output).
    S(String),
    /// Boolean.
    B(bool),
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::U(v) => write!(f, "{v}"),
            Json::F(v) if v.is_finite() => write!(f, "{v}"),
            Json::F(_) => write!(f, "null"),
            Json::B(v) => write!(f, "{v}"),
            Json::S(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
        }
    }
}

fn json_object(fields: &[(&str, Json)]) -> String {
    let body: Vec<String> =
        fields.iter().map(|(k, v)| format!("{}: {v}", Json::S(k.to_string()))).collect();
    format!("{{{}}}", body.join(", "))
}

/// Render `{"meta": {…}, "points": [{…}, …]}` for a benchmark run.
pub fn json_report(meta: &[(&str, Json)], points: &[Vec<(&str, Json)>]) -> String {
    let rows: Vec<String> = points.iter().map(|p| format!("    {}", json_object(p))).collect();
    format!(
        "{{\n  \"meta\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_object(meta),
        rows.join(",\n")
    )
}

/// Write a `json_report` to `path` (used by the harness binaries'
/// `--json` flag).
pub fn write_json(
    path: &str,
    meta: &[(&str, Json)],
    points: &[Vec<(&str, Json)>],
) -> std::io::Result<()> {
    std::fs::write(path, json_report(meta, points))?;
    println!("wrote {path} ({} points)", points.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_conversion() {
        assert_eq!(kb_to_pages(600), 150); // the paper's 600 KB buffer
        assert_eq!(kb_to_pages(1024), 256); // 1 MB
        assert_eq!(kb_to_pages(12 * 1024), 3072); // 12 MB
    }

    #[test]
    fn run_once_smoke() {
        let table = iolap_model::paper_example::table1();
        let cfg = bench_config(64, false, 1, 0, Obs::disabled());
        let p = run_once(&table, Algorithm::Block, 0.05, 50, &cfg);
        assert!(p.report.converged);
        assert_eq!(p.buffer_pages, 64);
    }

    #[test]
    fn json_report_shape_and_escaping() {
        let s = json_report(
            &[("dataset", Json::S("syn\"thetic".into())), ("facts", Json::U(5))],
            &[vec![("alloc_secs", Json::F(0.25)), ("converged", Json::B(true))]],
        );
        assert!(s.contains("\"syn\\\"thetic\""));
        assert!(s.contains("\"alloc_secs\": 0.25"));
        assert!(s.contains("\"converged\": true"));
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert_eq!(format!("{}", Json::F(f64::NAN)), "null");
    }
}
