//! # iolap-bench
//!
//! The benchmark harness reproducing every table and figure of Section 11
//! of Burdick et al. (VLDB 2006). One binary per experiment:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2` | Table 2 — dataset dimension characteristics |
//! | `fig5_inmem` | Figures 5a–b — in-memory CPU time vs iterations |
//! | `fig5_buffer` | Figures 5c–h — time vs buffer size at several ε |
//! | `fig5_scale` | Figures 5i–j — 5M-tuple scalability sweep |
//! | `fig6_maintenance` | Figure 6 — update time / rebuild time ratios |
//!
//! Shared flags: `--facts N` scales the dataset (default: laptop-scale;
//! pass `--paper-scale` for the publication sizes), `--seed S` for
//! reproducibility, `--dataset automotive|synthetic` where applicable,
//! and `--trace-out PATH` to write a JSONL span/metric trace of every
//! run (see the `iolap-obs` crate).
//! Results print as aligned text tables; EXPERIMENTS.md records a full
//! set of measured outputs next to the paper's numbers.
//!
//! Criterion micro-benchmarks (`benches/`) additionally cover the
//! building blocks (external sort, box queries, one EM iteration per
//! algorithm, component identification, R-tree ops) plus the two ablation
//! studies Section 11.1 motivates.

#![warn(missing_docs)]

pub mod cli;
pub mod runs;

pub use cli::Args;
pub use runs::{bench_config, run_once, Json, OnePoint};
