//! Prefetch pipeline sweep: every algorithm under an I/O-bound buffer
//! (pool hit ratio well under 0.9), with the pipeline off and on.
//!
//! The pipeline's contract is that it *overlaps* I/O without moving a
//! single page of accounted cost, so each off/on pair is asserted to have
//! **identical** `alloc_ios` (and prep/EDB I/O) — the process exits
//! non-zero if they ever diverge, which makes this binary double as the CI
//! smoke check. The JSON output (`BENCH_prefetch.json` by default) carries
//! the per-point prefetch counters (`issued`/`hits`/`wasted`/`late`) next
//! to the usual timing fields.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin prefetch_sweep
//! cargo run --release -p iolap-bench --bin prefetch_sweep -- --facts 5000   # CI smoke
//! ```

use iolap_bench::runs::{bench_config, print_table, run_once, write_json};
use iolap_bench::{Args, Json};
use iolap_core::Algorithm;
use iolap_datagen::scaled;

fn main() {
    let args = Args::parse(60_000);
    let table = scaled(args.dataset, args.facts, args.seed);
    // Small enough that the fact/cell files flood the pool: the I/O-bound
    // regime the pipeline exists for.
    let buffer_pages: usize = args.extra_or("buffer-pages", 96);
    let depth: usize = if args.prefetch > 0 { args.prefetch } else { 32 };
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let max_iters: u32 = args.extra_or("max-iters", 8);
    println!(
        "Prefetch sweep — {:?} dataset, {} facts, {buffer_pages} pages, depth {depth}, ε = {epsilon}",
        args.dataset, args.facts
    );

    let obs = args.obs();
    let algorithms =
        [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut diverged = false;
    let mut io_bound_seen = false;
    for alg in algorithms {
        let run = |prefetch: usize| {
            let cfg = bench_config(buffer_pages, args.on_disk, args.threads, prefetch, obs.clone());
            run_once(&table, alg, epsilon, max_iters, &cfg)
        };
        let off = run(0);
        let on = run(depth);
        // The tentpole invariant, enforced at bench time too: accounted
        // page I/O must be bit-identical with the pipeline on.
        for (phase, a, b) in [
            ("prep", off.report.io_prep, on.report.io_prep),
            ("alloc", off.report.io_alloc, on.report.io_alloc),
            ("edb", off.report.io_edb, on.report.io_edb),
        ] {
            if a != b {
                eprintln!("DIVERGED: {alg} {phase} I/O off={a:?} on={b:?}");
                diverged = true;
            }
        }
        io_bound_seen |= off.report.pool_hit_ratio() < 0.9;
        let pf = on.report.prefetch.unwrap_or_default();
        rows.push(vec![
            alg.to_string(),
            format!("{}", off.alloc_ios()),
            format!("{}", on.alloc_ios()),
            format!("{:.3}", off.report.pool_hit_ratio()),
            format!("{:.3}", off.alloc_secs()),
            format!("{:.3}", on.alloc_secs()),
            format!("{}", pf.issued),
            format!("{}", pf.hits),
            format!("{}", pf.wasted),
            format!("{}", pf.late),
        ]);
        points.push(off.json_fields());
        points.push(on.json_fields());
    }
    print_table(
        &format!("alloc I/O and wall-clock, prefetch off vs depth {depth}"),
        &[
            "algorithm",
            "I/Os off",
            "I/Os on",
            "hit ratio",
            "s off",
            "s on",
            "issued",
            "hits",
            "wasted",
            "late",
        ],
        &rows,
    );
    if !io_bound_seen {
        eprintln!(
            "warning: no I/O-bound point (pool hit ratio ≥ 0.9 everywhere) — \
             shrink buffer-pages= or grow --facts"
        );
    }

    let path = args.json.as_deref().unwrap_or("BENCH_prefetch.json");
    let meta = [
        ("experiment", Json::S("prefetch_sweep".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("buffer_pages", Json::U(buffer_pages as u64)),
        ("prefetch_depth", Json::U(depth as u64)),
        ("epsilon", Json::F(epsilon)),
        ("io_identical", Json::B(!diverged)),
    ];
    write_json(path, &meta, &points).expect("write BENCH_prefetch.json");
    obs.flush();
    if diverged {
        eprintln!("prefetch pipeline moved accounted I/O — failing");
        std::process::exit(1);
    }
}
