//! Reproduce **Figure 6**: EDB maintenance cost vs. update volume.
//!
//! Three workload classes over the automotive dataset, as in Section 11.2:
//! 1. updates to precise facts overlapped by no imprecise fact
//!    ("Non-Overlap Precise" — flat, cheap);
//! 2. updates to randomly selected precise facts ("Random Precise");
//! 3. updates to randomly selected facts of any kind ("Random Fact").
//!
//! For each workload size (0.1 % … 10 % of the facts), the plotted value
//! is the ratio *update time / full rebuild time*; > 1 means rebuilding
//! would have been cheaper. Pass `census=1` to also print the
//! connected-component distribution Section 11.2 reports.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin fig6_maintenance
//! cargo run --release -p iolap-bench --bin fig6_maintenance -- --paper-scale census=1
//! ```

use iolap_bench::runs::print_table;
use iolap_bench::Args;
use iolap_core::maintain::{FactUpdate, MaintainableEdb};
use iolap_core::{allocate, Algorithm, AllocConfig, PolicySpec};
use iolap_datagen::scaled;
use std::time::Instant;

fn main() {
    let args = Args::parse(100_000);
    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    // EM-Measure: precise measure updates genuinely move weights, so the
    // re-allocation work the paper times actually happens.
    let policy = PolicySpec::em_measure(0.01);
    let obs = args.obs();
    let cfg = AllocConfig::builder()
        .buffer_pages(1 << 18)
        .in_memory_backing(!args.on_disk)
        .obs(obs.clone())
        .build();

    println!("Figure 6 — EDB maintenance, {:?} dataset, {} facts", args.dataset, args.facts);

    // Rebuild baseline (also provides the component census).
    let t0 = Instant::now();
    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).expect("allocation");
    let rebuild = t0.elapsed();
    let stats = run.report.components.clone().expect("transitive run");
    println!(
        "rebuild takes {rebuild:?}; components: {} total, {} singleton cells, {} >20, {} >100, {} ≥1000, largest {}",
        stats.total, stats.singleton_cells, stats.over_20, stats.over_100, stats.over_1000,
        stats.largest
    );
    if args.extra_or("census", 0u32) == 1 {
        println!(
            "paper (real automotive): 283,199 components; 205,874 non-overlapped precise; 1,152 >20; 500 >100; 93 in 1000–7092"
        );
    }

    // Identify the workload pools.
    let mut non_overlap_precise: Vec<u64> = Vec::new();
    let mut all_precise: Vec<u64> = Vec::new();
    {
        let prep = &run.prep;
        let keys = prep.index.keys().to_vec();
        let mut deg = vec![0u32; keys.len()];
        for f in table.facts().iter().filter(|f| !schema.is_precise(f)) {
            prep.index.for_each_in_box(&schema.region(f), |i| deg[i as usize] += 1);
        }
        let degree_of: std::collections::HashMap<_, _> =
            keys.iter().enumerate().map(|(i, k)| (*k, deg[i])).collect();
        for f in table.facts() {
            if let Some(cell) = schema.cell_of(f) {
                all_precise.push(f.id);
                if degree_of[&cell] == 0 {
                    non_overlap_precise.push(f.id);
                }
            }
        }
    }
    let all_facts: Vec<u64> = table.facts().iter().map(|f| f.id).collect();

    let mut maintained = MaintainableEdb::build(run, policy.clone()).expect("maintainable");

    let workloads: Vec<(&str, &[u64])> = vec![
        ("Non-Overlap Precise", &non_overlap_precise),
        ("Random Precise", &all_precise),
        ("Random Fact", &all_facts),
    ];
    let percents = [0.1f64, 1.0, 2.5, 5.0, 10.0];

    let mut rows = Vec::new();
    for (name, pool) in &workloads {
        for &pct in &percents {
            let n = ((args.facts as f64) * pct / 100.0).max(1.0) as usize;
            let updates: Vec<FactUpdate> = (0..n)
                .map(|i| {
                    // Deterministic pseudo-random pick from the pool.
                    let idx = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(args.seed)
                        % pool.len() as u64;
                    FactUpdate { fact_id: pool[idx as usize], new_measure: 500.0 + i as f64 }
                })
                .collect();
            let rep = maintained.apply_updates(&updates).expect("updates");
            let ratio = rep.wall.as_secs_f64() / rebuild.as_secs_f64();
            rows.push(vec![
                name.to_string(),
                format!("{pct}%"),
                format!("{n}"),
                format!("{}", rep.affected_components),
                format!("{}", rep.affected_tuples),
                format!("{:?}", rep.wall),
                format!("{ratio:.3}"),
            ]);
        }
    }
    print_table(
        "update time / rebuild time",
        &["workload", "size", "updates", "components", "tuples", "update time", "ratio"],
        &rows,
    );
    println!("\nPaper shape: Non-Overlap Precise flat and ≪ 1; the random workloads");
    println!("degrade past a few percent and cross 1 near 5–10 %.");
    obs.flush();
}
