//! Reproduce **Figures 5i–j**: the scalability experiment — 5M-tuple
//! synthetic datasets (200 MB, 30 % imprecise) with proportionally larger
//! buffers, Block vs. Transitive at ε = 0.005.
//!
//! Defaults to a laptop-scale slice (500k facts, buffers scaled by the
//! same factor); `--paper-scale` runs the full 5M. Expected shape:
//! relative behaviour identical to the smaller experiment (Block ahead at
//! few iterations, Transitive stable and competitive, both improving
//! modestly with buffer size).
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin fig5_scale
//! cargo run --release -p iolap-bench --bin fig5_scale -- --paper-scale
//! ```

use iolap_bench::runs::{bench_config, kb_to_pages, print_table, run_once};
use iolap_bench::{Args, Json};
use iolap_core::Algorithm;
use iolap_datagen::{scaled, DatasetKind};

fn main() {
    let mut args = Args::parse(500_000);
    if args.paper_scale {
        args.facts = 5_000_000;
    }
    // Buffers from the paper, scaled with the dataset.
    let scale = args.facts as f64 / 5_000_000.0;
    let fig5i_kb: Vec<u64> =
        [4 * 1024, 10 * 1024, 40 * 1024, 50 * 1024].iter().map(|&kb| scale_kb(kb, scale)).collect();
    let fig5j_kb: Vec<u64> =
        [7 * 1024, 20 * 1024, 50 * 1024].iter().map(|&kb| scale_kb(kb, scale)).collect();

    let obs = args.obs();
    let mut points = Vec::new();
    for (fig, seed_off, buffers) in [("5i", 0u64, &fig5i_kb), ("5j", 1, &fig5j_kb)] {
        let table = scaled(DatasetKind::Synthetic, args.facts, args.seed + seed_off);
        println!("\nFigure {fig} — synthetic dataset, {} facts, ε = 0.005", args.facts);
        let mut rows = Vec::new();
        for &kb in buffers {
            for alg in [Algorithm::Block, Algorithm::Transitive] {
                let cfg = bench_config(
                    kb_to_pages(kb),
                    args.on_disk,
                    args.threads,
                    args.prefetch,
                    obs.clone(),
                );
                let p = run_once(&table, alg, 0.005, 60, &cfg);
                let mut fields = p.json_fields();
                fields.push(("figure", Json::S(fig.to_string())));
                points.push(fields);
                rows.push(vec![
                    format!("{:.1} MB", kb as f64 / 1024.0),
                    alg.to_string(),
                    format!("{}", p.report.iterations),
                    format!("{:.3}", p.alloc_secs()),
                    format!("{}", p.alloc_ios()),
                    format!("{}", p.report.num_table_sets.max(1)),
                ]);
            }
        }
        print_table(
            &format!("Figure {fig}"),
            &["buffer", "algorithm", "iters", "alloc s", "alloc I/Os", "|S|"],
            &rows,
        );
    }
    if let Some(path) = &args.json {
        let meta = [
            ("figure", Json::S("5i-j".into())),
            ("facts", Json::U(args.facts)),
            ("seed", Json::U(args.seed)),
        ];
        iolap_bench::runs::write_json(path, &meta, &points).expect("write --json output");
    }
    obs.flush();
}

fn scale_kb(kb: u64, scale: f64) -> u64 {
    ((kb as f64 * scale).round() as u64).max(256)
}
