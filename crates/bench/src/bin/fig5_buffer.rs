//! Reproduce **Figures 5c–h**: running time vs. buffer size, at three
//! convergence thresholds, for the automotive (5c–e) and synthetic (5f–h)
//! datasets.
//!
//! The paper's buffers: 600 KB, 1 MB, 2 MB (automotive) / 6 MB
//! (synthetic), 12 MB against a 32 MB fact table. Expected shapes:
//! automotive curves flat (total partition size 143 pages < 600 KB);
//! synthetic Block/Transitive improve as |S| drops 3 → 1; Independent
//! worst throughout; Block beats Transitive at few iterations, Transitive
//! wins at many.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin fig5_buffer -- --dataset automotive
//! cargo run --release -p iolap-bench --bin fig5_buffer -- --dataset synthetic
//! ```

use iolap_bench::runs::{bench_config, kb_to_pages, print_table, run_once};
use iolap_bench::{Args, Json};
use iolap_core::Algorithm;
use iolap_datagen::{scaled, DatasetKind};

fn main() {
    let args = Args::parse(200_000);
    let table = scaled(args.dataset, args.facts, args.seed);
    println!(
        "Figures 5c–h — time vs buffer size, {:?} dataset, {} facts",
        args.dataset, args.facts
    );

    // The 128/256 KB rows sit *below* the paper's smallest buffer: they are
    // the I/O-bound regime (pool hit ratio well under 0.9) where the
    // prefetch pipeline's overlap actually matters, which the
    // publication-size grid never exercises.
    let buffers_kb: Vec<u64> = match args.dataset {
        DatasetKind::Automotive => vec![128, 256, 600, 1024, 2 * 1024, 12 * 1024],
        DatasetKind::Synthetic => vec![128, 256, 600, 1024, 6 * 1024, 12 * 1024],
    };
    let epsilons = [0.1f64, 0.05, 0.005];
    let algorithms = [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive];

    let obs = args.obs();
    let mut points = Vec::new();
    for eps in epsilons {
        let mut rows = Vec::new();
        for &kb in &buffers_kb {
            for alg in algorithms {
                let cfg = bench_config(
                    kb_to_pages(kb),
                    args.on_disk,
                    args.threads,
                    args.prefetch,
                    obs.clone(),
                );
                let p = run_once(&table, alg, eps, 60, &cfg);
                points.push(p.json_fields());
                rows.push(vec![
                    format!("{} KB", kb),
                    alg.to_string(),
                    format!("{}", p.report.iterations),
                    format!("{:.3}", p.alloc_secs()),
                    format!("{}", p.alloc_ios()),
                    format!("{}", p.report.num_table_sets.max(1)),
                    format!("{}", p.report.partition_pages),
                ]);
            }
        }
        print_table(
            &format!("epsilon = {eps}"),
            &["buffer", "algorithm", "iters", "alloc s", "alloc I/Os", "|S|", "|P| pages"],
            &rows,
        );
    }
    if let Some(path) = &args.json {
        let meta = [
            ("figure", Json::S("5c-h".into())),
            ("dataset", Json::S(format!("{:?}", args.dataset))),
            ("facts", Json::U(args.facts)),
            ("seed", Json::U(args.seed)),
        ];
        iolap_bench::runs::write_json(path, &meta, &points).expect("write --json output");
    }
    obs.flush();
}
