//! Rollup-lattice benchmark: coarse-level rollups planned over the
//! materialized cuboid lattice vs the same queries leaf-scanned, across
//! the maintenance lifecycle.
//!
//! The lattice (DESIGN.md §2.18) pre-aggregates each published segment
//! at greedily selected level-vectors; the planner answers the
//! grain-aligned core of a rollup from the coarsest usable cuboid's
//! mini-segment and leaf-scans only the partial-overlap residue. Because
//! every cuboid cell stores exactly the bits a fresh leaf scan of that
//! cell produces and the merge order is deterministic, the planned
//! answer is **f64-bit-identical** to the forced-leaf execution of the
//! same plan — this binary asserts that per query, in all three phases:
//!
//! * **cold** — lattice built fresh over the base segment;
//! * **post-update** — after an `apply_updates` batch: the touched boxes
//!   mark dirty cuboid cells, recomputed at the next lattice snapshot;
//! * **post-compaction** — after tiers merge: cuboids rebuilt whole
//!   against the re-encoded segment.
//!
//! Enforced gates (any failure exits non-zero — CI smoke check): bit
//! identity between the Lattice and ForcedLeaf modes on every query and
//! phase; agreement with the lattice-less leaf baseline within float
//! tolerance; and the coarse full-space rollup workload must read at
//! least `--min-gain`× fewer pages AND bytes through the lattice than
//! the leaf baseline (default 10×).
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin rollup_lattice
//! cargo run --release -p iolap-bench --bin rollup_lattice -- --facts 5000 --json BENCH_rollup.json
//! ```

use iolap_bench::runs::{bench_config, print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_core::maintain::FactUpdate;
use iolap_core::{
    allocate, Algorithm, CuboidLattice, LatticeConfig, MaintainableEdb, PolicySpec, SegmentView,
};
use iolap_datagen::scaled;
use iolap_model::{RegionBox, Schema, MAX_DIMS};
use iolap_query::{plan_aggregate_views, plan_rollup_views, AggFn, PlanMode, RollupRow};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Per-workload running totals across all phases.
#[derive(Default, Clone, Copy)]
struct Totals {
    lat_pages: u64,
    lat_bytes: u64,
    base_pages: u64,
    base_bytes: u64,
    hits: u64,
    misses: u64,
    lat_us: f64,
    base_us: f64,
    queries: u64,
}

/// `rows` must carry the same nodes in the same order with bit-equal
/// sums and counts; returns false (and prints) on divergence.
fn rows_bit_equal(phase: &str, label: &str, a: &[RollupRow], b: &[RollupRow]) -> bool {
    if a.len() != b.len() {
        eprintln!("DIVERGED: {phase} {label}: {} vs {} rows", a.len(), b.len());
        return false;
    }
    for (x, y) in a.iter().zip(b.iter()) {
        if x.node != y.node
            || x.result.sum.to_bits() != y.result.sum.to_bits()
            || x.result.count.to_bits() != y.result.count.to_bits()
        {
            eprintln!(
                "DIVERGED: {phase} {label} node {}: ({}, {}) vs ({}, {})",
                x.name, x.result.sum, x.result.count, y.result.sum, y.result.count
            );
            return false;
        }
    }
    true
}

/// Leaf-baseline agreement: same plan-independent answer up to float
/// associativity (the piecewise merge legitimately reorders the sums).
fn rows_close(phase: &str, label: &str, a: &[RollupRow], b: &[RollupRow]) -> bool {
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()));
    for (x, y) in a.iter().zip(b.iter()) {
        if !close(x.result.sum, y.result.sum) || !close(x.result.count, y.result.count) {
            eprintln!(
                "DIVERGED: {phase} {label} node {} vs leaf baseline: ({}, {}) vs ({}, {})",
                x.name, x.result.sum, x.result.count, y.result.sum, y.result.count
            );
            return false;
        }
    }
    true
}

/// Run one rollup three ways (lattice, forced-leaf, no-lattice baseline),
/// check identity, and fold the counters into `t`.
#[allow(clippy::too_many_arguments)]
fn measure(
    phase: &str,
    views: &[SegmentView],
    lattice: &CuboidLattice,
    schema: &Schema,
    dim: usize,
    level: u8,
    region: Option<&RegionBox>,
    t: &mut Totals,
    diverged: &mut bool,
) -> (u64, u64) {
    let label = format!("rollup dim {dim} level {level} diced {}", region.is_some());
    let t0 = Instant::now();
    let (rows, stats) = plan_rollup_views(
        views,
        Some(lattice),
        schema,
        dim,
        level,
        region,
        AggFn::Sum,
        PlanMode::Lattice,
    )
    .expect("lattice rollup");
    let lat_us = t0.elapsed().as_secs_f64() * 1e6;
    let (forced, fstats) = plan_rollup_views(
        views,
        Some(lattice),
        schema,
        dim,
        level,
        region,
        AggFn::Sum,
        PlanMode::ForcedLeaf,
    )
    .expect("forced-leaf rollup");
    let t1 = Instant::now();
    let (base, bstats) =
        plan_rollup_views(views, None, schema, dim, level, region, AggFn::Sum, PlanMode::Lattice)
            .expect("leaf baseline rollup");
    let base_us = t1.elapsed().as_secs_f64() * 1e6;

    if !rows_bit_equal(phase, &label, &rows, &forced) || !rows_close(phase, &label, &rows, &base) {
        *diverged = true;
    }
    if (stats.cuboid_hits, stats.cuboid_misses) != (fstats.cuboid_hits, fstats.cuboid_misses) {
        eprintln!("DIVERGED: {phase} {label}: plan shape differs between modes");
        *diverged = true;
    }
    t.lat_pages += stats.scan.pages_read;
    t.lat_bytes += stats.scan.bytes_read;
    t.base_pages += bstats.scan.pages_read;
    t.base_bytes += bstats.scan.bytes_read;
    t.hits += stats.cuboid_hits;
    t.misses += stats.cuboid_misses;
    t.lat_us += lat_us;
    t.base_us += base_us;
    t.queries += 1;
    (stats.scan.pages_read, bstats.scan.pages_read)
}

fn main() {
    let args = Args::parse(20_000);
    let min_gain: f64 = args.extra_or("min-gain", 10.0);
    let diced_queries: usize = args.extra_or("diced-queries", 24);
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let buffer_pages: usize = args.extra_or("buffer-pages", 2048);
    let update_pct: f64 = args.extra_or("update-pct", 1.0);

    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    let k = schema.k();
    println!("Rollup lattice — {:?} dataset, {} facts, {k} dimensions", args.dataset, args.facts);

    let obs = args.obs();
    let cfg = bench_config(buffer_pages, args.on_disk, args.threads, args.prefetch, obs.clone());
    let policy = PolicySpec::em_count(epsilon).with_max_iters(16);
    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).expect("allocation");
    let all_facts: Vec<u64> = table.facts().iter().map(|f| f.id).collect();
    let mut medb = MaintainableEdb::build(run, policy).expect("maintainable");
    // A serving-tier budget: enough cuboids that every dimension's
    // coarse rollup finds a usable grain.
    medb.set_lattice_config(LatticeConfig {
        budget_bytes: 8 << 20,
        min_segment_entries: 1,
        max_cuboids: 16,
    });

    // The coarse workload the gate measures: for each dimension, the
    // full-space rollup at its top named (non-ALL) level.
    let coarse: Vec<(usize, u8)> =
        (0..k).map(|d| (d, (schema.dim(d).levels() - 1).max(1))).collect();
    // Diced: the same rollups restricted to random boxes (reported and
    // bit-checked, not perf-gated — residue scans legitimately dominate
    // narrow dices).
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5e97_13a7);
    let diced: Vec<(usize, u8, RegionBox)> = (0..diced_queries)
        .map(|_| {
            let (d, l) = coarse[rng.random_range(0..k)];
            let mut lo = [0u32; MAX_DIMS];
            let mut hi = [0u32; MAX_DIMS];
            for dd in 0..k {
                let leaves = schema.dim(dd).num_leaves();
                let width = rng.random_range(1..=leaves);
                let start = rng.random_range(0..=leaves - width);
                lo[dd] = start;
                hi[dd] = start + width;
            }
            (d, l, RegionBox { lo, hi, k: k as u8 })
        })
        .collect();

    let n_updates = ((args.facts as f64) * update_pct / 100.0).max(1.0) as usize;
    let batch = |salt: u64| -> Vec<FactUpdate> {
        (0..n_updates)
            .map(|i| {
                let idx = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(args.seed ^ salt)
                    % all_facts.len() as u64;
                FactUpdate { fact_id: all_facts[idx as usize], new_measure: 500.0 + i as f64 }
            })
            .collect()
    };

    let mut diverged = false;
    let mut coarse_tot = Totals::default();
    let mut diced_tot = Totals::default();
    let mut points = Vec::new();
    let mut rows = Vec::new();

    for phase in ["cold", "post-update", "post-compaction"] {
        match phase {
            "post-update" => {
                medb.apply_updates(&batch(0x9e37)).expect("update batch");
            }
            "post-compaction" => {
                medb.set_compaction_threshold(1);
                medb.apply_updates(&batch(0x85eb)).expect("update batch");
            }
            _ => {}
        }
        let views = medb.snapshot_segments().expect("segments");
        let lattice = medb.snapshot_lattice().expect("lattice");
        if phase == "post-compaction" {
            assert!(medb.num_compactions() > 0, "threshold 1 must have compacted");
        }

        // Full-space aggregates are the degenerate rollup — bit-check
        // them too (SUM/COUNT/AVG share one accumulation).
        let all = {
            let lo = [0u32; MAX_DIMS];
            let mut hi = [0u32; MAX_DIMS];
            for (d, h) in hi.iter_mut().enumerate().take(k) {
                *h = schema.dim(d).num_leaves();
            }
            RegionBox { lo, hi, k: k as u8 }
        };
        let (a, _) = plan_aggregate_views(
            &views,
            Some(&lattice),
            &schema,
            &all,
            AggFn::Sum,
            PlanMode::Lattice,
        )
        .expect("aggregate");
        let (b, _) = plan_aggregate_views(
            &views,
            Some(&lattice),
            &schema,
            &all,
            AggFn::Sum,
            PlanMode::ForcedLeaf,
        )
        .expect("aggregate");
        if a.sum.to_bits() != b.sum.to_bits() || a.count.to_bits() != b.count.to_bits() {
            eprintln!("DIVERGED: {phase} full-space aggregate: ({}, {})", a.sum - b.sum, a.count);
            diverged = true;
        }

        let phase_start = coarse_tot;
        for &(d, l) in &coarse {
            let (lp, bp) = measure(
                phase,
                &views,
                &lattice,
                &schema,
                d,
                l,
                None,
                &mut coarse_tot,
                &mut diverged,
            );
            points.push(vec![
                ("kind", Json::S("coarse".into())),
                ("phase", Json::S(phase.into())),
                ("dim", Json::U(d as u64)),
                ("level", Json::U(l as u64)),
                ("lattice_pages", Json::U(lp)),
                ("baseline_pages", Json::U(bp)),
            ]);
        }
        for (i, (d, l, bx)) in diced.iter().enumerate() {
            let (lp, bp) = measure(
                phase,
                &views,
                &lattice,
                &schema,
                *d,
                *l,
                Some(bx),
                &mut diced_tot,
                &mut diverged,
            );
            points.push(vec![
                ("kind", Json::S("diced".into())),
                ("phase", Json::S(phase.into())),
                ("query", Json::U(i as u64)),
                ("box_cells", Json::U(bx.num_cells())),
                ("lattice_pages", Json::U(lp)),
                ("baseline_pages", Json::U(bp)),
            ]);
        }

        let seg_pages: u64 = views.iter().map(|v| v.segment.num_pages()).sum();
        rows.push(vec![
            phase.to_string(),
            format!("{}", views.len()),
            format!("{seg_pages}"),
            format!("{}", lattice.num_cuboids()),
            format!("{}", lattice.encoded_bytes()),
            format!("{}", coarse_tot.lat_pages - phase_start.lat_pages),
            format!("{}", coarse_tot.base_pages - phase_start.base_pages),
            format!(
                "{}/{}",
                coarse_tot.hits - phase_start.hits,
                coarse_tot.misses - phase_start.misses
            ),
        ]);
    }

    print_table(
        "coarse full-space rollups: lattice vs leaf baseline, per phase",
        &[
            "phase",
            "segs",
            "seg pages",
            "cuboids",
            "lattice bytes",
            "lat pages",
            "base pages",
            "hit/miss",
        ],
        &rows,
    );

    let page_gain = coarse_tot.base_pages as f64 / coarse_tot.lat_pages.max(1) as f64;
    let byte_gain = coarse_tot.base_bytes as f64 / coarse_tot.lat_bytes.max(1) as f64;
    println!(
        "coarse gate: pages {}→{} ({page_gain:.1}×), bytes {}→{} ({byte_gain:.1}×), \
         {:.1} µs/query vs {:.1} µs/query leaf",
        coarse_tot.base_pages,
        coarse_tot.lat_pages,
        coarse_tot.base_bytes,
        coarse_tot.lat_bytes,
        coarse_tot.lat_us / coarse_tot.queries.max(1) as f64,
        coarse_tot.base_us / coarse_tot.queries.max(1) as f64,
    );
    println!(
        "diced (not gated): pages {}→{}, cuboid hit/miss {}/{}",
        diced_tot.base_pages, diced_tot.lat_pages, diced_tot.hits, diced_tot.misses
    );

    let path = args.json.as_deref().unwrap_or("BENCH_rollup.json");
    let meta = vec![
        ("experiment", Json::S("rollup_lattice".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("update_batch", Json::U(n_updates as u64)),
        ("coarse_queries", Json::U(coarse_tot.queries)),
        ("diced_queries", Json::U(diced_tot.queries)),
        ("coarse.lattice_pages", Json::U(coarse_tot.lat_pages)),
        ("coarse.baseline_pages", Json::U(coarse_tot.base_pages)),
        ("coarse.lattice_bytes", Json::U(coarse_tot.lat_bytes)),
        ("coarse.baseline_bytes", Json::U(coarse_tot.base_bytes)),
        ("coarse.page_gain", Json::F(page_gain)),
        ("coarse.byte_gain", Json::F(byte_gain)),
        ("coarse.cuboid_hits", Json::U(coarse_tot.hits)),
        ("coarse.cuboid_misses", Json::U(coarse_tot.misses)),
        ("coarse.lattice_mean_us", Json::F(coarse_tot.lat_us / coarse_tot.queries.max(1) as f64)),
        ("coarse.baseline_mean_us", Json::F(coarse_tot.base_us / coarse_tot.queries.max(1) as f64)),
        ("diced.lattice_pages", Json::U(diced_tot.lat_pages)),
        ("diced.baseline_pages", Json::U(diced_tot.base_pages)),
        ("diced.cuboid_hits", Json::U(diced_tot.hits)),
        ("diced.cuboid_misses", Json::U(diced_tot.misses)),
        ("bit_identical", Json::B(!diverged)),
    ];
    write_json(path, &meta, &points).expect("write BENCH_rollup.json");
    obs.flush();

    if diverged {
        eprintln!("a lattice-planned answer changed bits vs the forced-leaf plan — failing");
        std::process::exit(1);
    }
    if page_gain < min_gain || byte_gain < min_gain {
        eprintln!(
            "coarse rollup gain pages {page_gain:.1}× / bytes {byte_gain:.1}× below the \
             {min_gain}× bar — failing"
        );
        std::process::exit(1);
    }
}
