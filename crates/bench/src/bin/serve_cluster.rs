//! Scatter-gather cluster benchmark: read scaling and bit-identity.
//!
//! Partitions one generated dataset into a 1-shard and a 4-shard
//! cluster, starts every shard server as a **child process** on a
//! loopback port (re-exec of this binary, the `serve_load` handshake:
//! the child prints `READY <addr>` once bound and exits on stdin EOF),
//! fronts each fleet with an in-process router, and measures:
//!
//! 1. **Bit-identity** — every sampled box and rollup is answered by
//!    the router byte-for-byte identically to a single-node server over
//!    the same dataset: cold (first touch), warm (cache-normalized
//!    repeat), and again after a cross-shard `/update` applied to both
//!    sides. Any mismatch fails the run — this is the merge contract,
//!    not a performance number.
//! 2. **Read scaling** — closed-loop client children (the `serve_load`
//!    READY/GO barrier) drive single-shard boxes through the router;
//!    the 4-shard fleet must clear ≥3× the 1-shard throughput. The gate
//!    hard-fails only on machines with ≥6 logical cores (4 shard
//!    processes + router + clients need somewhere to run); below that
//!    it prints a warning, because the contention is the host's, not
//!    the router's.
//!
//! Shard servers run with the result cache **disabled** so every
//! routed request pays a real pruned scan — throughput then measures
//! shard compute spread across processes, which is what sharding buys.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin serve_cluster
//! cargo run --release -p iolap-bench --bin serve_cluster -- --facts 5000 secs=1
//! ```

use iolap_bench::runs::{print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_cluster::{partition_dataset, shard_dir_name, Router, RouterHandle};
use iolap_core::{AllocConfig, PolicySpec};
use iolap_datagen::scaled;
use iolap_model::csv::{read_dataset, write_dataset};
use iolap_obs::json;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, raise_nofile_limit, wire, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse(20_000);
    if args.extra("shard-data").is_some() {
        shard_main(&args);
        return;
    }
    if args.extra("client-addr").is_some() {
        client_main(&args);
        return;
    }
    parent_main(&args);
}

// ---------------------------------------------------------------------------
// Parent: partition, fleets, identity gates, throughput sweep.

fn parent_main(args: &Args) {
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let shard_workers: usize = args.extra_or("shard-workers", 1);
    let conns: usize = args.extra_or("conns", 64);
    let drivers: usize = args.extra_or("drivers", 8);
    let secs: f64 = args.extra_or("secs", 2.0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    raise_nofile_limit();

    let base = std::env::temp_dir().join(format!("iolap-serve-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    std::fs::create_dir_all(&data).expect("creating data dir");
    write_dataset(&scaled(args.dataset, args.facts, args.seed), &data).expect("writing dataset");
    let (schema, table) = read_dataset(&data).expect("reloading dataset");
    println!(
        "serve_cluster — {:?} dataset, {} facts, {shard_workers} worker(s)/shard, \
         {conns} conns, {drivers} driver(s), {secs}s/point, {cores} core(s)",
        args.dataset, args.facts
    );

    let policy = PolicySpec::em_count(epsilon);
    let alloc = AllocConfig::builder().in_memory(4096).build();
    let c4 = partition_dataset(&data, &base.join("cluster4"), 4, &policy, &alloc)
        .expect("partitioning 4 shards");
    partition_dataset(&data, &base.join("cluster1"), 1, &policy, &alloc)
        .expect("partitioning 1 shard");

    // Single-node reference, built from the same CSVs every shard holds.
    // Caching stays on: surviving entries are restamped to the live
    // epoch at publish, so cached answers for untouched boxes are
    // byte-identical (modulo the `cached` flag, which the identity gate
    // normalizes) to a fresh scan.
    let ref_handle = Server::builder(table.clone(), policy.clone())
        .alloc(alloc.clone())
        .config(ServeConfig::builder().workers(2).idle_timeout(Duration::from_secs(600)).build())
        .bind("127.0.0.1:0")
        .expect("reference server starts");
    let ref_addr = ref_handle.addr().to_string();

    // Identity samples: the whole cube under every aggregate, every node
    // of a coarse dimension-0 level, a two-dimension dice, and rollups
    // along the first two dimensions (single-node side forced to the
    // scan plan — the canonical chunked fold the merge reproduces).
    let dim0 = schema.dim(0);
    let mut level = 0;
    for l in (0..dim0.levels()).rev() {
        if dim0.nodes_at_level(l).len() >= 2 {
            level = l;
            break;
        }
    }
    let nodes: Vec<String> =
        dim0.nodes_at_level(level).iter().map(|&n| dim0.node_name(n)).collect();
    let mut queries: Vec<String> = Vec::new();
    for agg in [AggFn::Sum, AggFn::Count, AggFn::Avg] {
        queries.push(wire::query_body(&[], agg, None));
    }
    for n in &nodes {
        queries.push(wire::query_body(&[(dim0.name(), n)], AggFn::Sum, None));
        queries.push(wire::query_body(&[(dim0.name(), n)], AggFn::Avg, None));
    }
    if schema.k() > 1 {
        let dim1 = schema.dim(1);
        let coarse = dim1.node_name(dim1.nodes_at_level(dim1.levels() - 1)[0]);
        queries.push(wire::query_body(
            &[(dim0.name(), &nodes[0]), (dim1.name(), &coarse)],
            AggFn::Sum,
            None,
        ));
    }
    let mut rollups: Vec<String> = Vec::new();
    rollups.push(wire::rollup_body(dim0.name(), dim0.level_name(level), &[], AggFn::Sum));
    if schema.k() > 1 {
        let dim1 = schema.dim(1);
        rollups.push(wire::rollup_body(
            dim1.name(),
            dim1.level_name(dim1.levels() - 1),
            &[],
            AggFn::Avg,
        ));
    }

    // Cross-shard mutation batch: one fact in the first shard's interval
    // and one in the last shard's, so the two-phase epoch flip really
    // spans the fleet.
    let first_hi = c4.shards.first().expect("4 shards").hi;
    let last_lo = c4.shards.last().expect("4 shards").lo;
    let f_lo = table.facts().iter().find(|f| f.dims[0] < first_hi).expect("fact in first shard");
    let f_hi = table.facts().iter().find(|f| f.dims[0] >= last_lo).expect("fact in last shard");
    let update = wire::update_body(&[
        wire::MutationReq::Update { fact_id: f_lo.id, measure: 123_456.5 },
        wire::MutationReq::Update { fact_id: f_hi.id, measure: 654_321.25 },
    ]);

    // Throughput mix: one box per sampled dimension-0 node — each
    // overlaps exactly one shard, so the router forwards and the fleet
    // serves disjoint slabs in parallel.
    let load_mix: Vec<String> =
        nodes.iter().map(|n| wire::query_body(&[(dim0.name(), n)], AggFn::Sum, None)).collect();

    let exe = std::env::current_exe().expect("current_exe");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut points: Vec<Vec<(&str, Json)>> = Vec::new();
    let mut rps_by_shards: Vec<(usize, f64)> = Vec::new();
    let mut identity_checks = 0u64;
    let mut identity_failures = 0u64;

    for shards in [1usize, 4] {
        let cluster_dir = base.join(format!("cluster{shards}"));
        let mut fleet = ShardFleet::spawn(&exe, &cluster_dir, shards, epsilon, shard_workers);
        let router = fleet.router(&cluster_dir);
        let router_addr = router.addr().to_string();

        // Identity gate: cold, then warm (cache flags normalized).
        let mut check = |label: &str| {
            for q in &queries {
                identity_checks += 1;
                if !bodies_match(&router_addr, &ref_addr, "/query", q, q) {
                    identity_failures += 1;
                    eprintln!("IDENTITY MISMATCH ({shards} shard(s), {label}): {q}");
                }
            }
            for r in &rollups {
                identity_checks += 1;
                let scan = format!("{},\"plan\":\"scan\"}}", &r[..r.len() - 1]);
                if !bodies_match(&router_addr, &ref_addr, "/rollup", r, &scan) {
                    identity_failures += 1;
                    eprintln!("IDENTITY MISMATCH ({shards} shard(s), {label}): {r}");
                }
            }
        };
        check("cold");
        check("warm");

        // Cross-shard update through the router AND on the reference,
        // then the whole sample set must agree again (epoch included).
        if shards > 1 {
            let (st, resp) = post(&router_addr, "/update", &update);
            assert_eq!(st, 200, "cluster update failed: {resp}");
            let (st, resp) = post(&ref_addr, "/update", &update);
            assert_eq!(st, 200, "reference update failed: {resp}");
            check("post-update");
        }

        // Throughput: closed-loop client children against the router.
        let (requests, rps, p50, p99, errors) =
            run_load(&exe, &router_addr, &load_mix, conns, drivers, secs);
        assert_eq!(errors, 0, "client errors against the {shards}-shard router");
        rps_by_shards.push((shards, rps));

        let counter = |name: &str| router.obs().counter(name).map_or(0, |c| c.get());
        let (legs, pruned, forwarded) = (
            counter("cluster.scatter.legs"),
            counter("cluster.scatter.pruned"),
            counter("cluster.forward"),
        );
        rows.push(vec![
            format!("{shards}"),
            format!("{requests}"),
            format!("{rps:.0}"),
            format!("{p50}"),
            format!("{p99}"),
            format!("{legs}"),
            format!("{forwarded}"),
            format!("{pruned}"),
        ]);
        points.push(vec![
            ("shards", Json::U(shards as u64)),
            ("requests", Json::U(requests)),
            ("throughput_rps", Json::F(rps)),
            ("p50_us", Json::U(p50)),
            ("p99_us", Json::U(p99)),
            ("scatter_legs", Json::U(legs)),
            ("forwarded", Json::U(forwarded)),
            ("pruned", Json::U(pruned)),
            ("errors", Json::U(errors)),
        ]);

        router.shutdown();
        fleet.shutdown();
    }
    ref_handle.shutdown();

    print_table(
        "scatter-gather read scaling (shard caches off, single-shard boxes)",
        &["shards", "requests", "req/s", "p50 µs", "p99 µs", "legs", "forwarded", "pruned"],
        &rows,
    );
    println!(
        "bit-identity: {identity_checks} router-vs-single checks, {identity_failures} mismatch(es)"
    );

    let speedup = match (&rps_by_shards[..], ()) {
        ([(1, a), (4, b)], ()) if *a > 0.0 => b / a,
        _ => 0.0,
    };
    let path = args.json.as_deref().unwrap_or("BENCH_cluster.json");
    let meta = [
        ("experiment", Json::S("serve_cluster".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("epsilon", Json::F(epsilon)),
        ("shard_workers", Json::U(shard_workers as u64)),
        ("conns", Json::U(conns as u64)),
        ("drivers", Json::U(drivers as u64)),
        ("secs_per_point", Json::F(secs)),
        ("cores", Json::U(cores as u64)),
        ("identity_checks", Json::U(identity_checks)),
        ("identity_failures", Json::U(identity_failures)),
        ("read_scaling_4x_over_1x", Json::F(speedup)),
    ];
    write_json(path, &meta, &points).expect("write BENCH_cluster.json");
    let _ = std::fs::remove_dir_all(&base);

    // Gates. Identity is unconditional; the scaling bar needs cores for
    // 4 shard processes + router + clients to actually run in parallel.
    if identity_failures > 0 {
        eprintln!("serve_cluster: {identity_failures} bit-identity mismatch(es) — failing");
        std::process::exit(1);
    }
    println!("read scaling: 4 shards = {speedup:.2}× the 1-shard point");
    if speedup < 3.0 {
        if cores >= 6 {
            eprintln!("serve_cluster: 4-shard scaling {speedup:.2}× is below the 3× bar — failing");
            std::process::exit(1);
        }
        eprintln!(
            "warning: 4-shard scaling {speedup:.2}× below the 3× bar \
             ({cores} core(s) — gate needs ≥6 to be meaningful)"
        );
    }
}

/// One shard fleet: child processes bound to loopback ports, shut down
/// by closing their stdin (the `serve_load` child contract).
struct ShardFleet {
    procs: Vec<Child>,
    addrs: Vec<String>,
}

impl ShardFleet {
    fn spawn(exe: &Path, cluster_dir: &Path, shards: usize, eps: f64, workers: usize) -> Self {
        let mut procs = Vec::with_capacity(shards);
        let mut addrs = Vec::with_capacity(shards);
        for i in 0..shards {
            let dir = cluster_dir.join(shard_dir_name(i));
            let mut p = Command::new(exe)
                .arg(format!("shard-data={}", dir.display()))
                .arg(format!("eps={eps}"))
                .arg(format!("shard-workers={workers}"))
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn shard child");
            let mut line = String::new();
            BufReader::new(p.stdout.take().expect("shard stdout"))
                .read_line(&mut line)
                .expect("shard READY");
            let addr = line
                .trim()
                .strip_prefix("READY ")
                .unwrap_or_else(|| panic!("unexpected shard handshake: {line:?}"))
                .to_string();
            addrs.push(addr);
            procs.push(p);
        }
        ShardFleet { procs, addrs }
    }

    fn router(&self, cluster_dir: &Path) -> RouterHandle {
        let mut b = Router::builder(cluster_dir).config(
            ServeConfig::builder().workers(4).idle_timeout(Duration::from_secs(600)).build(),
        );
        for (i, a) in self.addrs.iter().enumerate() {
            b = b.shard_replicas(i, &[a.as_str()]);
        }
        b.bind("127.0.0.1:0").expect("router starts")
    }

    fn shutdown(&mut self) {
        for p in &mut self.procs {
            drop(p.stdin.take());
        }
        for p in &mut self.procs {
            let st = p.wait().expect("shard child exits");
            assert!(st.success(), "shard child failed");
        }
    }
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    http_roundtrip(&mut conn, "POST", path, body).expect("roundtrip")
}

/// POST `a_body` to the router and `b_body` to the reference; true when
/// the responses agree byte-for-byte after normalizing the per-process
/// `cached` flag (each side has its own result cache).
fn bodies_match(router: &str, single: &str, path: &str, a_body: &str, b_body: &str) -> bool {
    let (sa, ra) = post(router, path, a_body);
    let (sb, rb) = post(single, path, b_body);
    let norm = |s: &str| s.replace("\"cached\":true", "\"cached\":false");
    let ok = sa == 200 && sb == 200 && norm(&ra) == norm(&rb);
    if !ok {
        eprintln!("  router {sa}: {ra}");
        eprintln!("  single {sb}: {rb}");
    }
    ok
}

/// Drive `mix` through `addr` with closed-loop client children and
/// merge their latency samples: (requests, rps, p50 µs, p99 µs, errors).
fn run_load(
    exe: &Path,
    addr: &str,
    mix: &[String],
    conns: usize,
    drivers: usize,
    secs: f64,
) -> (u64, f64, u64, u64, u64) {
    let children = 2usize.min(conns);
    let mut procs: Vec<Child> = Vec::new();
    let mut readers: Vec<BufReader<std::process::ChildStdout>> = Vec::new();
    for c in 0..children {
        let child_conns = conns / children + usize::from(c < conns % children);
        let child_drivers = (drivers / children).max(1);
        let mut p = Command::new(exe)
            .arg(format!("client-addr={addr}"))
            .arg(format!("client-conns={child_conns}"))
            .arg(format!("client-drivers={child_drivers}"))
            .arg(format!("client-secs={secs}"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn client child");
        let stdin = p.stdin.as_mut().expect("client stdin");
        writeln!(stdin, "{}", mix.len()).unwrap();
        for b in mix {
            writeln!(stdin, "{b}").unwrap();
        }
        stdin.flush().unwrap();
        readers.push(BufReader::new(p.stdout.take().expect("client stdout")));
        procs.push(p);
    }
    for r in readers.iter_mut() {
        let mut line = String::new();
        r.read_line(&mut line).expect("client READY");
        assert_eq!(line.trim(), "READY", "unexpected client handshake: {line:?}");
    }
    for p in procs.iter_mut() {
        writeln!(p.stdin.as_mut().unwrap(), "GO").unwrap();
    }
    let mut lat_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for r in readers.iter_mut() {
        let mut line = String::new();
        r.read_line(&mut line).expect("client RESULT");
        let payload = line
            .strip_prefix("RESULT ")
            .unwrap_or_else(|| panic!("unexpected client output: {line:?}"));
        let v = json::parse(payload.trim()).expect("client RESULT JSON");
        errors += v.get("errors").and_then(|x| x.as_u64()).expect("errors");
        let samples = v.get("lat_us").and_then(|x| x.as_array()).expect("lat_us");
        lat_us.extend(samples.iter().map(|s| s.as_u64().expect("µs sample")));
    }
    for mut p in procs {
        drop(p.stdin.take());
        let st = p.wait().expect("client child exits");
        assert!(st.success(), "client child failed");
    }
    lat_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat_us.is_empty() {
            return 0;
        }
        lat_us[(((lat_us.len() - 1) as f64) * p) as usize]
    };
    let requests = lat_us.len() as u64;
    (requests, requests as f64 / secs, pct(0.50), pct(0.99), errors)
}

// ---------------------------------------------------------------------------
// Shard child: one single-node server over its shard directory. The
// result cache stays on — epoch restamping at publish keeps surviving
// entries byte-identical to a fresh scan.

fn shard_main(args: &Args) {
    let dir = PathBuf::from(args.extra("shard-data").unwrap());
    let eps: f64 = args.extra_or("eps", 0.01);
    let workers: usize = args.extra_or("shard-workers", 1);
    let (_, table) = read_dataset(&dir).expect("reading shard dataset");
    let handle: ServerHandle = Server::builder(table, PolicySpec::em_count(eps))
        .alloc(AllocConfig::builder().in_memory(4096).build())
        .config(
            ServeConfig::builder()
                .workers(workers)
                .role("shard")
                .idle_timeout(Duration::from_secs(600))
                .build(),
        )
        .bind("127.0.0.1:0")
        .expect("shard server starts");
    println!("READY {}", handle.addr());
    std::io::stdout().flush().unwrap();
    // Parent closes our stdin to shut the fleet down.
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Client child: the serve_load closed-loop keep-alive block (READY/GO).

fn client_main(args: &Args) {
    let addr: std::net::SocketAddr =
        args.extra("client-addr").unwrap().parse().expect("client-addr HOST:PORT");
    let conns: usize = args.extra_or("client-conns", 0);
    let drivers: usize = args.extra_or("client-drivers", 1);
    let secs: f64 = args.extra_or("client-secs", 2.0);
    assert!(conns > 0, "client-conns must be positive");
    raise_nofile_limit();

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut next_line = || lines.next().expect("parent stdin line").expect("read stdin");
    let nbodies: usize = next_line().trim().parse().expect("body count");
    let bodies: Arc<Vec<String>> = Arc::new((0..nbodies).map(|_| next_line()).collect());

    let mut sockets: Vec<TcpStream> = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut attempt = 0;
        let s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if attempt < 50 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    let _ = e;
                }
                Err(e) => panic!("connect: {e}"),
            }
        };
        s.set_read_timeout(Some(Duration::from_secs_f64(secs + 15.0))).unwrap();
        let _ = s.set_nodelay(true);
        sockets.push(s);
    }
    println!("READY");
    std::io::stdout().flush().unwrap();
    assert_eq!(next_line().trim(), "GO", "expected GO");

    let next = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let per = conns.div_ceil(drivers.max(1));
    let mut threads = Vec::new();
    while !sockets.is_empty() {
        let mut share: Vec<TcpStream> = sockets.drain(..per.min(sockets.len())).collect();
        let bodies = Arc::clone(&bodies);
        let next = Arc::clone(&next);
        threads.push(std::thread::spawn(move || {
            let mut lat_us: Vec<u64> = Vec::new();
            let mut errors = 0u64;
            'window: loop {
                let mut k = 0;
                while k < share.len() {
                    if Instant::now() >= deadline {
                        break 'window;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize % bodies.len();
                    let t = Instant::now();
                    match http_roundtrip(&mut share[k], "POST", "/query", &bodies[i]) {
                        Ok((200, _)) => {
                            lat_us.push(t.elapsed().as_micros() as u64);
                            k += 1;
                        }
                        Ok(_) | Err(_) => {
                            errors += 1;
                            share.swap_remove(k);
                        }
                    }
                }
                if share.is_empty() {
                    break;
                }
            }
            (lat_us, errors)
        }));
    }

    let mut lat_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for t in threads {
        let (l, e) = t.join().expect("driver thread");
        lat_us.extend(l);
        errors += e;
    }
    let mut out = String::with_capacity(lat_us.len() * 5 + 64);
    out.push_str("RESULT {\"requests\":");
    out.push_str(&lat_us.len().to_string());
    out.push_str(",\"errors\":");
    out.push_str(&errors.to_string());
    out.push_str(",\"lat_us\":[");
    for (i, v) in lat_us.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("]}");
    println!("{out}");
    std::io::stdout().flush().unwrap();
}
