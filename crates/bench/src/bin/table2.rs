//! Reproduce **Table 2**: the dimension characteristics of the automotive
//! dataset, plus the Section 11 dataset description (fact counts, the
//! imprecision mix, summary-table count).
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin table2 -- --paper-scale
//! ```

use iolap_bench::runs::print_table;
use iolap_bench::Args;
use iolap_datagen::census::dimension_shape;
use iolap_datagen::{census, scaled};

fn main() {
    let args = Args::parse(100_000);
    let table = scaled(args.dataset, args.facts, args.seed);
    let c = census(&table);

    // The Table 2 replica: per dimension, each level's node count and the
    // percentage of facts taking a value from that level.
    let shape = dimension_shape(&table);
    let mut rows = Vec::new();
    let max_levels = shape.iter().map(Vec::len).max().unwrap_or(0);
    for t in 0..max_levels {
        // Row t from the top: ALL first, leaves last (as in the paper).
        let mut row = Vec::new();
        for (d, dim_shape) in shape.iter().enumerate() {
            if t < dim_shape.len() {
                let level_idx = dim_shape.len() - 1 - t;
                let (name, nodes) = &dim_shape[level_idx];
                let pct =
                    100.0 * c.per_dim_level_counts[d][level_idx] as f64 / c.n_facts.max(1) as f64;
                row.push(format!("{name}({nodes})({pct:.0}%)"));
            } else {
                row.push(String::new());
            }
        }
        rows.push(row);
    }
    print_table(
        &format!("Table 2 — dimensions of the {:?} dataset", args.dataset),
        &["SR-AREA", "BRAND", "TIME", "LOCATION"],
        &rows,
    );

    println!("\nDataset description (Section 11):");
    println!("{c}");
    println!("Paper's real data for reference: 797,570 facts; 557,255 precise;");
    println!("240,315 imprecise (30%); 67% / 33% / 0.01% imprecise in 1 / 2 / 3 dims;");
    println!("35 imprecise summary tables; no ALL values.");
}
