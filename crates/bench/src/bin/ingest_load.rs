//! Streaming-ingest load generator for the `iolap-serve` write path.
//!
//! Three phases against one generated dataset:
//!
//! 1. **Read baseline** — reader threads only, no writes: the p99 every
//!    later number is judged against.
//! 2. **Mixed load** — the same readers with concurrent writer threads
//!    issuing `/update` batches under a deferred group commit, so folds
//!    build delta segments and background compactions run *while* the
//!    readers scan. Reports sustained acked updates/sec and the read
//!    p99 ratio vs the baseline (the epoch-swap contract: readers never
//!    block on the write path, so the ratio should stay within ~2×).
//! 3. **Kill −9 / recover** — a child server process (re-exec of this
//!    binary) takes acknowledged-durable updates on a WAL with the fold
//!    deferred far into the future, is SIGKILLed with the whole backlog
//!    unfolded, and restarts on the same log. Every acked batch must
//!    replay: the restarted server's query bodies are compared
//!    byte-for-byte (f64 text round-trips bit-exactly through the wire
//!    layer) against a reference server that applied the same batches
//!    synchronously with no WAL at all.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin ingest_load
//! cargo run --release -p iolap-bench --bin ingest_load -- --facts 5000 --json BENCH_ingest.json
//! ```

use iolap_bench::runs::{print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_core::{AllocConfig, PolicySpec};
use iolap_datagen::scaled;
use iolap_obs::json;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, wire, ServeConfig, Server};
use iolap_storage::TempDir;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse(2_000);
    if args.extra("ingest-child-wal").is_some() {
        child_main(&args);
        return;
    }
    parent_main(&args);
}

// ---------------------------------------------------------------------------
// Shared helpers

/// The read mix: SUM and COUNT over every node of the coarsest
/// dimension-0 level that still has a handful of regions, plus the
/// whole cube (same shape as `serve_load`).
fn query_mix(schema: &iolap_model::Schema) -> Vec<String> {
    let dim = schema.dim(0);
    let mut regions: Vec<(String, String)> = Vec::new();
    for l in (0..dim.levels()).rev() {
        let nodes = dim.nodes_at_level(l);
        if nodes.len() >= 2 && nodes.len() <= 32 {
            regions.extend(nodes.iter().map(|&n| (dim.name().to_string(), dim.node_name(n))));
            break;
        }
    }
    let mut bodies: Vec<String> = Vec::new();
    for (d, n) in &regions {
        for agg in [AggFn::Sum, AggFn::Count] {
            bodies.push(wire::query_body(&[(d.as_str(), n.as_str())], agg, None));
        }
    }
    bodies.push(wire::query_body(&[], AggFn::Sum, None));
    bodies
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(((sorted.len() - 1) as f64) * p) as usize]
}

/// Deterministic xorshift so writer traffic is reproducible per seed.
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

struct PhaseStats {
    read_lat: Vec<u64>,
    write_lat: Vec<u64>,
    acked_updates: u64,
    secs: f64,
}

/// Run readers (and optionally writers) against `addr` for `secs`.
/// Writers send single-mutation `UpdateMeasure` batches on existing
/// fact ids; every non-200 on either side is fatal.
fn run_phase(
    addr: SocketAddr,
    bodies: &Arc<Vec<String>>,
    readers: usize,
    writers: usize,
    ids: &Arc<Vec<u64>>,
    secs: f64,
    seed: u64,
) -> PhaseStats {
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicU64::new(0));
    let mut reader_joins = Vec::new();
    for r in 0..readers {
        let bodies = bodies.clone();
        let stop = stop.clone();
        reader_joins.push(std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("reader connect");
            let mut lat = Vec::new();
            let mut i = r;
            while !stop.load(Ordering::Relaxed) {
                let body = &bodies[i % bodies.len()];
                i += 1;
                let t0 = Instant::now();
                let (status, resp) =
                    http_roundtrip(&mut conn, "POST", "/query", body).expect("read");
                assert_eq!(status, 200, "read failed: {resp}");
                lat.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            lat
        }));
    }
    let mut writer_joins = Vec::new();
    for w in 0..writers {
        let ids = ids.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        writer_joins.push(std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("writer connect");
            let mut lat = Vec::new();
            let mut rng = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
            while !stop.load(Ordering::Relaxed) {
                let id = ids[(xorshift(&mut rng) % ids.len() as u64) as usize];
                let measure = (xorshift(&mut rng) % 1_000_000) as f64 / 64.0;
                let body = wire::update_body(&[wire::MutationReq::Update { fact_id: id, measure }]);
                let t0 = Instant::now();
                let (status, resp) =
                    http_roundtrip(&mut conn, "POST", "/update", &body).expect("write");
                assert_eq!(status, 200, "write failed: {resp}");
                lat.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                acked.fetch_add(1, Ordering::Relaxed);
            }
            lat
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let mut read_lat: Vec<u64> = Vec::new();
    for j in reader_joins {
        read_lat.extend(j.join().expect("reader thread"));
    }
    let mut write_lat: Vec<u64> = Vec::new();
    for j in writer_joins {
        write_lat.extend(j.join().expect("writer thread"));
    }
    read_lat.sort_unstable();
    write_lat.sort_unstable();
    PhaseStats {
        read_lat,
        write_lat,
        acked_updates: acked.load(Ordering::Relaxed),
        secs: t0.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// Parent: baseline → mixed load → kill −9 / recover.

fn parent_main(args: &Args) {
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let workers: usize = args.extra_or("workers", 2);
    let readers: usize = args.extra_or("readers", 2);
    let writers: usize = args.extra_or("writers", 2);
    let secs: f64 = args.extra_or("secs", 2.0);
    let group_ms: u64 = args.extra_or("group-ms", 5);
    let group_frames: u64 = args.extra_or("group-frames", 64);
    let kill_batches: u64 = args.extra_or("kill-batches", 40);

    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    let ids: Arc<Vec<u64>> = Arc::new(table.facts().iter().map(|f| f.id).collect());
    let bodies = Arc::new(query_mix(&schema));
    println!(
        "ingest_load — {:?} dataset, {} facts, {workers} worker(s), {readers} reader(s), \
         {writers} writer(s), {secs}s/phase, group {group_ms}ms/{group_frames} frames",
        args.dataset, args.facts
    );

    let dir = TempDir::new("ingest-load").expect("tempdir");
    let policy = PolicySpec::em_count(epsilon);
    let alloc = AllocConfig::builder().in_memory(4096).build();
    let handle = Server::builder(table.clone(), policy.clone())
        .alloc(alloc.clone())
        .config(
            ServeConfig::builder()
                .workers(workers)
                .idle_timeout(Duration::from_secs(600))
                .wal_path(dir.path().join("mixed.wal"))
                .group_window(Duration::from_millis(group_ms))
                .group_frames(group_frames)
                .build(),
        )
        .bind("127.0.0.1:0")
        .expect("server starts");
    let addr = handle.addr();
    let counter = |name: &str| handle.obs().counter(name).map_or(0, |c| c.get());

    // Phase 1: read-only baseline.
    let base = run_phase(addr, &bodies, readers, 0, &ids, secs, args.seed);
    let base_p99 = percentile(&base.read_lat, 0.99);

    // Phase 2: concurrent writers under the deferred group commit —
    // folds and background compactions happen while the readers run.
    let compactions0 = counter("edb.compactions");
    let folds0 = counter("ingest.folds");
    let mixed = run_phase(addr, &bodies, readers, writers, &ids, secs, args.seed);
    let mixed_p99 = percentile(&mixed.read_lat, 0.99);
    let compactions = counter("edb.compactions") - compactions0;
    let folds = counter("ingest.folds") - folds0;
    let wal_bytes = counter("ingest.wal_bytes");
    let updates_per_sec = mixed.acked_updates as f64 / mixed.secs;
    let p99_ratio = if base_p99 > 0 { mixed_p99 as f64 / base_p99 as f64 } else { 0.0 };
    handle.shutdown();

    // Phase 3: kill −9 mid-backlog and recover on the same WAL.
    let kill = kill_recover_phase(args, &table, &policy, &alloc, &bodies, kill_batches);

    let rows = vec![
        vec![
            "baseline".into(),
            format!("{}", base.read_lat.len()),
            format!("{:.0}", base.read_lat.len() as f64 / base.secs),
            format!("{}", percentile(&base.read_lat, 0.50)),
            format!("{base_p99}"),
            "0".into(),
            "-".into(),
            "-".into(),
        ],
        vec![
            "mixed".into(),
            format!("{}", mixed.read_lat.len()),
            format!("{:.0}", mixed.read_lat.len() as f64 / mixed.secs),
            format!("{}", percentile(&mixed.read_lat, 0.50)),
            format!("{mixed_p99}"),
            format!("{:.0}", updates_per_sec),
            format!("{}", percentile(&mixed.write_lat, 0.99)),
            format!("{p99_ratio:.2}"),
        ],
    ];
    print_table(
        "streaming ingest: readers under a deferred group commit",
        &["phase", "reads", "reads/s", "p50 µs", "p99 µs", "upd/s", "upd p99 µs", "p99 ratio"],
        &rows,
    );
    println!(
        "mixed phase: {folds} fold(s), {compactions} background compaction(s), \
         {wal_bytes} WAL bytes; kill−9 recovered epoch {} of {} acked batches, identity {}",
        kill.recovered_epoch, kill.acked, kill.identical
    );

    let path = args.json.as_deref().unwrap_or("BENCH_ingest.json");
    let meta = [
        ("experiment", Json::S("ingest_load".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("epsilon", Json::F(epsilon)),
        ("workers", Json::U(workers as u64)),
        ("readers", Json::U(readers as u64)),
        ("writers", Json::U(writers as u64)),
        ("secs_per_phase", Json::F(secs)),
        ("group_window_ms", Json::U(group_ms)),
        ("group_frames", Json::U(group_frames)),
    ];
    let points = vec![
        vec![
            ("phase", Json::S("read_baseline".into())),
            ("reads", Json::U(base.read_lat.len() as u64)),
            ("reads_per_sec", Json::F(base.read_lat.len() as f64 / base.secs)),
            ("read_p50_us", Json::U(percentile(&base.read_lat, 0.50))),
            ("read_p99_us", Json::U(base_p99)),
        ],
        vec![
            ("phase", Json::S("mixed".into())),
            ("reads", Json::U(mixed.read_lat.len() as u64)),
            ("reads_per_sec", Json::F(mixed.read_lat.len() as f64 / mixed.secs)),
            ("read_p50_us", Json::U(percentile(&mixed.read_lat, 0.50))),
            ("read_p99_us", Json::U(mixed_p99)),
            ("read_p99_ratio_vs_baseline", Json::F(p99_ratio)),
            ("acked_updates", Json::U(mixed.acked_updates)),
            ("updates_per_sec", Json::F(updates_per_sec)),
            ("update_p50_us", Json::U(percentile(&mixed.write_lat, 0.50))),
            ("update_p99_us", Json::U(percentile(&mixed.write_lat, 0.99))),
            ("folds", Json::U(folds)),
            ("background_compactions", Json::U(compactions)),
            ("wal_bytes", Json::U(wal_bytes)),
        ],
        vec![
            ("phase", Json::S("kill_recover".into())),
            ("acked_batches", Json::U(kill.acked)),
            ("recovered_epoch", Json::U(kill.recovered_epoch)),
            ("queries_compared", Json::U(kill.queries_compared)),
            ("bit_identical", Json::S(format!("{}", kill.identical))),
        ],
    ];
    write_json(path, &meta, &points).expect("write BENCH_ingest.json");

    assert!(kill.identical, "kill−9 recovery diverged from the synchronous replay");
    assert_eq!(kill.recovered_epoch, kill.acked, "acked-durable batches must all replay");
    // Advisory bars (CI machines vary): flag, don't fail.
    if p99_ratio > 2.0 {
        eprintln!(
            "warning: read p99 under write load ({mixed_p99} µs) is more than 2× \
             the no-write baseline ({base_p99} µs)"
        );
    }
    if updates_per_sec < 100.0 {
        eprintln!("warning: {updates_per_sec:.0} acked updates/s is below the 100/s bar");
    }
}

struct KillRecover {
    acked: u64,
    recovered_epoch: u64,
    queries_compared: u64,
    identical: bool,
}

/// Spawn a child server with the fold deferred far beyond the test
/// horizon, ack `batches` durable updates, SIGKILL it with the whole
/// backlog unfolded, restart it on the same WAL, and byte-compare its
/// answers against a WAL-less reference that applied the same batches
/// synchronously.
fn kill_recover_phase(
    args: &Args,
    table: &iolap_model::FactTable,
    policy: &PolicySpec,
    alloc: &AllocConfig,
    bodies: &Arc<Vec<String>>,
    batches: u64,
) -> KillRecover {
    let dir = TempDir::new("ingest-kill").expect("tempdir");
    let wal = dir.path().join("ingest.wal");
    let ids: Vec<u64> = table.facts().iter().map(|f| f.id).collect();
    let mut rng = args.seed | 1;
    let muts: Vec<(u64, f64)> = (0..batches)
        .map(|_| {
            let id = ids[(xorshift(&mut rng) % ids.len() as u64) as usize];
            // Awkward bit patterns on purpose: the identity check is
            // about f64 bits surviving the WAL round trip.
            (id, f64::from_bits(0x3FF0_0000_0000_0000 | (xorshift(&mut rng) % (1 << 40))))
        })
        .collect();

    let (mut child, addr) = spawn_child(args, &wal);
    let mut conn = TcpStream::connect(addr).expect("connect child");
    for (id, measure) in &muts {
        let body =
            wire::update_body(&[wire::MutationReq::Update { fact_id: *id, measure: *measure }]);
        let (status, resp) = http_roundtrip(&mut conn, "POST", "/update", &body).expect("update");
        assert_eq!(status, 200, "child update failed: {resp}");
        let v = json::parse(&resp).expect("update response");
        assert_eq!(
            v.get("durable").and_then(|d| d.as_bool()),
            Some(true),
            "child must ack at WAL-durable: {resp}"
        );
    }
    drop(conn);
    // SIGKILL with every batch durable but none folded.
    child.kill().expect("kill -9 child");
    let _ = child.wait();

    let (mut child, addr) = spawn_child(args, &wal);
    let mut conn = TcpStream::connect(addr).expect("connect recovered child");
    let (_, hb) = http_roundtrip(&mut conn, "GET", "/healthz", "").expect("healthz");
    let recovered_epoch =
        json::parse(&hb).ok().and_then(|v| v.get("epoch").and_then(|e| e.as_u64())).unwrap_or(0);

    // Reference: the same acked history applied synchronously, no WAL.
    let reference = Server::builder(table.clone(), policy.clone())
        .alloc(alloc.clone())
        .config(ServeConfig::builder().workers(1).build())
        .bind("127.0.0.1:0")
        .expect("reference server");
    let mut ref_conn = TcpStream::connect(reference.addr()).expect("connect reference");
    for (id, measure) in &muts {
        let body =
            wire::update_body(&[wire::MutationReq::Update { fact_id: *id, measure: *measure }]);
        let (status, resp) =
            http_roundtrip(&mut ref_conn, "POST", "/update", &body).expect("ref update");
        assert_eq!(status, 200, "reference update failed: {resp}");
    }

    let norm = |s: &str| s.replace("\"cached\":true", "\"cached\":false");
    let mut identical = true;
    for body in bodies.iter() {
        let (sa, a) = http_roundtrip(&mut conn, "POST", "/query", body).expect("recovered query");
        let (sb, b) = http_roundtrip(&mut ref_conn, "POST", "/query", body).expect("ref query");
        assert_eq!((sa, sb), (200, 200), "query failed: {a} / {b}");
        if norm(&a) != norm(&b) {
            eprintln!("identity mismatch for {body}:\n  recovered: {a}\n  reference: {b}");
            identical = false;
        }
    }
    reference.shutdown();
    child.kill().expect("stop recovered child");
    let _ = child.wait();
    KillRecover {
        acked: batches,
        recovered_epoch,
        queries_compared: bodies.len() as u64,
        identical,
    }
}

fn spawn_child(args: &Args, wal: &std::path::Path) -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut p = Command::new(exe)
        .arg("--facts")
        .arg(format!("{}", args.facts))
        .arg("--seed")
        .arg(format!("{}", args.seed))
        .arg(format!("ingest-child-wal={}", wal.display()))
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn ingest child");
    let mut reader = BufReader::new(p.stdout.take().expect("child stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("child READY");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected child handshake: {line:?}"))
        .parse()
        .expect("child addr");
    (p, addr)
}

// ---------------------------------------------------------------------------
// Child: a WAL-backed server whose fold never triggers on its own — the
// parent's SIGKILL always lands with the backlog unfolded.

fn child_main(args: &Args) {
    let wal = std::path::PathBuf::from(args.extra("ingest-child-wal").unwrap());
    let table = scaled(args.dataset, args.facts, args.seed);
    let handle = Server::builder(table, PolicySpec::em_count(args.extra_or("eps", 0.01)))
        .alloc(AllocConfig::builder().in_memory(4096).build())
        .config(
            ServeConfig::builder()
                .workers(1)
                .wal_path(wal)
                .group_window(Duration::from_secs(3600))
                .group_frames(u64::MAX)
                .build(),
        )
        .bind("127.0.0.1:0")
        .expect("child server starts");
    println!("READY {}", handle.addr());
    std::io::stdout().flush().unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
