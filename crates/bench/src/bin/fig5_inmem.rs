//! Reproduce **Figures 5a–b**: in-memory running time vs. number of
//! iterations, for the automotive (5a) and synthetic (5b) datasets.
//!
//! The paper gives every algorithm a buffer larger than the fact table
//! ("the entire fact table fits into memory… directly compare the CPU
//! time each algorithm requires"), then sweeps ε so the run takes 2–10
//! iterations. Expected shape: Independent worst (re-sorting),
//! Block best at few iterations, Transitive flat and winning as the
//! iteration count grows.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin fig5_inmem -- --dataset automotive
//! cargo run --release -p iolap-bench --bin fig5_inmem -- --dataset synthetic --paper-scale
//! ```

use iolap_bench::runs::{bench_config, print_table, run_once};
use iolap_bench::{Args, Json};
use iolap_core::Algorithm;
use iolap_datagen::scaled;

fn main() {
    let args = Args::parse(150_000);
    let table = scaled(args.dataset, args.facts, args.seed);
    println!("Figure 5a/b — in-memory CPU time, {:?} dataset, {} facts", args.dataset, args.facts);

    // Buffer comfortably larger than all working files.
    let buffer_pages = 1 << 20; // 4 GiB of page budget = effectively ∞
    let epsilons = [0.1f64, 0.05, 0.01, 0.005];

    let obs = args.obs();
    let cfg = bench_config(buffer_pages, args.on_disk, args.threads, args.prefetch, obs.clone());
    let algorithms = [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive];
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for eps in epsilons {
        for alg in algorithms {
            let p = run_once(&table, alg, eps, 60, &cfg);
            points.push(p.json_fields());
            rows.push(vec![
                format!("{eps}"),
                format!("{}", p.report.iterations),
                alg.to_string(),
                format!("{:.3}", p.alloc_secs()),
                format!("{}", p.alloc_ios()),
                if p.report.converged { "yes".into() } else { "CAP".into() },
            ]);
        }
    }
    print_table(
        "time vs iterations (in-memory)",
        &["epsilon", "iters", "algorithm", "alloc s", "alloc I/Os", "converged"],
        &rows,
    );
    println!("\nPaper shape: Independent > Block and > Transitive everywhere;");
    println!("Transitive ~flat in iterations and overtakes Block at higher iteration counts.");
    if let Some(path) = &args.json {
        let meta = [
            ("figure", Json::S("5a-b".into())),
            ("dataset", Json::S(format!("{:?}", args.dataset))),
            ("facts", Json::U(args.facts)),
            ("seed", Json::U(args.seed)),
        ];
        iolap_bench::runs::write_json(path, &meta, &points).expect("write --json output");
    }
    obs.flush();
}
