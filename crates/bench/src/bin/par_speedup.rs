//! Parallel-speedup experiment for the Transitive step-3 worker pool:
//! wall-clock of the allocation passes at 1/2/4/8 worker threads on the
//! synthetic (Figure 5b-style) dataset, buffer large enough that most
//! components stay buffer-resident (the parallelizable regime; external
//! components always run sequentially on the coordinator).
//!
//! Theorem 2 makes the schedule irrelevant to the fixpoint, so every row
//! reports the same iteration count and the same EDB — only the
//! wall-clock moves. Page I/O is identical across thread counts because
//! the coordinator performs all of it.
//!
//! A second sweep repeats the thread counts under a tiny (I/O-bound)
//! buffer, where speedup saturates on the coordinator's page I/O — the
//! regime the `--prefetch N` pipeline overlaps.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin par_speedup
//! cargo run --release -p iolap-bench --bin par_speedup -- --facts 400000 --json BENCH_par.json
//! ```

use iolap_bench::runs::{bench_config, print_table, run_once, write_json};
use iolap_bench::{Args, Json};
use iolap_core::Algorithm;
use iolap_datagen::{scaled, DatasetKind};

fn main() {
    let mut args = Args::parse(200_000);
    args.dataset = DatasetKind::Synthetic;
    let table = scaled(args.dataset, args.facts, args.seed);
    let buffer_pages: usize = args.extra_or("buffer-pages", 1 << 16); // 256 MB
    let epsilon: f64 = args.extra_or("eps", 0.005);
    let repeats: u32 = args.extra_or("repeats", 3);
    println!(
        "Parallel speedup — Transitive step 3, synthetic dataset, {} facts, \
         {buffer_pages} pages, ε = {epsilon}, best of {repeats}",
        args.facts
    );

    let obs = args.obs();
    let thread_counts = [1usize, 2, 4, 8];
    let mut points = Vec::new();
    // Two regimes: the CPU-bound one the worker pool targets (components
    // buffer-resident), and an I/O-bound one (tiny pool, hit ratio well
    // under 0.9) where wall-clock is dominated by the coordinator's page
    // I/O — the regime the prefetch pipeline (`--prefetch N`) overlaps.
    let io_bound_pages: usize = args.extra_or("io-buffer-pages", 96);
    for (label, pages) in [
        ("CPU-bound (components resident)", buffer_pages),
        ("I/O-bound (tiny pool)", io_bound_pages),
    ] {
        let mut rows = Vec::new();
        let mut base_secs = 0.0f64;
        for threads in thread_counts {
            let cfg = bench_config(pages, args.on_disk, threads, args.prefetch, obs.clone());
            // Best-of-N: the quantity of interest is the schedule's cost,
            // not allocator/OS noise.
            let mut best = run_once(&table, Algorithm::Transitive, epsilon, 60, &cfg);
            for _ in 1..repeats {
                let p = run_once(&table, Algorithm::Transitive, epsilon, 60, &cfg);
                if p.alloc_secs() < best.alloc_secs() {
                    best = p;
                }
            }
            if threads == 1 {
                base_secs = best.alloc_secs();
            }
            let speedup = base_secs / best.alloc_secs();
            let mut fields = best.json_fields();
            fields.push(("speedup", Json::F(speedup)));
            points.push(fields);
            rows.push(vec![
                format!("{threads}"),
                format!("{}", best.report.iterations),
                format!("{:.3}", best.alloc_secs()),
                format!("{:.2}x", speedup),
                format!("{}", best.alloc_ios()),
                format!("{:.3}", best.report.pool_hit_ratio()),
            ]);
        }
        print_table(
            &format!("Transitive alloc wall-clock vs worker threads — {label}, {pages} pages"),
            &["threads", "iters", "alloc s", "speedup", "alloc I/Os", "hit ratio"],
            &rows,
        );
    }

    let path = args.json.as_deref().unwrap_or("BENCH_par.json");
    let meta = [
        ("experiment", Json::S("par_speedup".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("buffer_pages", Json::U(buffer_pages as u64)),
        ("epsilon", Json::F(epsilon)),
        ("repeats", Json::U(u64::from(repeats))),
    ];
    write_json(path, &meta, &points).expect("write BENCH_par.json");
    obs.flush();
}
