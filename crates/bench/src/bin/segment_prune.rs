//! Fence-pruning benchmark: selective region queries over the segment
//! layer, pruned scan vs full scan.
//!
//! The segment footer's per-page fence intervals (min/max leaf id per
//! dimension) let a query skip every page provably disjoint from its box
//! — Theorem 12's contrapositive: a page whose fences miss the box on
//! some dimension cannot contain a contributing entry. The contract is
//! that pruning only ever skips such pages, so the visited entry sequence
//! — and therefore every f64 in the answer — is **bit-identical** to the
//! unpruned scan. This binary enforces both halves: identical bits on
//! every query, and (for selective boxes, ≤ `max-frac` of the cell space)
//! at least `min-ratio`× fewer pages read. Either failure exits non-zero,
//! which makes the binary double as the CI smoke check.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin segment_prune
//! cargo run --release -p iolap-bench --bin segment_prune -- --facts 5000 --json BENCH_segments.json
//! ```

use iolap_bench::runs::{bench_config, print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_core::{allocate, Algorithm, PolicySpec, SegmentCursor};
use iolap_datagen::scaled;
use iolap_model::{RegionBox, MAX_DIMS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Sum/count accumulation over a cursor, timed, with scan stats.
fn scan(mut cursor: SegmentCursor<'_>) -> (f64, f64, u64, u64, f64) {
    let t0 = Instant::now();
    let mut sum = 0.0;
    let mut count = 0.0;
    cursor.for_each(|e| {
        sum += e.weight * e.measure;
        count += e.weight;
    });
    let us = t0.elapsed().as_secs_f64() * 1e6;
    let st = cursor.stats();
    (sum, count, st.pages_read, st.pages_pruned, us)
}

fn main() {
    let args = Args::parse(20_000);
    let queries: usize = args.extra_or("queries", 64);
    // Selectivity ceiling: a query box may cover at most this fraction of
    // the cell space (the acceptance bar targets boxes ≤ 1% of cells).
    let max_frac: f64 = args.extra_or("max-frac", 0.01);
    let min_ratio: f64 = args.extra_or("min-ratio", 5.0);
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let buffer_pages: usize = args.extra_or("buffer-pages", 2048);

    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    let k = schema.k();
    println!(
        "Segment pruning — {:?} dataset, {} facts, {queries} boxes ≤ {max_frac} of {} cells",
        args.dataset,
        args.facts,
        schema.num_possible_cells()
    );

    let obs = args.obs();
    let cfg = bench_config(buffer_pages, args.on_disk, args.threads, args.prefetch, obs.clone());
    let policy = PolicySpec::em_count(epsilon).with_max_iters(16);
    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).expect("allocation");
    let mut edb = run.edb;
    let views = edb.segments().expect("segment view");
    let total_pages: u64 = views.iter().map(|v| v.segment.num_pages()).sum();
    println!(
        "EDB: {} entries in {} segment(s), {total_pages} pages",
        edb.num_entries(),
        views.len()
    );

    // Random selective boxes: restrict every dimension to a narrow random
    // leaf interval, rejection-sampling until the box is selective enough.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5e97_13a7);
    let mut boxes = Vec::with_capacity(queries);
    while boxes.len() < queries {
        let mut lo = [0u32; MAX_DIMS];
        let mut hi = [0u32; MAX_DIMS];
        for d in 0..k {
            let leaves = schema.dim(d).num_leaves();
            // Aim for ~a tenth of the dimension; k such restrictions
            // compound to well under max_frac on multi-dim schemas.
            let width = (leaves / 10).max(1);
            let start = rng.random_range(0..leaves.saturating_sub(width - 1).max(1));
            lo[d] = start;
            hi[d] = (start + width).min(leaves);
        }
        let bx = RegionBox { lo, hi, k: k as u8 };
        if (bx.num_cells() as f64) <= max_frac * schema.num_possible_cells() as f64 {
            boxes.push(bx);
        }
    }

    let mut points = Vec::new();
    let mut diverged = false;
    let mut full_pages_total = 0u64;
    let mut pruned_pages_total = 0u64;
    let mut full_us_total = 0.0;
    let mut pruned_us_total = 0.0;
    for (i, bx) in boxes.iter().enumerate() {
        let (fs, fc, f_read, _, f_us) = scan(SegmentCursor::full_scan(&views, *bx));
        let (ps, pc, p_read, p_pruned, p_us) = scan(SegmentCursor::new(&views, *bx));
        if fs.to_bits() != ps.to_bits() || fc.to_bits() != pc.to_bits() {
            eprintln!("DIVERGED: box {i} pruned ({ps}, {pc}) vs full ({fs}, {fc})");
            diverged = true;
        }
        assert_eq!(f_read, total_pages, "full scan must read every page");
        assert_eq!(p_read + p_pruned, total_pages, "pruned + read must cover every page");
        full_pages_total += f_read;
        pruned_pages_total += p_read;
        full_us_total += f_us;
        pruned_us_total += p_us;
        points.push(vec![
            ("query", Json::U(i as u64)),
            ("box_cells", Json::U(bx.num_cells())),
            ("full_pages", Json::U(f_read)),
            ("pruned_pages", Json::U(p_read)),
            ("pages_pruned", Json::U(p_pruned)),
            ("full_us", Json::F(f_us)),
            ("pruned_us", Json::F(p_us)),
            ("sum", Json::F(ps)),
            ("count", Json::F(pc)),
        ]);
    }

    let ratio = full_pages_total as f64 / (pruned_pages_total.max(1)) as f64;
    let pruning_ratio = 1.0 - pruned_pages_total as f64 / full_pages_total.max(1) as f64;
    print_table(
        "selective-query page reads and latency, full scan vs fence-pruned",
        &["mode", "pages read", "mean µs/query"],
        &[
            vec![
                "full".into(),
                format!("{full_pages_total}"),
                format!("{:.1}", full_us_total / queries as f64),
            ],
            vec![
                "pruned".into(),
                format!("{pruned_pages_total}"),
                format!("{:.1}", pruned_us_total / queries as f64),
            ],
        ],
    );
    println!("page-read ratio (full/pruned): {ratio:.2}×  pruned fraction: {pruning_ratio:.3}");

    let path = args.json.as_deref().unwrap_or("BENCH_segments.json");
    let meta = [
        ("experiment", Json::S("segment_prune".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("queries", Json::U(queries as u64)),
        ("segments", Json::U(views.len() as u64)),
        ("total_pages", Json::U(total_pages)),
        ("full_pages", Json::U(full_pages_total)),
        ("pruned_pages", Json::U(pruned_pages_total)),
        ("page_read_ratio", Json::F(ratio)),
        ("pruning_ratio", Json::F(pruning_ratio)),
        ("full_mean_us", Json::F(full_us_total / queries as f64)),
        ("pruned_mean_us", Json::F(pruned_us_total / queries as f64)),
        ("bit_identical", Json::B(!diverged)),
    ];
    write_json(path, &meta, &points).expect("write BENCH_segments.json");
    obs.flush();
    if diverged {
        eprintln!("fence pruning changed answer bits — failing");
        std::process::exit(1);
    }
    if ratio < min_ratio {
        eprintln!("page-read ratio {ratio:.2}× below the {min_ratio}× bar — failing");
        std::process::exit(1);
    }
}
