//! Fence-pruning benchmark: selective region queries over the segment
//! layer, pruned scan vs full scan, across page layouts.
//!
//! The segment footer's per-page fence intervals (min/max leaf id per
//! dimension) let a query skip every page provably disjoint from its box
//! — Theorem 12's contrapositive: a page whose fences miss the box on
//! some dimension cannot contain a contributing entry. The contract is
//! that pruning only ever skips such pages, so the visited entry sequence
//! — and therefore every f64 in the answer — is **bit-identical** to the
//! unpruned scan *of the same layout*.
//!
//! This binary compares four layouts built from the same allocation:
//!
//! * `v1-canonical` — the PR 5 baseline: row pages, canonical order;
//! * `v2-canonical` — compressed columnar pages, canonical order (the
//!   default): identical entry order, so identical answer bits, fewer
//!   bytes at rest;
//! * `v1-morton` — row pages reordered along the Morton curve: the
//!   uncompressed reference for the Morton accumulation order;
//! * `v2-morton` — compressed columnar pages in Morton order: fences
//!   tighten in every dimension, multiplying prune rates.
//!
//! Enforced gates (any failure exits non-zero — CI smoke check):
//! answer bits identical between pruned and full scans within each
//! layout; compressed scans bit-identical to the uncompressed full scan
//! of the same order; `v1-canonical` full/pruned page ratio ≥
//! `--min-ratio`; and `v2-morton` reads ≥ `--min-v2-gain`× fewer pages
//! than the `v1-canonical` baseline on the random ≤`--max-frac` box
//! workload.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin segment_prune
//! cargo run --release -p iolap-bench --bin segment_prune -- --facts 5000 --json BENCH_segments.json
//! ```

use iolap_bench::runs::{bench_config, print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_core::{
    allocate, Algorithm, CellOrder, PageFormat, PolicySpec, SegmentCursor, SegmentLayout,
    SegmentView,
};
use iolap_datagen::scaled;
use iolap_model::{RegionBox, MAX_DIMS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// One scan: sum/count accumulation over a cursor, timed, with stats.
struct Scan {
    sum: f64,
    count: f64,
    pages_read: u64,
    pages_pruned: u64,
    bytes_read: u64,
    us: f64,
}

fn scan(mut cursor: SegmentCursor<'_>) -> Scan {
    let t0 = Instant::now();
    let mut sum = 0.0;
    let mut count = 0.0;
    cursor
        .for_each(|e| {
            sum += e.weight * e.measure;
            count += e.weight;
        })
        .expect("scan");
    let us = t0.elapsed().as_secs_f64() * 1e6;
    let st = cursor.stats();
    Scan {
        sum,
        count,
        pages_read: st.pages_read,
        pages_pruned: st.pages_pruned,
        bytes_read: st.bytes_read,
        us,
    }
}

/// Per-workload running totals for one layout.
#[derive(Default, Clone, Copy)]
struct Totals {
    full_pages: u64,
    pruned_pages: u64,
    bytes_read: u64,
    full_us: f64,
    pruned_us: f64,
}

/// A layout under test: its views plus per-workload totals.
struct LayoutRun {
    name: &'static str,
    layout: SegmentLayout,
    views: Vec<SegmentView>,
    total_pages: u64,
    encoded_bytes: u64,
    raw_bytes: u64,
    totals: [Totals; 2],
}

impl LayoutRun {
    fn compression(&self) -> f64 {
        if self.encoded_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

fn main() {
    let args = Args::parse(20_000);
    let queries: usize = args.extra_or("queries", 64);
    // Selectivity ceiling: a query box may cover at most this fraction of
    // the cell space (the acceptance bar targets boxes ≤ 1% of cells).
    let max_frac: f64 = args.extra_or("max-frac", 0.01);
    let min_ratio: f64 = args.extra_or("min-ratio", 5.0);
    // v2+Morton must read at least this many times fewer pages than the
    // v1 row baseline over the same workload.
    let min_v2_gain: f64 = args.extra_or("min-v2-gain", 2.0);
    let sweep_queries: usize = args.extra_or("sweep-queries", 8);
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let buffer_pages: usize = args.extra_or("buffer-pages", 2048);

    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    let k = schema.k();
    println!(
        "Segment pruning — {:?} dataset, {} facts, {queries} boxes ≤ {max_frac} of {} cells",
        args.dataset,
        args.facts,
        schema.num_possible_cells()
    );

    let obs = args.obs();
    let cfg = bench_config(buffer_pages, args.on_disk, args.threads, args.prefetch, obs.clone());
    let policy = PolicySpec::em_count(epsilon).with_max_iters(16);
    let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).expect("allocation");
    let mut edb = run.edb;

    // The same allocation, four layouts. `set_segment_layout` drops the
    // cached segments, so each `segments()` call re-sorts and re-encodes.
    let mut layouts: Vec<LayoutRun> = [
        ("v1-canonical", SegmentLayout::v1_canonical()),
        ("v2-canonical", SegmentLayout::v2_canonical()),
        ("v1-morton", SegmentLayout { order: CellOrder::Morton, format: PageFormat::Rows }),
        ("v2-morton", SegmentLayout::v2_morton()),
    ]
    .into_iter()
    .map(|(name, layout)| {
        edb.set_segment_layout(layout);
        let views = edb.segments().expect("segment view");
        let total_pages: u64 = views.iter().map(|v| v.segment.num_pages()).sum();
        let encoded_bytes: u64 = views.iter().map(|v| v.segment.encoded_bytes()).sum();
        let raw_bytes: u64 = views.iter().map(|v| v.segment.uncompressed_bytes()).sum();
        LayoutRun {
            name,
            layout,
            views,
            total_pages,
            encoded_bytes,
            raw_bytes,
            totals: [Totals::default(); 2],
        }
    })
    .collect();
    println!(
        "EDB: {} entries in {} segment(s); pages per layout: {}",
        edb.num_entries(),
        layouts[0].views.len(),
        layouts
            .iter()
            .map(|l| format!("{}={}", l.name, l.total_pages))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Two random ≤`max_frac` box workloads:
    //
    // * `all-dims` — every dimension restricted to a narrow interval
    //   (the PR 5 workload). Canonical fences are already tight on the
    //   leading dimension here, so this guards the baseline pruning
    //   machinery (`--min-ratio`).
    // * `dice` — each box restricts a random *subset* of 1..=k
    //   dimensions (the rest stay `ALL`), widths chosen so the
    //   restrictions compound to ~`max_frac`. This is the OLAP dice
    //   shape value reordering exists for: canonical fences are only
    //   tight in leading dimensions, Morton fences are moderately tight
    //   in all of them (`--min-v2-gain`).
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5e97_13a7);
    let mut gen_boxes = |all_dims: bool| -> Vec<RegionBox> {
        let mut boxes = Vec::with_capacity(queries);
        while boxes.len() < queries {
            let m = if all_dims { k } else { rng.random_range(1..=k) };
            let mut dims: Vec<usize> = (0..k).collect();
            for i in 0..m {
                let j = rng.random_range(i..k);
                dims.swap(i, j);
            }
            let mut lo = [0u32; MAX_DIMS];
            let mut hi = [0u32; MAX_DIMS];
            for d in 0..k {
                lo[d] = 0;
                hi[d] = schema.dim(d).num_leaves();
            }
            for &d in &dims[..m] {
                let leaves = schema.dim(d).num_leaves();
                let width = if all_dims {
                    // ~a tenth of the dimension; k such restrictions
                    // compound to well under max_frac.
                    (leaves / 10).max(1)
                } else {
                    // The m restrictions multiply out to ~max_frac.
                    ((leaves as f64 * max_frac.powf(1.0 / m as f64)) as u32).max(1)
                };
                let start = rng.random_range(0..leaves.saturating_sub(width - 1).max(1));
                lo[d] = start;
                hi[d] = (start + width).min(leaves);
            }
            let bx = RegionBox { lo, hi, k: k as u8 };
            if (bx.num_cells() as f64) <= max_frac * schema.num_possible_cells() as f64 {
                boxes.push(bx);
            }
        }
        boxes
    };
    let workloads = [("all-dims", gen_boxes(true)), ("dice", gen_boxes(false))];

    let mut points = Vec::new();
    let mut diverged = false;
    for (w, (wname, boxes)) in workloads.iter().enumerate() {
        for (i, bx) in boxes.iter().enumerate() {
            // The uncompressed full scan per order — the bit reference
            // that the compressed (and pruned) scans of the same order
            // must match.
            let mut reference: Option<(u64, u64)> = None; // (sum, count) bits
            let mut point = vec![
                ("kind", Json::S(format!("box:{wname}"))),
                ("query", Json::U(i as u64)),
                ("box_cells", Json::U(bx.num_cells())),
            ];
            for l in layouts.iter_mut() {
                let full = scan(SegmentCursor::full_scan(&l.views, *bx));
                let pruned = scan(SegmentCursor::new(&l.views, *bx));
                if full.sum.to_bits() != pruned.sum.to_bits()
                    || full.count.to_bits() != pruned.count.to_bits()
                {
                    eprintln!(
                        "DIVERGED: {wname} box {i} {} pruned ({}, {}) vs full ({}, {})",
                        l.name, pruned.sum, pruned.count, full.sum, full.count
                    );
                    diverged = true;
                }
                // Same order ⇒ same bits, compressed or not. The Rows
                // layout of each order defines the reference.
                match l.layout.format {
                    PageFormat::Rows => {
                        reference = Some((full.sum.to_bits(), full.count.to_bits()))
                    }
                    PageFormat::ColumnarV2 => {
                        let (rs, rc) = reference.expect("Rows layout precedes ColumnarV2");
                        if full.sum.to_bits() != rs || full.count.to_bits() != rc {
                            eprintln!(
                                "DIVERGED: {wname} box {i} {} vs the uncompressed scan of the \
                                 same order",
                                l.name
                            );
                            diverged = true;
                        }
                    }
                }
                assert_eq!(full.pages_read, l.total_pages, "full scan must read every page");
                assert_eq!(
                    pruned.pages_read + pruned.pages_pruned,
                    l.total_pages,
                    "pruned + read must cover every page"
                );
                let t = &mut l.totals[w];
                t.full_pages += full.pages_read;
                t.pruned_pages += pruned.pages_read;
                t.bytes_read += pruned.bytes_read;
                t.full_us += full.us;
                t.pruned_us += pruned.us;
                point.push((l.name, Json::U(pruned.pages_read)));
                if l.name == "v2-morton" {
                    point.push(("sum", Json::F(pruned.sum)));
                    point.push(("count", Json::F(pruned.count)));
                }
            }
            points.push(point);
        }
    }

    // Per-dimension sweep: boxes selective in dimension d only (full
    // range elsewhere). Canonical fences only help on leading dimensions;
    // Morton fences tighten in all of them — this is where it shows.
    for d in 0..k {
        let leaves = schema.dim(d).num_leaves();
        let width = (leaves / 20).max(1);
        let mut sweep: Vec<(&'static str, u64)> = layouts.iter().map(|l| (l.name, 0u64)).collect();
        for q in 0..sweep_queries {
            let mut lo = [0u32; MAX_DIMS];
            let mut hi = [0u32; MAX_DIMS];
            for dd in 0..k {
                lo[dd] = 0;
                hi[dd] = schema.dim(dd).num_leaves();
            }
            let start = rng.random_range(0..leaves.saturating_sub(width - 1).max(1));
            lo[d] = start;
            hi[d] = (start + width).min(leaves);
            let bx = RegionBox { lo, hi, k: k as u8 };
            let _ = q;
            for (l, s) in layouts.iter().zip(sweep.iter_mut()) {
                s.1 += scan(SegmentCursor::new(&l.views, bx)).pages_read;
            }
        }
        let mut point = vec![
            ("kind", Json::S("dim_sweep".into())),
            ("dim", Json::U(d as u64)),
            ("sweep_queries", Json::U(sweep_queries as u64)),
        ];
        for (name, pages) in &sweep {
            point.push((name, Json::U(*pages)));
        }
        println!(
            "dim {d} sweep ({sweep_queries} boxes): {}",
            sweep.iter().map(|(n, p)| format!("{n}={p}")).collect::<Vec<_>>().join(" ")
        );
        points.push(point);
    }

    for (w, (wname, _)) in workloads.iter().enumerate() {
        let rows: Vec<Vec<String>> = layouts
            .iter()
            .map(|l| {
                let t = &l.totals[w];
                vec![
                    l.name.into(),
                    format!("{}", t.full_pages),
                    format!("{}", t.pruned_pages),
                    format!("{:.2}", t.full_pages as f64 / t.pruned_pages.max(1) as f64),
                    format!("{}", t.bytes_read),
                    format!("{:.2}", l.compression()),
                    format!("{:.1}", t.pruned_us / queries as f64),
                ]
            })
            .collect();
        print_table(
            &format!("{wname} workload: page reads by layout, full scan vs fence-pruned"),
            &[
                "layout",
                "full pages",
                "pruned pages",
                "ratio",
                "bytes read",
                "compress",
                "µs/query",
            ],
            &rows,
        );
    }

    let v1 = layouts.iter().find(|l| l.name == "v1-canonical").unwrap();
    let v2m = layouts.iter().find(|l| l.name == "v2-morton").unwrap();
    // Gate 1: the PR 5 pruning machinery, on the PR 5 workload.
    let baseline_ratio = v1.totals[0].full_pages as f64 / v1.totals[0].pruned_pages.max(1) as f64;
    // Gate 2: v2+Morton vs the v1 row baseline, on the dice workload.
    let v2_gain = v1.totals[1].pruned_pages as f64 / v2m.totals[1].pruned_pages.max(1) as f64;
    println!(
        "all-dims baseline full/pruned: {baseline_ratio:.2}×  \
         dice v2-morton vs v1 pages: {v2_gain:.2}×  v2 compression: {:.2}×",
        v2m.compression()
    );

    let path = args.json.as_deref().unwrap_or("BENCH_segments.json");
    let mut meta = vec![
        ("experiment", Json::S("segment_prune".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("queries", Json::U(queries as u64)),
        ("segments", Json::U(layouts[0].views.len() as u64)),
        ("baseline_page_read_ratio", Json::F(baseline_ratio)),
        ("v2_morton_page_gain", Json::F(v2_gain)),
        ("bit_identical", Json::B(!diverged)),
    ];
    for l in &layouts {
        // Flattened aggregates, keys like "v2-morton.dice.pruned_pages".
        for (w, (wname, _)) in workloads.iter().enumerate() {
            let t = &l.totals[w];
            let key = |s: &str| -> &'static str {
                Box::leak(format!("{}.{wname}.{s}", l.name).into_boxed_str())
            };
            meta.push((key("full_pages"), Json::U(t.full_pages)));
            meta.push((key("pruned_pages"), Json::U(t.pruned_pages)));
            meta.push((key("bytes_read"), Json::U(t.bytes_read)));
            meta.push((key("pruned_mean_us"), Json::F(t.pruned_us / queries as f64)));
            meta.push((key("full_mean_us"), Json::F(t.full_us / queries as f64)));
        }
        let key =
            |s: &str| -> &'static str { Box::leak(format!("{}.{s}", l.name).into_boxed_str()) };
        meta.push((key("total_pages"), Json::U(l.total_pages)));
        meta.push((key("encoded_bytes"), Json::U(l.encoded_bytes)));
        meta.push((key("compression_ratio"), Json::F(l.compression())));
    }
    write_json(path, &meta, &points).expect("write BENCH_segments.json");
    obs.flush();
    if diverged {
        eprintln!("a compressed or pruned scan changed answer bits — failing");
        std::process::exit(1);
    }
    if baseline_ratio < min_ratio {
        eprintln!(
            "all-dims baseline page-read ratio {baseline_ratio:.2}× below the {min_ratio}× bar — failing"
        );
        std::process::exit(1);
    }
    if v2_gain < min_v2_gain {
        eprintln!("dice v2-morton page gain {v2_gain:.2}× below the {min_v2_gain}× bar — failing");
        std::process::exit(1);
    }
}
