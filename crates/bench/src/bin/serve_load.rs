//! Closed-loop load generator for the `iolap-serve` query server.
//!
//! Starts an in-process server on a loopback port, warms the result cache
//! with one pass over the query mix, then hammers it from keep-alive
//! client threads for a fixed wall-clock window. Latency is measured at
//! the client (request write → full response read); the cache hit ratio
//! and shed count come from the server's own metrics registry.
//!
//! The acceptance bar is ≥ 1 000 req/s from a single worker on the
//! 5 000-fact dataset with a warm cache; the binary warns (but does not
//! fail) below that, since CI machines vary.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin serve_load
//! cargo run --release -p iolap-bench --bin serve_load -- --facts 5000   # CI smoke
//! cargo run --release -p iolap-bench --bin serve_load -- clients=4 workers=4 secs=5
//! ```

use iolap_bench::runs::{print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_core::{AllocConfig, PolicySpec};
use iolap_datagen::scaled;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, wire, ServeConfig, Server};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse(5_000);
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let workers: usize = args.extra_or("workers", 1);
    // Keep-alive connections are pinned to a worker for their lifetime,
    // so more clients than workers would just park the surplus.
    let clients: usize = args.extra_or("clients", workers);
    let secs: f64 = args.extra_or("secs", 2.0);
    let cache: usize = args.extra_or("cache", 4096);

    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    println!(
        "serve_load — {:?} dataset, {} facts, {workers} worker(s), {clients} client(s), {secs}s window",
        args.dataset, args.facts
    );

    let cfg = ServeConfig { workers, cache_capacity: cache, ..ServeConfig::default() };
    let policy = PolicySpec::em_count(epsilon);
    let alloc = AllocConfig::builder().in_memory(4096).build();
    let handle = Server::start(table, policy, alloc, "127.0.0.1:0", cfg).expect("server starts");
    let addr = handle.addr();

    // Query mix: SUM and COUNT over every node of the coarsest dimension-0
    // level that still has a handful of regions, plus the whole cube.
    let dim = schema.dim(0);
    let mut regions: Vec<(String, String)> = Vec::new();
    for l in (0..dim.levels()).rev() {
        let nodes = dim.nodes_at_level(l);
        if nodes.len() >= 2 && nodes.len() <= 32 {
            regions.extend(nodes.iter().map(|&n| (dim.name().to_string(), dim.node_name(n))));
            break;
        }
    }
    let mut bodies: Vec<String> = Vec::new();
    for (d, n) in &regions {
        for agg in [AggFn::Sum, AggFn::Count] {
            bodies.push(wire::query_body(&[(d.as_str(), n.as_str())], agg, None));
        }
    }
    bodies.push(wire::query_body(&[], AggFn::Sum, None));
    println!("query mix: {} distinct queries over {}", bodies.len(), dim.name());

    // Warm pass: every distinct query once, so the measured window runs
    // against a fully populated cache.
    {
        let mut conn = TcpStream::connect(addr).expect("warm connect");
        for b in &bodies {
            let (status, resp) = http_roundtrip(&mut conn, "POST", "/query", b).expect("warm");
            assert_eq!(status, 200, "warm-up query failed: {resp}");
        }
    }

    let bodies = Arc::new(bodies);
    let next = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let started = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let bodies = Arc::clone(&bodies);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("client connect");
                // A generous timeout so a client parked behind a busy
                // worker unblocks at shutdown instead of hanging the join.
                conn.set_read_timeout(Some(Duration::from_secs_f64(secs + 10.0))).unwrap();
                let mut lat_us: Vec<u64> = Vec::new();
                let mut errors = 0u64;
                while Instant::now() < deadline {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize % bodies.len();
                    let t = Instant::now();
                    match http_roundtrip(&mut conn, "POST", "/query", &bodies[i]) {
                        Ok((200, _)) => lat_us.push(t.elapsed().as_micros() as u64),
                        Ok(_) | Err(_) => {
                            errors += 1;
                            break;
                        }
                    }
                }
                (lat_us, errors)
            })
        })
        .collect();

    let mut lat_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for t in threads {
        let (l, e) = t.join().expect("client thread");
        lat_us.extend(l);
        errors += e;
    }
    let elapsed = started.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat_us.is_empty() {
            return 0;
        }
        lat_us[(((lat_us.len() - 1) as f64) * p) as usize]
    };
    let requests = lat_us.len() as u64;
    let rps = requests as f64 / elapsed;

    let counter = |name: &str| handle.obs().counter(name).map_or(0, |c| c.get());
    let (hits, misses) = (counter("serve.cache.hit"), counter("serve.cache.miss"));
    let hit_ratio = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
    let shed = counter("serve.shed");

    print_table(
        "warm-cache closed-loop load",
        &[
            "requests",
            "req/s",
            "p50 µs",
            "p90 µs",
            "p99 µs",
            "max µs",
            "hit ratio",
            "shed",
            "errors",
        ],
        &[vec![
            format!("{requests}"),
            format!("{rps:.0}"),
            format!("{}", pct(0.50)),
            format!("{}", pct(0.90)),
            format!("{}", pct(0.99)),
            format!("{}", lat_us.last().copied().unwrap_or(0)),
            format!("{hit_ratio:.3}"),
            format!("{shed}"),
            format!("{errors}"),
        ]],
    );

    let path = args.json.as_deref().unwrap_or("BENCH_serve.json");
    let meta = [
        ("experiment", Json::S("serve_load".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("epsilon", Json::F(epsilon)),
        ("workers", Json::U(workers as u64)),
        ("clients", Json::U(clients as u64)),
        ("secs", Json::F(secs)),
        ("cache_capacity", Json::U(cache as u64)),
    ];
    let point = vec![
        ("requests", Json::U(requests)),
        ("elapsed_secs", Json::F(elapsed)),
        ("throughput_rps", Json::F(rps)),
        ("p50_us", Json::U(pct(0.50))),
        ("p90_us", Json::U(pct(0.90))),
        ("p99_us", Json::U(pct(0.99))),
        ("max_us", Json::U(lat_us.last().copied().unwrap_or(0))),
        ("cache_hits", Json::U(hits)),
        ("cache_misses", Json::U(misses)),
        ("cache_hit_ratio", Json::F(hit_ratio)),
        ("shed", Json::U(shed)),
        ("errors", Json::U(errors)),
    ];
    write_json(path, &meta, &[point]).expect("write BENCH_serve.json");

    handle.shutdown();
    if errors > 0 {
        eprintln!("serve_load saw {errors} client error(s) — failing");
        std::process::exit(1);
    }
    if rps < 1_000.0 {
        eprintln!("warning: {rps:.0} req/s is below the 1k req/s warm-cache bar");
    }
}
