//! Connection-sweep load generator for the `iolap-serve` query server.
//!
//! Starts an in-process server on a loopback port, warms the result
//! cache with one pass over the query mix, then sweeps the number of
//! concurrent keep-alive connections (256 → 10 000 by default) while
//! the worker pool stays fixed — the experiment the reactor exists for:
//! parked sockets must cost the server nothing, so p99 at 10k
//! connections should sit within ~2× of the 256-connection point.
//!
//! Each sweep point runs a fixed pool of closed-loop *driver* threads
//! that round-robin their requests across many keep-alive sockets, so
//! at any instant most connections are idle — exactly the shape of a
//! real keep-alive fleet. Because a process is limited to ~20k file
//! descriptors on typical containers (and each connection costs one fd
//! on each side), the client half runs in **child processes** (re-exec
//! of this binary, ≤2 500 connections each) coordinated over stdin:
//! the parent streams the query mix, each child connects and answers
//! `READY`, the parent fires `GO`, and the child reports a `RESULT`
//! JSON line with its raw latency samples for exact merged percentiles.
//!
//! Latency is measured at the client (request write → full response
//! read); cache hit ratio and shed counts come from the server's own
//! metrics registry. Any client-side error fails the run.
//!
//! ```bash
//! cargo run --release -p iolap-bench --bin serve_load
//! cargo run --release -p iolap-bench --bin serve_load -- --facts 5000 --json BENCH_serve.json
//! cargo run --release -p iolap-bench --bin serve_load -- --connections 256,4000 secs=2
//! ```

use iolap_bench::runs::{print_table, write_json};
use iolap_bench::{Args, Json};
use iolap_core::{AllocConfig, PolicySpec};
use iolap_datagen::scaled;
use iolap_obs::json;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, raise_nofile_limit, wire, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard per-child connection cap: two fds per connection (one per side)
/// against a ~20k per-process fd ceiling leaves comfortable headroom.
const CONNS_PER_CHILD: usize = 2_500;

fn main() {
    let args = Args::parse(5_000);
    if args.extra("client-addr").is_some() {
        client_main(&args);
        return;
    }
    parent_main(&args);
}

// ---------------------------------------------------------------------------
// Parent: server + sweep orchestration.

fn parent_main(args: &Args) {
    let epsilon: f64 = args.extra_or("eps", 0.01);
    let workers: usize = args.extra_or("workers", 1);
    let drivers: usize = args.extra_or("drivers", 4);
    let secs: f64 = args.extra_or("secs", 3.0);
    let cache: usize = args.extra_or("cache", 4096);
    let sweep: Vec<usize> = args
        .extra("connections")
        .unwrap_or("256,1000,4000,10000")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("connections=N,N,..."))
        .collect();
    assert!(!sweep.is_empty(), "empty connection sweep");

    let nofile = raise_nofile_limit();
    let table = scaled(args.dataset, args.facts, args.seed);
    let schema = table.schema().clone();
    println!(
        "serve_load — {:?} dataset, {} facts, {workers} worker(s), {drivers} driver(s), \
         {secs}s/point, sweep {sweep:?}, nofile {nofile}",
        args.dataset, args.facts
    );

    let max_conns = sweep.iter().copied().max().unwrap() + 256;
    let cfg = ServeConfig::builder()
        .workers(workers)
        .cache_capacity(cache)
        .max_connections(max_conns)
        // Idle far longer than a sweep point so parked sockets survive.
        .idle_timeout(Duration::from_secs(600))
        .build();
    let policy = PolicySpec::em_count(epsilon);
    let alloc = AllocConfig::builder().in_memory(4096).build();
    let handle = Server::builder(table, policy)
        .alloc(alloc)
        .config(cfg)
        .bind("127.0.0.1:0")
        .expect("server starts");
    let addr = handle.addr();

    // Query mix: SUM and COUNT over every node of the coarsest dimension-0
    // level that still has a handful of regions, plus the whole cube.
    let dim = schema.dim(0);
    let mut regions: Vec<(String, String)> = Vec::new();
    for l in (0..dim.levels()).rev() {
        let nodes = dim.nodes_at_level(l);
        if nodes.len() >= 2 && nodes.len() <= 32 {
            regions.extend(nodes.iter().map(|&n| (dim.name().to_string(), dim.node_name(n))));
            break;
        }
    }
    let mut bodies: Vec<String> = Vec::new();
    for (d, n) in &regions {
        for agg in [AggFn::Sum, AggFn::Count] {
            bodies.push(wire::query_body(&[(d.as_str(), n.as_str())], agg, None));
        }
    }
    bodies.push(wire::query_body(&[], AggFn::Sum, None));
    println!("query mix: {} distinct queries over {}", bodies.len(), dim.name());

    // Warm pass: every distinct query once, so every sweep point runs
    // against a fully populated cache.
    {
        let mut conn = TcpStream::connect(addr).expect("warm connect");
        for b in &bodies {
            let (status, resp) = http_roundtrip(&mut conn, "POST", "/query", b).expect("warm");
            assert_eq!(status, 200, "warm-up query failed: {resp}");
        }
    }

    let counter = |name: &str| handle.obs().counter(name).map_or(0, |c| c.get());
    let exe = std::env::current_exe().expect("current_exe");

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut points: Vec<Vec<(&str, Json)>> = Vec::new();
    let mut point_stats: Vec<(usize, u64, f64)> = Vec::new(); // (conns, p99, rps)
    let mut total_errors = 0u64;

    for &conns in &sweep {
        let children = conns.div_ceil(CONNS_PER_CHILD);
        let (hits0, miss0, shed0) =
            (counter("serve.cache.hit"), counter("serve.cache.miss"), counter("serve.shed"));

        // Spawn the client children and stream them the query mix.
        let mut procs: Vec<Child> = Vec::new();
        let mut readers: Vec<BufReader<std::process::ChildStdout>> = Vec::new();
        for c in 0..children {
            // Spread connections and drivers across children; every
            // child gets at least one driver.
            let child_conns = conns / children + usize::from(c < conns % children);
            let child_drivers = (drivers / children).max(1);
            let mut p = Command::new(&exe)
                .arg(format!("client-addr={addr}"))
                .arg(format!("client-conns={child_conns}"))
                .arg(format!("client-drivers={child_drivers}"))
                .arg(format!("client-secs={secs}"))
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn client child");
            let stdin = p.stdin.as_mut().expect("child stdin");
            writeln!(stdin, "{}", bodies.len()).unwrap();
            for b in &bodies {
                writeln!(stdin, "{b}").unwrap();
            }
            stdin.flush().unwrap();
            readers.push(BufReader::new(p.stdout.take().expect("child stdout")));
            procs.push(p);
        }

        // Barrier: every child has all its sockets connected.
        for r in readers.iter_mut() {
            let mut line = String::new();
            r.read_line(&mut line).expect("child READY");
            assert_eq!(line.trim(), "READY", "unexpected child handshake: {line:?}");
        }
        for p in procs.iter_mut() {
            writeln!(p.stdin.as_mut().unwrap(), "GO").unwrap();
        }

        // Collect and merge results.
        let mut lat_us: Vec<u64> = Vec::new();
        let mut errors = 0u64;
        for r in readers.iter_mut() {
            let mut line = String::new();
            r.read_line(&mut line).expect("child RESULT");
            let payload = line.strip_prefix("RESULT ").unwrap_or_else(|| {
                panic!("unexpected child output: {line:?}");
            });
            let v = json::parse(payload.trim()).expect("child RESULT JSON");
            errors += v.get("errors").and_then(|x| x.as_u64()).expect("errors");
            let samples = v.get("lat_us").and_then(|x| x.as_array()).expect("lat_us");
            lat_us.extend(samples.iter().map(|s| s.as_u64().expect("µs sample")));
        }
        for mut p in procs {
            drop(p.stdin.take());
            let st = p.wait().expect("child exits");
            assert!(st.success(), "client child failed");
        }

        lat_us.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat_us.is_empty() {
                return 0;
            }
            lat_us[(((lat_us.len() - 1) as f64) * p) as usize]
        };
        let requests = lat_us.len() as u64;
        let rps = requests as f64 / secs;
        let (hits, misses, shed) = (
            counter("serve.cache.hit") - hits0,
            counter("serve.cache.miss") - miss0,
            counter("serve.shed") - shed0,
        );
        let hit_ratio = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
        total_errors += errors;
        point_stats.push((conns, pct(0.99), rps));

        rows.push(vec![
            format!("{conns}"),
            format!("{children}"),
            format!("{requests}"),
            format!("{rps:.0}"),
            format!("{}", pct(0.50)),
            format!("{}", pct(0.90)),
            format!("{}", pct(0.99)),
            format!("{}", lat_us.last().copied().unwrap_or(0)),
            format!("{hit_ratio:.3}"),
            format!("{shed}"),
            format!("{errors}"),
        ]);
        points.push(vec![
            ("connections", Json::U(conns as u64)),
            ("client_processes", Json::U(children as u64)),
            ("requests", Json::U(requests)),
            ("throughput_rps", Json::F(rps)),
            ("p50_us", Json::U(pct(0.50))),
            ("p90_us", Json::U(pct(0.90))),
            ("p99_us", Json::U(pct(0.99))),
            ("max_us", Json::U(lat_us.last().copied().unwrap_or(0))),
            ("cache_hits", Json::U(hits)),
            ("cache_misses", Json::U(misses)),
            ("cache_hit_ratio", Json::F(hit_ratio)),
            ("shed", Json::U(shed)),
            ("errors", Json::U(errors)),
        ]);
    }

    print_table(
        "warm-cache keep-alive connection sweep (fixed worker pool)",
        &[
            "conns",
            "procs",
            "requests",
            "req/s",
            "p50 µs",
            "p90 µs",
            "p99 µs",
            "max µs",
            "hit ratio",
            "shed",
            "errors",
        ],
        &rows,
    );

    let path = args.json.as_deref().unwrap_or("BENCH_serve.json");
    let meta = [
        ("experiment", Json::S("serve_load".into())),
        ("dataset", Json::S(format!("{:?}", args.dataset))),
        ("facts", Json::U(args.facts)),
        ("seed", Json::U(args.seed)),
        ("epsilon", Json::F(epsilon)),
        ("workers", Json::U(workers as u64)),
        ("drivers", Json::U(drivers as u64)),
        ("secs_per_point", Json::F(secs)),
        ("cache_capacity", Json::U(cache as u64)),
        ("nofile_limit", Json::U(nofile)),
    ];
    write_json(path, &meta, &points).expect("write BENCH_serve.json");

    handle.shutdown();
    if total_errors > 0 {
        eprintln!("serve_load saw {total_errors} client error(s) — failing");
        std::process::exit(1);
    }
    // The reactor's contract: scaling idle connections must not melt tail
    // latency or throughput. Warn (don't fail) — CI machines vary.
    if let (Some(first), Some(last)) = (point_stats.first(), point_stats.last()) {
        if point_stats.len() > 1 && last.1 > first.1 * 2 {
            eprintln!(
                "warning: p99 at {} conns ({} µs) is more than 2× the {}-conn point ({} µs)",
                last.0, last.1, first.0, first.1
            );
        }
    }
    for (conns, _, rps) in &point_stats {
        if *rps < 1_000.0 {
            eprintln!("warning: {rps:.0} req/s at {conns} conns is below the 1k req/s bar");
        }
    }
}

// ---------------------------------------------------------------------------
// Child: a block of keep-alive client connections driven closed-loop.

fn client_main(args: &Args) {
    let addr: std::net::SocketAddr =
        args.extra("client-addr").unwrap().parse().expect("client-addr HOST:PORT");
    let conns: usize = args.extra_or("client-conns", 0);
    let drivers: usize = args.extra_or("client-drivers", 1);
    let secs: f64 = args.extra_or("client-secs", 2.0);
    assert!(conns > 0, "client-conns must be positive");
    raise_nofile_limit();

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut next_line = || lines.next().expect("parent stdin line").expect("read stdin");
    let nbodies: usize = next_line().trim().parse().expect("body count");
    let bodies: Arc<Vec<String>> = Arc::new((0..nbodies).map(|_| next_line()).collect());

    // Connect the whole block serially before reporting READY; retry
    // briefly so a full accept backlog during the storm is not fatal.
    let mut sockets: Vec<TcpStream> = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut attempt = 0;
        let s = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if attempt < 50 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    let _ = e;
                }
                Err(e) => panic!("connect: {e}"),
            }
        };
        s.set_read_timeout(Some(Duration::from_secs_f64(secs + 15.0))).unwrap();
        let _ = s.set_nodelay(true);
        sockets.push(s);
    }
    println!("READY");
    std::io::stdout().flush().unwrap();
    assert_eq!(next_line().trim(), "GO", "expected GO");

    // Split the block across driver threads; each thread round-robins
    // its share so every socket stays warm but most are idle at any
    // instant — the keep-alive fleet shape.
    let next = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let per = conns.div_ceil(drivers.max(1));
    let mut threads = Vec::new();
    while !sockets.is_empty() {
        let mut share: Vec<TcpStream> = sockets.drain(..per.min(sockets.len())).collect();
        let bodies = Arc::clone(&bodies);
        let next = Arc::clone(&next);
        threads.push(std::thread::spawn(move || {
            let mut lat_us: Vec<u64> = Vec::new();
            let mut errors = 0u64;
            'window: loop {
                let mut k = 0;
                while k < share.len() {
                    if Instant::now() >= deadline {
                        break 'window;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize % bodies.len();
                    let t = Instant::now();
                    match http_roundtrip(&mut share[k], "POST", "/query", &bodies[i]) {
                        Ok((200, _)) => {
                            lat_us.push(t.elapsed().as_micros() as u64);
                            k += 1;
                        }
                        Ok(_) | Err(_) => {
                            // Dead socket: count it once and retire it.
                            errors += 1;
                            share.swap_remove(k);
                        }
                    }
                }
                if share.is_empty() {
                    break;
                }
            }
            (lat_us, errors)
        }));
    }

    let mut lat_us: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for t in threads {
        let (l, e) = t.join().expect("driver thread");
        lat_us.extend(l);
        errors += e;
    }
    let mut out = String::with_capacity(lat_us.len() * 5 + 64);
    out.push_str("RESULT {\"requests\":");
    out.push_str(&lat_us.len().to_string());
    out.push_str(",\"errors\":");
    out.push_str(&errors.to_string());
    out.push_str(",\"lat_us\":[");
    for (i, v) in lat_us.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("]}");
    println!("{out}");
    std::io::stdout().flush().unwrap();
}
