//! The fact-stream generator.

use crate::config::GeneratorConfig;
use iolap_model::{Fact, FactTable, MAX_DIMS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draw an index from a slice of non-negative weights.
fn weighted_index(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut x = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// A skewed leaf sampler: leaves get Zipf weights `1/rank^s` under a
/// seeded random popularity permutation, sampled by binary search on the
/// cumulative distribution. `s = 0` degenerates to uniform.
struct LeafSampler {
    /// Popularity order → leaf id.
    perm: Vec<u32>,
    /// Cumulative weights over popularity ranks.
    cdf: Vec<f64>,
}

impl LeafSampler {
    fn new(n_leaves: u32, s: f64, rng: &mut StdRng) -> Self {
        let mut perm: Vec<u32> = (0..n_leaves).collect();
        // Fisher–Yates: hot leaves scattered across the hierarchy.
        for i in (1..perm.len()).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let mut cdf = Vec::with_capacity(n_leaves as usize);
        let mut acc = 0.0;
        for rank in 0..n_leaves {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        LeafSampler { perm, cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        let total = *self.cdf.last().expect("non-empty domain");
        let x = rng.random_range(0.0..total);
        let rank = self.cdf.partition_point(|&c| c <= x);
        self.perm[rank.min(self.perm.len() - 1)]
    }
}

/// Generate a fact table per `cfg`. Fact ids are `1..=n_facts` in order.
pub fn generate(cfg: &GeneratorConfig) -> FactTable {
    cfg.validate().expect("invalid generator configuration");
    let schema = cfg.schema.clone();
    let k = schema.k();
    let mut rng = StdRng::seed_from_u64(cfg.data_seed);
    let samplers: Vec<LeafSampler> = (0..k)
        .map(|d| LeafSampler::new(schema.dim(d).num_leaves(), cfg.leaf_zipf, &mut rng))
        .collect();
    let n_imprecise = (cfg.n_facts as f64 * cfg.imprecise_frac).round() as u64;
    let mut facts = Vec::with_capacity(cfg.n_facts as usize);

    for id in 1..=cfg.n_facts {
        // Deterministic split: the first `n_imprecise` ids are imprecise.
        // (Shuffling would not change any algorithm's behaviour — the
        // preprocessing sort groups facts anyway.)
        let imprecise = id <= n_imprecise;
        let mut dims = [0u32; MAX_DIMS];
        // Start precise everywhere, drawing from the skewed popularity.
        for (d, slot) in dims.iter_mut().enumerate().take(k) {
            let leaf = samplers[d].sample(&mut rng);
            *slot = schema.dim(d).leaf_node(leaf).0;
        }
        if imprecise {
            // How many dimensions go imprecise?
            let m = (weighted_index(&cfg.ndims_weights, &mut rng) + 1).min(k);
            // Which dimensions? Weighted sampling without replacement,
            // skipping dimensions that cannot be imprecise.
            let mut weights: Vec<f64> = cfg.dims.iter().map(|d| d.weight).collect();
            for (d, di) in cfg.dims.iter().enumerate() {
                if di.level_weights.iter().sum::<f64>() <= 0.0 {
                    weights[d] = 0.0;
                }
            }
            let mut chosen: Vec<usize> = Vec::with_capacity(m);
            for _ in 0..m {
                if weights.iter().sum::<f64>() <= 0.0 {
                    break;
                }
                let d = weighted_index(&weights, &mut rng);
                weights[d] = 0.0;
                chosen.push(d);
            }
            // Pick levels, respecting the max-ALL constraint.
            let mut alls_used = 0usize;
            for &d in &chosen {
                let h = schema.dim(d);
                let top = h.levels();
                let mut lw = cfg.dims[d].level_weights.clone();
                if alls_used >= cfg.max_all_dims {
                    // Forbid ALL (the last internal level is `top`).
                    let all_idx = (top - 2) as usize;
                    lw[all_idx] = 0.0;
                }
                if lw.iter().sum::<f64>() <= 0.0 {
                    continue; // nothing usable at this dimension anymore
                }
                let level = (weighted_index(&lw, &mut rng) + 2) as u8;
                if level == top {
                    alls_used += 1;
                }
                // Coarsen the already-drawn (skew-weighted) leaf to the
                // chosen level, so imprecise regions concentrate where the
                // precise mass is — as real clustered data does.
                let leaf = h
                    .leaf_index(iolap_hierarchy::NodeId(dims[d]))
                    .expect("dimension still precise here");
                dims[d] = h.ancestor_at(leaf, level).0;
            }
        }
        let measure = (rng.random_range(1.0f64..1000.0) * 100.0).round() / 100.0;
        facts.push(Fact { id, dims, measure });
    }
    FactTable::from_facts(schema, facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census;
    use crate::config::GeneratorConfig;

    #[test]
    fn counts_match_config() {
        let cfg = GeneratorConfig::automotive(10_000, 3);
        let t = generate(&cfg);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.num_imprecise(), 3_000);
        t.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GeneratorConfig::synthetic(5_000, 11));
        let b = generate(&GeneratorConfig::synthetic(5_000, 11));
        let c = generate(&GeneratorConfig::synthetic(5_000, 12));
        assert_eq!(a.facts(), b.facts());
        assert_ne!(a.facts(), c.facts());
    }

    #[test]
    fn automotive_has_no_all_values() {
        let cfg = GeneratorConfig::automotive(20_000, 5);
        let t = generate(&cfg);
        let s = t.schema();
        for f in t.facts() {
            for d in 0..s.k() {
                let lvl = s.dim(d).level_of(iolap_hierarchy::NodeId(f.dims[d]));
                assert!(lvl < s.dim(d).levels(), "ALL found in automotive data");
            }
        }
    }

    #[test]
    fn synthetic_respects_max_two_alls() {
        let cfg = GeneratorConfig::synthetic(20_000, 5);
        let t = generate(&cfg);
        let s = t.schema();
        for f in t.facts() {
            let alls = (0..s.k())
                .filter(|&d| {
                    s.dim(d).level_of(iolap_hierarchy::NodeId(f.dims[d])) == s.dim(d).levels()
                })
                .count();
            assert!(alls <= 2, "fact {} has {alls} ALL dimensions", f.id);
        }
    }

    #[test]
    fn automotive_census_tracks_table2_shape() {
        let cfg = GeneratorConfig::automotive(100_000, 9);
        let t = generate(&cfg);
        let c = census(&t);
        // 30 % imprecise.
        let frac = c.n_imprecise as f64 / c.n_facts as f64;
        assert!((frac - 0.30).abs() < 0.01, "imprecise fraction {frac}");
        // Mix over number of imprecise dimensions ≈ 67/33.
        let one = c.by_ndims[0] as f64 / c.n_imprecise as f64;
        let two = c.by_ndims[1] as f64 / c.n_imprecise as f64;
        assert!((one - 0.668).abs() < 0.02, "1-dim share {one}");
        assert!((two - 0.331).abs() < 0.02, "2-dim share {two}");
        // LOCATION is the most imprecise dimension (weight 25 of 61).
        let loc_internal: u64 = c.per_dim_level_counts[3][1..].iter().sum();
        let sr_internal: u64 = c.per_dim_level_counts[0][1..].iter().sum();
        assert!(loc_internal > 2 * sr_internal);
        // TIME respects the 9:3 month:quarter ratio loosely.
        let month = c.per_dim_level_counts[2][1] as f64;
        let quarter = c.per_dim_level_counts[2][2] as f64;
        assert!((month / quarter - 3.0).abs() < 0.5, "month/quarter = {}", month / quarter);
    }

    #[test]
    fn uniform_generator_covers_every_dimension() {
        let schema = crate::dims::automotive_schema(2);
        let cfg = GeneratorConfig::uniform(schema, 5_000, 0.5, 77);
        let t = generate(&cfg);
        let c = census(&t);
        for d in 0..4 {
            let internal: u64 = c.per_dim_level_counts[d][1..].iter().sum();
            assert!(internal > 0, "dimension {d} never imprecise");
        }
    }
}
