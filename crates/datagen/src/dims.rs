//! The four dimensions of the paper's Table 2.
//!
//! | Dimension | Levels (top→leaf) | Node counts |
//! |---|---|---|
//! | SR-AREA   | ALL, Area, Sub-Area        | 1, 30, 694   |
//! | BRAND     | ALL, Make, Model           | 1, 14, 203   |
//! | TIME      | ALL, Quarter, Month, Week  | 1, 5, 15, 59 |
//! | LOCATION  | ALL, Region, State, City   | 1, 10, 51, 900 |
//!
//! The real data's child→parent wiring is unpublished; we wire children to
//! parents uniformly at random (seeded), after guaranteeing every parent at
//! least one child (hierarchical domains forbid empty nodes).

use iolap_hierarchy::{Hierarchy, HierarchyBuilder};
use iolap_model::Schema;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Random parent map: `child_count` children over `parent_count` parents,
/// every parent non-empty.
fn random_parents(child_count: u32, parent_count: u32, rng: &mut StdRng) -> Vec<u32> {
    assert!(child_count >= parent_count, "need at least one child per parent");
    let mut parents: Vec<u32> = Vec::with_capacity(child_count as usize);
    // First `parent_count` children cover every parent once…
    parents.extend(0..parent_count);
    // …the rest go wherever.
    for _ in parent_count..child_count {
        parents.push(rng.random_range(0..parent_count));
    }
    parents
}

/// Build one unbalanced hierarchy from bottom-up level `(name, size)`
/// pairs, wiring randomly.
fn random_hierarchy(name: &str, levels: &[(&str, u32)], rng: &mut StdRng) -> Hierarchy {
    let mut b = HierarchyBuilder::new(name);
    for (ln, size) in levels {
        b = b.level(ln, *size);
    }
    for i in 1..levels.len() {
        let parents = random_parents(levels[i - 1].1, levels[i].1, rng);
        b = b.parents(i as u8 + 1, &parents);
    }
    b.build()
}

/// The four Table 2 dimensions, wired with the given seed.
pub fn automotive_dims(seed: u64) -> Vec<Arc<Hierarchy>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        Arc::new(random_hierarchy("SR-AREA", &[("Sub-Area", 694), ("Area", 30)], &mut rng)),
        Arc::new(random_hierarchy("BRAND", &[("Model", 203), ("Make", 14)], &mut rng)),
        Arc::new(random_hierarchy(
            "TIME",
            &[("Week", 59), ("Month", 15), ("Quarter", 5)],
            &mut rng,
        )),
        Arc::new(random_hierarchy(
            "LOCATION",
            &[("City", 900), ("State", 51), ("Region", 10)],
            &mut rng,
        )),
    ]
}

/// The automotive schema ⟨SR-AREA, BRAND, TIME, LOCATION; Amount⟩.
pub fn automotive_schema(seed: u64) -> Arc<Schema> {
    Arc::new(Schema::new(automotive_dims(seed), "Amount"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_node_counts() {
        let dims = automotive_dims(7);
        let shapes: Vec<(String, Vec<usize>)> = dims
            .iter()
            .map(|h| {
                let sizes = (1..=h.levels()).map(|l| h.nodes_at_level(l).len()).collect();
                (h.name().to_string(), sizes)
            })
            .collect();
        assert_eq!(shapes[0], ("SR-AREA".into(), vec![694, 30, 1]));
        assert_eq!(shapes[1], ("BRAND".into(), vec![203, 14, 1]));
        assert_eq!(shapes[2], ("TIME".into(), vec![59, 15, 5, 1]));
        assert_eq!(shapes[3], ("LOCATION".into(), vec![900, 51, 10, 1]));
        for h in &dims {
            h.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = automotive_dims(42);
        let b = automotive_dims(42);
        let c = automotive_dims(43);
        // Same seed → identical wiring (compare leaf ranges of states).
        let ranges = |dims: &[Arc<Hierarchy>]| -> Vec<(u32, u32)> {
            let loc = &dims[3];
            loc.nodes_at_level(2)
                .iter()
                .map(|&n| {
                    let r = loc.leaf_range(n);
                    (r.start, r.end)
                })
                .collect()
        };
        assert_eq!(ranges(&a), ranges(&b));
        assert_ne!(ranges(&a), ranges(&c), "different seeds should differ");
    }

    #[test]
    fn schema_cell_space_matches_paper_scale() {
        let s = automotive_schema(1);
        // 694 × 203 × 59 × 900 possible cells ≈ 7.5 billion.
        assert_eq!(s.num_possible_cells(), 694 * 203 * 59 * 900);
        assert_eq!(s.k(), 4);
    }
}
