//! Generator configuration.

use crate::dims::automotive_schema;
use iolap_model::Schema;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-dimension imprecision behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DimImprecision {
    /// Relative weight of picking this dimension when a fact becomes
    /// imprecise in some dimension.
    pub weight: f64,
    /// Relative weights of the internal levels `2..=levels` (index 0 =
    /// level 2). A zero weight for the top level forbids `ALL` in this
    /// dimension.
    pub level_weights: Vec<f64>,
}

/// Full configuration of the synthetic fact-table generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Schema the facts live in.
    pub schema: Arc<Schema>,
    /// RNG seed for the fact stream (the schema wiring has its own seed).
    pub data_seed: u64,
    /// Total number of facts.
    pub n_facts: u64,
    /// Fraction of imprecise facts (the paper's datasets use 0.30).
    pub imprecise_frac: f64,
    /// Relative weights over the *number* of imprecise dimensions
    /// (index 0 = exactly one imprecise dimension, …).
    pub ndims_weights: Vec<f64>,
    /// At most this many dimensions of one fact may take `ALL`.
    pub max_all_dims: usize,
    /// Per-dimension behaviour (same length as `schema.k()`).
    pub dims: Vec<DimImprecision>,
    /// Zipf exponent for leaf popularity (0 = uniform). Real OLAP data is
    /// heavily skewed — certain models sell in certain cities in certain
    /// weeks — and the paper's component census (largest CC 7,092 tuples,
    /// 77,325 multi-entry components) is only reachable with skew; see
    /// EXPERIMENTS.md for the calibration.
    pub leaf_zipf: f64,
}

impl GeneratorConfig {
    /// The automotive-like dataset (DESIGN.md §4).
    ///
    /// Dimension propensities are proportional to Table 2's non-leaf
    /// percentages (SR-AREA 8 %, BRAND 16 %, TIME 12 %, LOCATION 25 %);
    /// within a dimension, internal levels follow Table 2's ratios (e.g.
    /// TIME: Month 9 % vs Quarter 3 %); `ALL` never occurs ("no imprecise
    /// fact had the attribute value ALL for any dimension"); the
    /// imprecise-dimension-count mix is the paper's 67 % / 33 % / 0.1 %.
    ///
    /// Note: Table 2's four per-dimension percentages are mutually
    /// inconsistent with the 30 % imprecise total and the 67/33 mix (they
    /// imply ~0.61 imprecise dimension *incidences* per fact vs. the 0.40
    /// the mix implies), so they are honoured as *relative* propensities —
    /// see EXPERIMENTS.md.
    pub fn automotive(n_facts: u64, seed: u64) -> Self {
        let schema = automotive_schema(seed);
        GeneratorConfig {
            schema,
            data_seed: seed.wrapping_add(0x5EED_FAC7),
            n_facts,
            imprecise_frac: 0.30,
            // 160,530 : 79,544 : 241 of 240,315 imprecise facts.
            ndims_weights: vec![0.668, 0.331, 0.001],
            max_all_dims: 0,
            leaf_zipf: 1.1,
            dims: vec![
                // SR-AREA: Area 8 % (only internal level below ALL).
                DimImprecision { weight: 8.0, level_weights: vec![1.0, 0.0] },
                // BRAND: Make 16 %.
                DimImprecision { weight: 16.0, level_weights: vec![1.0, 0.0] },
                // TIME: Month 9 %, Quarter 3 %.
                DimImprecision { weight: 12.0, level_weights: vec![9.0, 3.0, 0.0] },
                // LOCATION: State 21 %, Region 4 %.
                DimImprecision { weight: 25.0, level_weights: vec![21.0, 4.0, 0.0] },
            ],
        }
    }

    /// The paper's synthetic dataset: same dimensions and imprecise
    /// fraction, but `ALL` is allowed in up to two dimensions and levels
    /// are drawn uniformly, which wires large regions together and yields
    /// the giant connected component of Section 11.1.
    pub fn synthetic(n_facts: u64, seed: u64) -> Self {
        let schema = automotive_schema(seed);
        // Like the automotive mix, with ALL as a rarer additional level:
        // each ALL-valued fact glues everything sharing its other
        // dimensions, so the ALL share controls the giant component's
        // size. These weights land it near the paper's ~16 % of tuples.
        let dims = vec![
            DimImprecision { weight: 8.0, level_weights: vec![16.0, 1.0] },
            DimImprecision { weight: 16.0, level_weights: vec![32.0, 1.0] },
            DimImprecision { weight: 12.0, level_weights: vec![18.0, 6.0, 1.0] },
            DimImprecision { weight: 25.0, level_weights: vec![42.0, 8.0, 1.0] },
        ];
        GeneratorConfig {
            schema,
            data_seed: seed.wrapping_add(0x5EED_5EED),
            n_facts,
            imprecise_frac: 0.30,
            // Same per-fact mix as the automotive data (the paper
            // describes the synthetic data as "otherwise similar"), plus a
            // sliver of 3/4-dim imprecision to populate the extra summary
            // tables the paper counts (126 possible).
            ndims_weights: vec![0.65, 0.33, 0.015, 0.005],
            max_all_dims: 2,
            leaf_zipf: 1.1,
            dims,
        }
    }

    /// A plain uniform generator over an arbitrary schema (property tests
    /// and examples): every dimension equally likely, levels uniform
    /// (including ALL), any number of imprecise dimensions.
    pub fn uniform(schema: Arc<Schema>, n_facts: u64, imprecise_frac: f64, seed: u64) -> Self {
        let k = schema.k();
        let dims = (0..k)
            .map(|d| {
                let internal_levels = schema.dim(d).levels() as usize - 1;
                DimImprecision { weight: 1.0, level_weights: vec![1.0; internal_levels] }
            })
            .collect();
        GeneratorConfig {
            schema,
            data_seed: seed,
            n_facts,
            imprecise_frac,
            ndims_weights: (0..k).map(|i| 1.0 / (1 << i) as f64).collect(),
            max_all_dims: k,
            leaf_zipf: 0.0,
            dims,
        }
    }

    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.schema.k();
        if self.dims.len() != k {
            return Err(format!("{} dim configs for {k} dimensions", self.dims.len()));
        }
        if !(0.0..=1.0).contains(&self.imprecise_frac) {
            return Err("imprecise_frac must be in [0, 1]".into());
        }
        if self.ndims_weights.is_empty() || self.ndims_weights.len() > k {
            return Err("ndims_weights length must be in 1..=k".into());
        }
        for (d, di) in self.dims.iter().enumerate() {
            let want = self.schema.dim(d).levels() as usize - 1;
            if di.level_weights.len() != want {
                return Err(format!(
                    "dimension {d}: {} level weights for {want} internal levels",
                    di.level_weights.len()
                ));
            }
            if di.level_weights.iter().sum::<f64>() <= 0.0 && di.weight > 0.0 {
                return Err(format!("dimension {d}: positive weight but no usable level"));
            }
        }
        if self.dims.iter().map(|d| d.weight).sum::<f64>() <= 0.0 && self.imprecise_frac > 0.0 {
            return Err("no dimension can be made imprecise".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        GeneratorConfig::automotive(1000, 1).validate().unwrap();
        GeneratorConfig::synthetic(1000, 1).validate().unwrap();
        let s = automotive_schema(1);
        GeneratorConfig::uniform(s, 100, 0.5, 2).validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = GeneratorConfig::automotive(10, 1);
        c.imprecise_frac = 1.5;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::automotive(10, 1);
        c.ndims_weights = vec![1.0; 9];
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::automotive(10, 1);
        c.dims[0].level_weights = vec![1.0];
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::automotive(10, 1);
        for d in &mut c.dims {
            d.weight = 0.0;
        }
        assert!(c.validate().is_err());
    }
}
