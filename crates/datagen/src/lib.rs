//! # iolap-datagen
//!
//! Synthetic imprecise fact tables reproducing the datasets of Section 11
//! of Burdick et al. (VLDB 2006).
//!
//! The paper's "real" dataset came from an anonymous automotive
//! manufacturer and is not available; per the reproduction plan
//! (DESIGN.md §4) we substitute generators that match every *published*
//! statistic of the data:
//!
//! * [`automotive_dims`] — the four dimensions of Table 2, with the exact
//!   node counts per level (Sub-Area 694 / Area 30; Model 203 / Make 14;
//!   Week 59 / Month 15 / Quarter 5; City 900 / State 51 / Region 10) and
//!   randomized (seeded) child→parent wiring.
//! * [`automotive`] — 797,570 facts, 30 % imprecise, the paper's
//!   imprecision mix (≈67 % imprecise in one dimension, ≈33 % in two,
//!   241 facts in three, none in four, no ALL values), with dimension
//!   propensities proportional to Table 2's per-level percentages.
//! * [`synthetic`] — the paper's synthetic variant: same dimensions and
//!   fact counts, but imprecise facts may take ALL in up to two
//!   dimensions, which produces the giant connected component the paper
//!   highlights (167,590 tuples at full scale).
//! * [`scaled`] — both of the above at a configurable fact count, so
//!   laptop-scale tests and full-scale benchmark runs share one code path
//!   (the 5M-tuple datasets of Figures 5i–j use this).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod census;
pub mod config;
pub mod dims;
pub mod generator;

pub use census::{census, Census};
pub use config::{DimImprecision, GeneratorConfig};
pub use dims::{automotive_dims, automotive_schema};
pub use generator::generate;

use iolap_model::FactTable;

/// The paper's automotive dataset size.
pub const AUTOMOTIVE_FACTS: u64 = 797_570;

/// The automotive-like dataset at full paper scale.
pub fn automotive(seed: u64) -> FactTable {
    generate(&GeneratorConfig::automotive(AUTOMOTIVE_FACTS, seed))
}

/// The paper's synthetic dataset (ALL allowed in ≤ 2 dimensions) at full
/// paper scale.
pub fn synthetic(seed: u64) -> FactTable {
    generate(&GeneratorConfig::synthetic(AUTOMOTIVE_FACTS, seed))
}

/// Either dataset at an arbitrary scale.
pub fn scaled(kind: DatasetKind, n_facts: u64, seed: u64) -> FactTable {
    let cfg = match kind {
        DatasetKind::Automotive => GeneratorConfig::automotive(n_facts, seed),
        DatasetKind::Synthetic => GeneratorConfig::synthetic(n_facts, seed),
    };
    generate(&cfg)
}

/// Which of the paper's two dataset families to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Matches the real automotive data's published statistics (no ALL).
    Automotive,
    /// The synthetic variant (ALL in up to 2 dimensions).
    Synthetic,
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "automotive" | "auto" | "real" => Ok(DatasetKind::Automotive),
            "synthetic" | "syn" => Ok(DatasetKind::Synthetic),
            other => Err(format!("unknown dataset kind {other:?}")),
        }
    }
}
