//! Dataset statistics — the numbers Section 11 and Table 2 report.

use iolap_model::FactTable;
use std::collections::HashMap;
use std::fmt;

/// Aggregate statistics of a fact table, mirroring Table 2 and the
/// dataset description of Section 11.
#[derive(Debug, Clone)]
pub struct Census {
    /// Total facts.
    pub n_facts: u64,
    /// Precise facts.
    pub n_precise: u64,
    /// Imprecise facts.
    pub n_imprecise: u64,
    /// `by_ndims[i]` = facts imprecise in exactly `i + 1` dimensions.
    pub by_ndims: Vec<u64>,
    /// `per_dim_level_counts[d][l-1]` = facts whose dimension `d` sits at
    /// level `l` (l = 1 are the precise-in-d facts).
    pub per_dim_level_counts: Vec<Vec<u64>>,
    /// Dimension names (for display).
    pub dim_names: Vec<String>,
    /// Level names per dimension, bottom-up.
    pub level_names: Vec<Vec<String>>,
    /// Number of distinct imprecise level vectors = number of imprecise
    /// summary tables (the paper's automotive data had 35).
    pub num_summary_tables: u64,
    /// Facts per summary table (keyed by the level vector rendered as a
    /// string, for display).
    pub summary_table_sizes: HashMap<String, u64>,
}

/// Compute the census of a table.
pub fn census(t: &FactTable) -> Census {
    let s = t.schema();
    let k = s.k();
    let mut by_ndims = vec![0u64; k];
    let mut per_dim_level_counts: Vec<Vec<u64>> =
        (0..k).map(|d| vec![0u64; s.dim(d).levels() as usize]).collect();
    let mut summary_table_sizes: HashMap<String, u64> = HashMap::new();
    let mut n_precise = 0u64;

    for f in t.facts() {
        let lv = s.level_vec(f);
        let mut imprecise_dims = 0;
        for d in 0..k {
            per_dim_level_counts[d][(lv[d] - 1) as usize] += 1;
            if lv[d] > 1 {
                imprecise_dims += 1;
            }
        }
        if imprecise_dims == 0 {
            n_precise += 1;
        } else {
            by_ndims[imprecise_dims - 1] += 1;
            let key = lv[..k].iter().map(u8::to_string).collect::<Vec<_>>().join(",");
            *summary_table_sizes.entry(key).or_insert(0) += 1;
        }
    }

    Census {
        n_facts: t.len() as u64,
        n_precise,
        n_imprecise: t.len() as u64 - n_precise,
        by_ndims,
        per_dim_level_counts,
        dim_names: (0..k).map(|d| s.dim(d).name().to_string()).collect(),
        level_names: (0..k)
            .map(|d| (1..=s.dim(d).levels()).map(|l| s.dim(d).level_name(l).to_string()).collect())
            .collect(),
        num_summary_tables: summary_table_sizes.len() as u64,
        summary_table_sizes,
    }
}

/// Node counts per level of each dimension (the parenthesized counts of
/// Table 2), straight from the schema.
pub fn dimension_shape(t: &FactTable) -> Vec<Vec<(String, usize)>> {
    let s = t.schema();
    (0..s.k())
        .map(|d| {
            let h = s.dim(d);
            (1..=h.levels())
                .map(|l| (h.level_name(l).to_string(), h.nodes_at_level(l).len()))
                .collect()
        })
        .collect()
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} facts: {} precise, {} imprecise ({:.1}%)",
            self.n_facts,
            self.n_precise,
            self.n_imprecise,
            100.0 * self.n_imprecise as f64 / self.n_facts.max(1) as f64
        )?;
        for (i, n) in self.by_ndims.iter().enumerate() {
            if *n > 0 {
                writeln!(
                    f,
                    "  imprecise in {} dim(s): {:>10} ({:.2}% of imprecise)",
                    i + 1,
                    n,
                    100.0 * *n as f64 / self.n_imprecise.max(1) as f64
                )?;
            }
        }
        writeln!(f, "  imprecise summary tables: {}", self.num_summary_tables)?;
        for (d, name) in self.dim_names.iter().enumerate() {
            write!(f, "  {name}: ")?;
            for (l, count) in self.per_dim_level_counts[d].iter().enumerate() {
                let pct = 100.0 * *count as f64 / self.n_facts.max(1) as f64;
                write!(f, "{}={:.0}% ", self.level_names[d][l], pct)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    #[test]
    fn census_of_paper_example() {
        let t = paper_example::table1();
        let c = census(&t);
        assert_eq!(c.n_facts, 14);
        assert_eq!(c.n_precise, 5);
        assert_eq!(c.n_imprecise, 9);
        // p6,p7,p8,p11,p12,p13,p14 are 1-dim imprecise (7 facts);
        // p9, p10 are 2-dim imprecise.
        assert_eq!(c.by_ndims[0], 7);
        assert_eq!(c.by_ndims[1], 2);
        // Figure 3: five imprecise summary tables S1..S5.
        assert_eq!(c.num_summary_tables, 5);
        assert_eq!(c.summary_table_sizes["1,2"], 2); // S1 = {p6, p7}
        assert_eq!(c.summary_table_sizes["1,3"], 1); // S2 = {p8}
        assert_eq!(c.summary_table_sizes["2,2"], 2); // S3 = {p9, p10}
        assert_eq!(c.summary_table_sizes["3,1"], 2); // S4 = {p11, p12}
        assert_eq!(c.summary_table_sizes["2,1"], 2); // S5 = {p13, p14}
    }

    #[test]
    fn dimension_shape_of_paper_example() {
        let t = paper_example::table1();
        let shape = dimension_shape(&t);
        assert_eq!(shape[0], vec![("State".into(), 4), ("Region".into(), 2), ("ALL".into(), 1)]);
    }

    #[test]
    fn display_formats() {
        let t = paper_example::table1();
        let text = format!("{}", census(&t));
        assert!(text.contains("14 facts"), "{text}");
        assert!(text.contains("summary tables: 5"), "{text}");
    }
}
