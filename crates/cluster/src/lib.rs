//! `iolap-cluster` — sharded, replicated serving for the allocation EDB:
//! a leaf-interval range partitioner plus a scatter-gather HTTP router.
//!
//! The paper's allocation step is global (an imprecise fact's weights
//! depend on its whole transitive component), so the cluster does not
//! split the *facts*: every shard directory carries the full dataset and
//! rebuilds the identical Extended Database deterministically. What the
//! partitioner splits is the **answer space** — each shard owns one
//! contiguous interval of dimension-0 leaf ids (entry-balanced cuts,
//! recorded with a fence box in `shard.json` / `cluster.json`), and the
//! router clips every query box to a shard's interval before fanning
//! out.
//!
//! Bit-identical merging rests on the canonical chunked accumulation
//! ([`iolap_core::accumulate_region_parts`]): shards return `(view,
//! dim0-slab)` partial sums that never straddle an interval cut, so the
//! router concatenates them in shard index order, re-sorts, and folds —
//! reproducing a single node's f64 bits exactly, for `/query` and for
//! scan-planned `/rollup`. Writes run two-phase across every replica of
//! every shard (prepare-and-stage, then `POST /epoch` to flip), so a
//! cluster read never mixes epochs; replicas that fail are drained and
//! rejoin only when a health probe sees them at the cluster epoch.
//!
//! ```no_run
//! use iolap_cluster::{partition_dataset, Router};
//! use iolap_core::{AllocConfig, PolicySpec};
//! use std::path::Path;
//!
//! let alloc = AllocConfig::builder().in_memory(256).build();
//! partition_dataset(
//!     Path::new("data"),
//!     Path::new("cluster"),
//!     4,
//!     &PolicySpec::em_count(0.01),
//!     &alloc,
//! ).unwrap();
//! // Start one `iolap serve --role shard` per shard directory, then:
//! let h = Router::builder("cluster")
//!     .shard_replicas(0, &["127.0.0.1:7001"])
//!     .shard_replicas(1, &["127.0.0.1:7002"])
//!     .shard_replicas(2, &["127.0.0.1:7003"])
//!     .shard_replicas(3, &["127.0.0.1:7004"])
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! println!("routing on {}", h.addr());
//! h.shutdown();
//! ```

#![warn(missing_docs)]

pub mod partition;
pub mod router;

pub use partition::{cluster_schema, dataset_fingerprint, partition_dataset, shard_dir_name};
pub use router::{Router, RouterBuilder, RouterHandle};
