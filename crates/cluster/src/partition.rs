//! The leaf-interval range partitioner: split a dataset into shard
//! directories a serving cluster can host.
//!
//! Allocation is *global* — an imprecise fact's weight depends on every
//! other fact in its transitive component (Section 6 of the paper), so a
//! shard cannot allocate a subset of the facts and still agree with its
//! peers. Each shard directory therefore carries the **full** dataset
//! CSVs; every shard process rebuilds the identical Extended Database
//! deterministically (single-threaded Transitive allocation) and what the
//! manifest partitions is the *answer space*: a contiguous interval of
//! dimension-0 leaf ids that this shard is responsible for scanning.
//!
//! The router clips each query box to a shard's interval before fanning
//! out, so shards scan disjoint dim0 slabs whose chunk lists concatenate
//! into the canonical single-node answer (see
//! [`iolap_core::accumulate_region_parts`] — chunks never straddle a
//! dim0 cut). The fence box (bounding box of built entries inside the
//! interval) lets the router prune whole shards the way Theorem 12's
//! contrapositive prunes pages.

use iolap_core::{allocate, Algorithm, AllocConfig, MaintainableEdb, PolicySpec, SegmentCursor};
use iolap_model::csv::{read_dataset, write_dataset};
use iolap_model::{ClusterManifest, FactTable, RegionBox, Schema, ShardManifest, MAX_DIMS};
use std::path::Path;
use std::sync::Arc;

/// FNV-1a over the dataset's deterministic content: every fact's id,
/// leaf coordinates, and measure bits, plus the dimension count. Shards
/// built from the same table agree; the router refuses to mix others.
pub fn dataset_fingerprint(schema: &Schema, table: &FactTable) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    eat(schema.k() as u64);
    for f in table.facts() {
        eat(f.id);
        for d in 0..schema.k() {
            eat(u64::from(f.dims[d]));
        }
        eat(f.measure.to_bits());
    }
    h
}

/// Partition the dataset in `data` into `shards` shard directories under
/// `out` (`shard0000`, `shard0001`, …), each a complete single-node
/// dataset plus a `shard.json`, and write the `cluster.json` topology.
/// Returns the cluster manifest.
///
/// Cut points are entry-balanced: the partitioner builds the EDB once
/// (exactly as every shard process will), histograms entries per
/// dimension-0 leaf, and walks prefix sums so each shard owns roughly
/// `total / shards` entries. Leaf-skewed datasets degrade gracefully —
/// a shard can own an empty interval and serves zero chunks.
pub fn partition_dataset(
    data: &Path,
    out: &Path,
    shards: usize,
    policy: &PolicySpec,
    alloc: &AllocConfig,
) -> Result<ClusterManifest, String> {
    if shards == 0 {
        return Err("shards must be >= 1".into());
    }
    let (schema, table) = read_dataset(data)?;
    let fingerprint = dataset_fingerprint(&schema, &table);
    let k = schema.k();

    // Build the same EDB every shard will build, and histogram its
    // entries along dimension 0.
    let run = allocate(&table, policy, Algorithm::Transitive, alloc)
        .map_err(|e| format!("allocation failed: {e}"))?;
    let mut medb = MaintainableEdb::build(run, policy.clone())
        .map_err(|e| format!("building maintainable EDB: {e}"))?;
    let views = medb.snapshot_segments().map_err(|e| format!("snapshotting segments: {e}"))?;

    let dim0 = schema.dim(0);
    let n0 = dim0.leaf_range(dim0.all()).end;
    let mut hist = vec![0u64; n0 as usize];
    let mut cursor = SegmentCursor::new(&views, SegmentCursor::all_region(k));
    cursor.for_each(|e| hist[e.cell[0] as usize] += 1).map_err(|e| format!("scanning EDB: {e}"))?;
    let total: u64 = hist.iter().sum();

    // Entry-balanced prefix cuts: shard i ends at the first leaf whose
    // prefix sum reaches (i+1)/shards of the total (always advancing at
    // least the remaining-leaves-per-remaining-shard floor so every
    // shard gets an interval even when entries concentrate early).
    let mut cuts = Vec::with_capacity(shards + 1);
    cuts.push(0u32);
    let mut acc = 0u64;
    let mut leaf = 0u32;
    for i in 1..shards {
        let target = total * i as u64 / shards as u64;
        while leaf < n0 && (acc < target || leaf < cuts[i - 1]) {
            acc += hist[leaf as usize];
            leaf += 1;
        }
        cuts.push(leaf.max(cuts[i - 1]));
    }
    cuts.push(n0);

    let mut manifests = Vec::with_capacity(shards);
    for i in 0..shards {
        let (lo, hi) = (cuts[i], cuts[i + 1]);
        let (fence, entries) = interval_fence(&views, k, lo, hi)?;
        let m = ShardManifest { index: i, shards, k, lo, hi, fence, entries, fingerprint };
        let dir = out.join(shard_dir_name(i));
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        write_dataset(&table, &dir).map_err(|e| format!("writing {}: {e}", dir.display()))?;
        m.save(&dir).map_err(|e| format!("writing shard.json in {}: {e}", dir.display()))?;
        manifests.push(m);
    }
    let cluster = ClusterManifest { k, fingerprint, shards: manifests };
    std::fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    cluster.save(out).map_err(|e| format!("writing cluster.json: {e}"))?;
    Ok(cluster)
}

/// The canonical shard directory name for index `i`.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard{i:04}")
}

/// Load the schema a cluster was partitioned over (from shard 0's copy
/// of the dataset — every shard carries an identical one).
pub fn cluster_schema(cluster_dir: &Path) -> Result<Arc<Schema>, String> {
    let (schema, _) = read_dataset(&cluster_dir.join(shard_dir_name(0)))?;
    Ok(schema)
}

/// Bounding box and entry count of the built entries whose dim0 leaf
/// falls in `[lo, hi)`; `(None, 0)` when the interval holds none.
fn interval_fence(
    views: &[iolap_core::SegmentView],
    k: usize,
    lo: u32,
    hi: u32,
) -> Result<(Option<RegionBox>, u64), String> {
    let mut min = [u32::MAX; MAX_DIMS];
    let mut max = [0u32; MAX_DIMS];
    let mut entries = 0u64;
    let mut cursor = SegmentCursor::new(views, SegmentCursor::all_region(k));
    cursor
        .for_each(|e| {
            if e.cell[0] < lo || e.cell[0] >= hi {
                return;
            }
            entries += 1;
            for d in 0..k {
                min[d] = min[d].min(e.cell[d]);
                max[d] = max[d].max(e.cell[d]);
            }
        })
        .map_err(|e| format!("scanning EDB: {e}"))?;
    if entries == 0 {
        return Ok((None, 0));
    }
    let mut lo_box = [0u32; MAX_DIMS];
    let mut hi_box = [0u32; MAX_DIMS];
    for d in 0..k {
        lo_box[d] = min[d];
        hi_box[d] = max[d] + 1; // half-open
    }
    Ok((Some(RegionBox { lo: lo_box, hi: hi_box, k: k as u8 }), entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("iolap-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn partition_writes_complete_shard_dirs() {
        let base = tmpdir("partition");
        let data = base.join("data");
        std::fs::create_dir_all(&data).unwrap();
        write_dataset(&paper_example::table1(), &data).unwrap();
        let out = base.join("cluster");

        let policy = PolicySpec::em_count(0.01);
        let alloc = AllocConfig::builder().in_memory(256).build();
        let c = partition_dataset(&data, &out, 2, &policy, &alloc).unwrap();
        assert_eq!(c.shards.len(), 2);
        assert_eq!(c.k, 2);

        // Every shard dir is a loadable single-node dataset with a
        // manifest agreeing with cluster.json, and the intervals tile
        // the dim0 leaf axis.
        let reloaded = ClusterManifest::load(&out).unwrap();
        assert_eq!(reloaded, c);
        let mut covered = 0u32;
        for (i, m) in c.shards.iter().enumerate() {
            assert_eq!(m.lo, covered, "intervals tile without gaps");
            covered = m.hi;
            let dir = out.join(shard_dir_name(i));
            let (schema, table) = read_dataset(&dir).unwrap();
            assert_eq!(schema.k(), 2);
            assert_eq!(table.len(), paper_example::table1().len());
            assert_eq!(ShardManifest::load(&dir).unwrap(), *m);
            if let Some(f) = &m.fence {
                assert!(f.lo[0] >= m.lo && f.hi[0] <= m.hi, "fence clipped to interval");
            }
        }
        assert_eq!(covered, 4, "paper example has 4 dim0 leaves");
        let entries: u64 = c.shards.iter().map(|m| m.entries).sum();
        assert!(entries > 0, "paper example builds a nonempty EDB");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn oversharded_partition_yields_empty_tail_shards() {
        let base = tmpdir("oversharded");
        let data = base.join("data");
        std::fs::create_dir_all(&data).unwrap();
        write_dataset(&paper_example::table1(), &data).unwrap();
        let policy = PolicySpec::em_count(0.01);
        let alloc = AllocConfig::builder().in_memory(256).build();
        // 8 shards over 4 leaves: some intervals must be empty, and the
        // manifest still validates (disjoint ascending, dense indexes).
        let c = partition_dataset(&data, &base.join("cluster"), 8, &policy, &alloc).unwrap();
        assert_eq!(c.shards.len(), 8);
        assert!(c.shards.iter().any(|m| m.lo == m.hi || m.fence.is_none()));
        assert_eq!(c.shards.last().unwrap().hi, 4);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let t1 = paper_example::table1();
        let s = paper_example::schema();
        let a = dataset_fingerprint(&s, &t1);
        let mut t2 = paper_example::table1();
        t2.facts_mut()[0].measure += 1.0;
        assert_ne!(a, dataset_fingerprint(&s, &t2));
    }
}
