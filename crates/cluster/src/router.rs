//! The scatter-gather router: one HTTP front door over a cluster of
//! range-sharded, replicated single-node servers.
//!
//! The router reuses the serve crate's reactor/worker engine (metrics
//! under `cluster.*`) and speaks the same wire protocol as a single
//! node, so clients cannot tell a cluster from one server — including
//! at the f64-bit level:
//!
//! * **Reads** fan out only to shards whose fence box overlaps the
//!   query box (the shard-level Theorem 12 prune), with the box clipped
//!   to each shard's dim0 leaf interval. Shards return canonical
//!   `(view, slab)` chunk lists; the router concatenates them in shard
//!   index order, re-sorts, and folds — bit-identical to a single node
//!   folding its own chunks, because chunks never straddle a dim0 cut.
//! * **Writes** flow through every replica of every shard under one
//!   cross-shard epoch: phase one `{"prepare": true}` applies the batch
//!   and stages the snapshot on each replica (readers keep the old
//!   epoch), phase two `POST /epoch` flips every replica to the new
//!   epoch. Replicas that fail either phase are drained and only
//!   rejoin when a health probe sees them healthy *at the cluster
//!   epoch*.
//! * **Replica reads** rotate round-robin within a shard's replica
//!   group; a failing replica is drained and the request retried on the
//!   next, with one bounded backoff pass before giving up.
//!
//! Failures never half-merge: a scatter with any failed leg answers
//! `503 {"code":"scatter_failed"}`, and a shard with no live replica
//! answers `503 {"code":"shard_unavailable"}` — the documented error
//! shape, never a partial `200`.

use crate::partition::cluster_schema;
use iolap_core::{fold_parts, sort_parts, ChunkPart};
use iolap_model::{ClusterManifest, RegionBox, Schema, MAX_DIMS};
use iolap_obs::{json, Counter, Gauge, Obs};
use iolap_query::{AggResult, RollupParts};
use iolap_serve::http::Request;
use iolap_serve::snapshot::{resolve_level, resolve_region};
use iolap_serve::{engine, http_roundtrip, wire, EngineHandle, Handler, Response, ServeConfig};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wire::ServeError;

/// One backend server process holding a shard replica.
struct Replica {
    addr: SocketAddr,
    /// False while drained: skipped by reads, restored by the health
    /// probe once it answers at the cluster epoch.
    healthy: AtomicBool,
}

/// One shard: its manifest plus the replica group serving it.
struct ShardGroup {
    manifest: iolap_model::ShardManifest,
    replicas: Vec<Replica>,
    /// Round-robin cursor for read fan-out.
    rr: AtomicUsize,
}

impl ShardGroup {
    fn has_healthy(&self) -> bool {
        self.replicas.iter().any(|r| r.healthy.load(Ordering::Acquire))
    }
}

/// Router-plane metric handles (`cluster.*`; the engine adds the
/// transport series under the same prefix).
struct RouterMetrics {
    req_query: Counter,
    req_rollup: Counter,
    req_update: Counter,
    req_healthz: Counter,
    req_metrics: Counter,
    scatter_legs: Counter,
    scatter_pruned: Counter,
    forwards: Counter,
    retries: Counter,
    replica_drained: Counter,
    replica_restored: Counter,
    updates_committed: Counter,
    epoch: Gauge,
}

impl RouterMetrics {
    fn new(obs: &Obs) -> Self {
        let c = |n: &str| obs.counter(n).expect("router obs is always enabled");
        RouterMetrics {
            req_query: c("cluster.requests.query"),
            req_rollup: c("cluster.requests.rollup"),
            req_update: c("cluster.requests.update"),
            req_healthz: c("cluster.requests.healthz"),
            req_metrics: c("cluster.requests.metrics"),
            scatter_legs: c("cluster.scatter.legs"),
            scatter_pruned: c("cluster.scatter.pruned"),
            forwards: c("cluster.forward"),
            retries: c("cluster.retries"),
            replica_drained: c("cluster.replica.drained"),
            replica_restored: c("cluster.replica.restored"),
            updates_committed: c("cluster.updates.committed"),
            epoch: obs.gauge("cluster.epoch").expect("enabled"),
        }
    }
}

struct RouterShared {
    schema: Arc<Schema>,
    groups: Vec<ShardGroup>,
    /// The cluster epoch: advanced only by a fully-committed `/update`.
    epoch: AtomicU64,
    obs: Obs,
    metrics: RouterMetrics,
    /// Serializes the two-phase write path.
    update_lock: Mutex<()>,
    /// Global round-robin cursor for whole-cluster forwards (classical).
    any_rr: AtomicUsize,
    connect_timeout: Duration,
    io_timeout: Duration,
    shutdown: AtomicBool,
}

/// Configures and starts a [`RouterHandle`]. Obtained from
/// [`Router::builder`].
pub struct RouterBuilder {
    dir: PathBuf,
    replicas: Vec<Vec<String>>,
    cfg: ServeConfig,
    probe_interval: Duration,
    connect_timeout: Duration,
    io_timeout: Duration,
}

/// Namespace for [`Router::builder`].
pub struct Router;

impl Router {
    /// Start configuring a router over the cluster directory `dir`
    /// (holding `cluster.json` and the shard dataset directories).
    pub fn builder(dir: impl Into<PathBuf>) -> RouterBuilder {
        RouterBuilder {
            dir: dir.into(),
            replicas: Vec::new(),
            cfg: ServeConfig::default(),
            probe_interval: Duration::from_millis(1000),
            connect_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(10),
        }
    }
}

impl RouterBuilder {
    /// Register the replica addresses serving shard `index`. Every shard
    /// in the cluster manifest needs at least one.
    pub fn shard_replicas(mut self, index: usize, addrs: &[&str]) -> Self {
        if self.replicas.len() <= index {
            self.replicas.resize(index + 1, Vec::new());
        }
        self.replicas[index] = addrs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Transport configuration (workers, timeouts, shedding) for the
    /// router's own HTTP front.
    pub fn config(mut self, cfg: ServeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// How often the health probe retries drained replicas.
    pub fn probe_interval(mut self, d: Duration) -> Self {
        self.probe_interval = d;
        self
    }

    /// Per-attempt connect timeout for backend calls.
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.connect_timeout = d;
        self
    }

    /// Bind `addr` and start serving.
    pub fn bind(self, addr: &str) -> Result<RouterHandle, ServeError> {
        let RouterBuilder { dir, replicas, cfg, probe_interval, connect_timeout, io_timeout } =
            self;
        let manifest = ClusterManifest::load(&dir).map_err(ServeError::BadRequest)?;
        let schema = cluster_schema(&dir).map_err(ServeError::BadRequest)?;
        if replicas.len() != manifest.shards.len() {
            return Err(ServeError::BadRequest(format!(
                "cluster has {} shards but {} replica groups were registered",
                manifest.shards.len(),
                replicas.len()
            )));
        }
        let mut groups = Vec::with_capacity(manifest.shards.len());
        for (i, (m, addrs)) in manifest.shards.iter().zip(&replicas).enumerate() {
            if addrs.is_empty() {
                return Err(ServeError::BadRequest(format!("shard {i} has no replicas")));
            }
            let mut reps = Vec::with_capacity(addrs.len());
            for a in addrs {
                let addr: SocketAddr = a
                    .parse()
                    .map_err(|_| ServeError::BadRequest(format!("bad replica address {a:?}")))?;
                reps.push(Replica { addr, healthy: AtomicBool::new(true) });
            }
            groups.push(ShardGroup {
                manifest: m.clone(),
                replicas: reps,
                rr: AtomicUsize::new(0),
            });
        }

        let obs = if cfg.obs.is_enabled() { cfg.obs.clone() } else { Obs::metrics_only() };
        let metrics = RouterMetrics::new(&obs);
        let shared = Arc::new(RouterShared {
            schema,
            groups,
            epoch: AtomicU64::new(0),
            obs: obs.clone(),
            metrics,
            update_lock: Mutex::new(()),
            any_rr: AtomicUsize::new(0),
            connect_timeout,
            io_timeout,
            shutdown: AtomicBool::new(false),
        });

        // Adopt the backends' published epoch (a router restart must not
        // reset the cluster clock). Unreachable replicas stay optimistic
        // — the first failing request drains them.
        let mut seen = 0u64;
        for g in &shared.groups {
            for r in &g.replicas {
                if let Ok((200, body)) = call(&r.addr, "GET", "/healthz", "", &shared) {
                    if let Ok(v) = json::parse(&body) {
                        if let Some(e) = v.get("epoch").and_then(|e| e.as_u64()) {
                            seen = seen.max(e);
                        }
                    }
                }
            }
        }
        shared.epoch.store(seen, Ordering::SeqCst);
        shared.metrics.epoch.set(seen as i64);

        let app = Arc::new(RouterApp { shared: shared.clone() });
        let engine = engine::start(addr, &cfg, "router", "cluster", &obs, app)?;

        let probe_shared = shared.clone();
        let probe = std::thread::Builder::new()
            .name("iolap-router-probe".into())
            .spawn(move || probe_main(probe_shared, probe_interval))
            .map_err(ServeError::Io)?;
        Ok(RouterHandle { engine, shared, probe: Some(probe) })
    }
}

/// A running router; dropping it stops the front door and the probe.
pub struct RouterHandle {
    engine: EngineHandle,
    shared: Arc<RouterShared>,
    probe: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound front-door address.
    pub fn addr(&self) -> SocketAddr {
        self.engine.addr()
    }

    /// The observability handle (always at least metrics-only).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The current cluster epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Stop serving and join every thread.
    pub fn shutdown(self) {}

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.engine.stop();
        if let Some(p) = self.probe.take() {
            let _ = p.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn probe_main(shared: Arc<RouterShared>, interval: Duration) {
    while !shared.shutdown.load(Ordering::Acquire) {
        // Sleep in small slices so shutdown stays prompt.
        let mut left = interval;
        while !left.is_zero() && !shared.shutdown.load(Ordering::Acquire) {
            let step = left.min(Duration::from_millis(50));
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let cluster_epoch = shared.epoch.load(Ordering::SeqCst);
        for g in &shared.groups {
            for r in &g.replicas {
                if r.healthy.load(Ordering::Acquire) {
                    continue;
                }
                // Rejoin only when the replica is up *and* publishes the
                // cluster epoch — a drained replica that missed a commit
                // would otherwise serve stale bits.
                if let Ok((200, body)) = call(&r.addr, "GET", "/healthz", "", &shared) {
                    let at_epoch = json::parse(&body)
                        .ok()
                        .and_then(|v| v.get("epoch").and_then(|e| e.as_u64()))
                        == Some(cluster_epoch);
                    if at_epoch {
                        r.healthy.store(true, Ordering::Release);
                        shared.metrics.replica_restored.inc();
                    }
                }
            }
        }
    }
}

/// One backend HTTP call with connect/read/write timeouts.
fn call(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    shared: &RouterShared,
) -> std::io::Result<(u16, String)> {
    let mut s = TcpStream::connect_timeout(addr, shared.connect_timeout)?;
    s.set_read_timeout(Some(shared.io_timeout))?;
    s.set_write_timeout(Some(shared.io_timeout))?;
    http_roundtrip(&mut s, method, path, body)
}

/// Send one request to shard `gi`, rotating over healthy replicas and
/// draining the ones that fail. Makes two passes (the second after a
/// short backoff, retrying even just-drained replicas) before reporting
/// the shard unavailable. Returns whatever HTTP response the replica
/// gave — backend 4xx/5xx are the caller's to interpret.
fn group_call(
    shared: &RouterShared,
    gi: usize,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), ServeError> {
    let g = &shared.groups[gi];
    let n = g.replicas.len();
    let start = g.rr.fetch_add(1, Ordering::Relaxed);
    for pass in 0..2 {
        for j in 0..n {
            let r = &g.replicas[(start + j) % n];
            // First pass honors drain flags; the backoff pass retries
            // every replica — a drained one may have just recovered.
            if pass == 0 && !r.healthy.load(Ordering::Acquire) {
                continue;
            }
            match call(&r.addr, method, path, body, shared) {
                Ok(resp) => {
                    if pass == 1 {
                        r.healthy.store(true, Ordering::Release);
                    }
                    return Ok(resp);
                }
                Err(_) => {
                    if r.healthy.swap(false, Ordering::AcqRel) {
                        shared.metrics.replica_drained.inc();
                    }
                    shared.metrics.retries.inc();
                }
            }
        }
        if pass == 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    Err(ServeError::ShardUnavailable(format!("shard {gi}: no replica answered")))
}

struct RouterApp {
    shared: Arc<RouterShared>,
}

impl Handler for RouterApp {
    fn handle(&self, req: &Request) -> Response {
        handle_request(req, &self.shared)
    }
}

fn err_response(e: ServeError) -> Response {
    let (status, body) = e.to_response();
    (status, "application/json", body)
}

fn handle_request(req: &Request, shared: &RouterShared) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return err_response(ServeError::BadRequest("body is not UTF-8".into())),
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.req_healthz.inc();
            let ok = shared.groups.iter().all(ShardGroup::has_healthy);
            let status = if ok { 200 } else { 503 };
            let epoch = shared.epoch.load(Ordering::SeqCst);
            (status, "application/json", wire::health_response(epoch, ok, "router", 0))
        }
        ("GET", "/metrics") => {
            shared.metrics.req_metrics.inc();
            let text = shared.obs.metrics().map(|m| m.to_prometheus()).unwrap_or_default();
            (200, "text/plain; version=0.0.4", text)
        }
        ("POST", "/query") => {
            shared.metrics.req_query.inc();
            match handle_query(body, shared) {
                Ok(r) => r,
                Err(e) => err_response(e),
            }
        }
        ("POST", "/rollup") => {
            shared.metrics.req_rollup.inc();
            match handle_rollup(body, shared) {
                Ok(r) => r,
                Err(e) => err_response(e),
            }
        }
        ("POST", "/update") => {
            shared.metrics.req_update.inc();
            match handle_update(body, shared) {
                Ok(r) => r,
                Err(e) => err_response(e),
            }
        }
        (_, "/healthz" | "/metrics" | "/query" | "/rollup" | "/update") => {
            err_response(ServeError::MethodNotAllowed("method not allowed".into()))
        }
        _ => err_response(ServeError::NotFound("no such endpoint".into())),
    }
}

/// Resolve the request's region: an explicit box wins over names.
fn request_region(
    schema: &Schema,
    at: &[(String, String)],
    raw: &Option<Vec<(u32, u32)>>,
) -> Result<RegionBox, String> {
    if let Some(b) = raw {
        if b.len() != schema.k() {
            return Err(format!("\"box\" has {} dimensions, want {}", b.len(), schema.k()));
        }
        let mut lo = [0u32; MAX_DIMS];
        let mut hi = [0u32; MAX_DIMS];
        for (d, &(l, h)) in b.iter().enumerate() {
            lo[d] = l;
            hi[d] = h;
        }
        return Ok(RegionBox { lo, hi, k: schema.k() as u8 });
    }
    resolve_region(schema, at)
}

/// The region clipped to shard `m`'s dim0 interval, as wire box pairs.
fn clip_to_shard(region: &RegionBox, m: &iolap_model::ShardManifest) -> Vec<(u32, u32)> {
    let k = region.k as usize;
    (0..k)
        .map(|d| {
            if d == 0 {
                (region.lo[0].max(m.lo), region.hi[0].min(m.hi))
            } else {
                (region.lo[d], region.hi[d])
            }
        })
        .collect()
}

/// Indexes of shards whose fence overlaps the region, in merge order.
fn overlapping(shared: &RouterShared, region: &RegionBox) -> Vec<usize> {
    let hit: Vec<usize> =
        (0..shared.groups.len()).filter(|&i| shared.groups[i].manifest.overlaps(region)).collect();
    let pruned = shared.groups.len() - hit.len();
    shared.metrics.scatter_pruned.add(pruned as u64);
    hit
}

/// Forward `body` verbatim to any shard (every shard holds the full
/// table and EDB), rotating across groups.
fn forward_any(shared: &RouterShared, path: &str, body: &str) -> Result<(u16, String), ServeError> {
    let n = shared.groups.len();
    let start = shared.any_rr.fetch_add(1, Ordering::Relaxed);
    for j in 0..n {
        let gi = (start + j) % n;
        if !shared.groups[gi].has_healthy() && j + 1 < n {
            continue;
        }
        match group_call(shared, gi, "POST", path, body) {
            Ok(r) => {
                shared.metrics.forwards.inc();
                return Ok(r);
            }
            Err(_) if j + 1 < n => continue,
            Err(e) => return Err(e),
        }
    }
    Err(ServeError::ShardUnavailable("no shard answered".into()))
}

/// Scatter one request body per leg to the given shards concurrently,
/// demanding HTTP 200 and a consistent epoch from every leg. Returns the
/// legs' bodies in shard order plus the common epoch.
fn scatter<F>(shared: &RouterShared, legs: &[usize], path: &str, mk_body: F) -> ScatterResult
where
    F: Fn(usize) -> String + Sync,
{
    // One retry for transient epoch skew: a read racing a commit can see
    // some shards pre-flip and some post-flip; the window is one /epoch
    // round, so a single retry settles it.
    for attempt in 0..2 {
        let mut out: Vec<Option<Result<(u16, String), ServeError>>> = Vec::new();
        out.resize_with(legs.len(), || None);
        std::thread::scope(|scope| {
            for (slot, &gi) in out.iter_mut().zip(legs) {
                let body = mk_body(gi);
                scope.spawn(move || {
                    shared.metrics.scatter_legs.inc();
                    *slot = Some(group_call(shared, gi, "POST", path, &body));
                });
            }
        });
        let mut bodies = Vec::with_capacity(legs.len());
        for (slot, &gi) in out.into_iter().zip(legs) {
            match slot.expect("scatter leg ran") {
                Ok((200, body)) => bodies.push(body),
                Ok((status, body)) if (400..500).contains(&status) => {
                    // A deterministic client error is identical on every
                    // shard — forward the first one verbatim.
                    return ScatterResult::ClientError(status, body);
                }
                Ok((status, _)) => {
                    return ScatterResult::Failed(ServeError::ScatterFailed(format!(
                        "shard {gi} answered {status}"
                    )));
                }
                Err(ServeError::ShardUnavailable(m)) => {
                    return ScatterResult::Failed(ServeError::ScatterFailed(m));
                }
                Err(e) => return ScatterResult::Failed(e),
            }
        }
        let epochs: Vec<Option<u64>> = bodies
            .iter()
            .map(|b| json::parse(b).ok().and_then(|v| v.get("epoch").and_then(|e| e.as_u64())))
            .collect();
        match (epochs.first().copied().flatten(), epochs.iter().all(|e| e == &epochs[0])) {
            (Some(e), true) => return ScatterResult::Ok(bodies, e),
            _ if attempt == 0 => std::thread::sleep(Duration::from_millis(25)),
            _ => {
                return ScatterResult::Failed(ServeError::ScatterFailed(
                    "shards disagree on epoch".into(),
                ))
            }
        }
    }
    unreachable!("scatter retries twice then returns")
}

enum ScatterResult {
    /// Every leg answered 200 at one epoch: bodies in shard order.
    Ok(Vec<String>, u64),
    /// A deterministic backend 4xx, forwarded verbatim.
    ClientError(u16, String),
    Failed(ServeError),
}

fn handle_query(body: &str, shared: &RouterShared) -> Result<Response, ServeError> {
    let q = wire::parse_query(body).map_err(ServeError::BadRequest)?;
    if q.classical.is_some() {
        if q.parts {
            return Err(ServeError::BadRequest(
                "\"classical\" and \"parts\" are mutually exclusive".into(),
            ));
        }
        let (status, resp) = forward_any(shared, "/query", body)?;
        return Ok((status, "application/json", resp));
    }
    let region =
        request_region(&shared.schema, &q.at, &q.raw_box).map_err(ServeError::BadRequest)?;
    let legs = overlapping(shared, &region);
    let epoch = shared.epoch.load(Ordering::SeqCst);

    if legs.is_empty() {
        let r = AggResult::from_parts(q.agg, 0.0, 0.0);
        let body = if q.parts {
            wire::parts_response(&[], q.agg, epoch)
        } else {
            wire::query_response(&r, q.agg, false, epoch)
        };
        return Ok((200, "application/json", body));
    }
    if legs.len() == 1 && !q.parts {
        // Every cell of the box lives on this one shard: forwarding the
        // original body verbatim is the single-node computation.
        shared.metrics.forwards.inc();
        let (status, resp) = group_call(shared, legs[0], "POST", "/query", body)?;
        return Ok((status, "application/json", resp));
    }

    let merged = match scatter(shared, &legs, "/query", |gi| {
        wire::query_parts_body(&clip_to_shard(&region, &shared.groups[gi].manifest), q.agg)
    }) {
        ScatterResult::Ok(bodies, epoch) => {
            let mut parts: Vec<ChunkPart> = Vec::new();
            for b in &bodies {
                let (p, _) = wire::parse_parts_response(b)
                    .map_err(|e| ServeError::ScatterFailed(format!("bad shard response: {e}")))?;
                parts.extend(p);
            }
            sort_parts(&mut parts);
            (parts, epoch)
        }
        ScatterResult::ClientError(status, body) => return Ok((status, "application/json", body)),
        ScatterResult::Failed(e) => return Err(e),
    };
    let (parts, epoch) = merged;
    let body = if q.parts {
        wire::parts_response(&parts, q.agg, epoch)
    } else {
        let (sum, count) = fold_parts(&parts);
        wire::query_response(&AggResult::from_parts(q.agg, sum, count), q.agg, false, epoch)
    };
    Ok((200, "application/json", body))
}

fn handle_rollup(body: &str, shared: &RouterShared) -> Result<Response, ServeError> {
    let r = wire::parse_rollup(body).map_err(ServeError::BadRequest)?;
    let (dim, level) =
        resolve_level(&shared.schema, &r.dim, &r.level).map_err(ServeError::BadRequest)?;
    let region =
        request_region(&shared.schema, &r.at, &r.raw_box).map_err(ServeError::BadRequest)?;
    let legs = overlapping(shared, &region);
    let epoch = shared.epoch.load(Ordering::SeqCst);

    // Cluster rollups are always scan-planned chunk merges (the lattice
    // plan groups leaf slabs differently and would not merge bit-stably
    // across shards); a single-node server's `"plan":"scan"` rollup is
    // the bit-reference.
    let merge = |bodies: Vec<String>| -> Result<Vec<RollupParts>, ServeError> {
        let mut rows: Option<Vec<RollupParts>> = None;
        for b in &bodies {
            let (shard_rows, _) = wire::parse_rollup_parts_response(b)
                .map_err(|e| ServeError::ScatterFailed(format!("bad shard response: {e}")))?;
            match &mut rows {
                None => rows = Some(shard_rows),
                Some(acc) => {
                    if acc.len() != shard_rows.len()
                        || acc
                            .iter()
                            .zip(&shard_rows)
                            .any(|(a, b)| a.node != b.node || a.name != b.name)
                    {
                        return Err(ServeError::ScatterFailed(
                            "shards disagree on rollup rows".into(),
                        ));
                    }
                    for (a, b) in acc.iter_mut().zip(shard_rows) {
                        a.parts.extend(b.parts);
                    }
                }
            }
        }
        let mut rows = rows.unwrap_or_default();
        for row in &mut rows {
            sort_parts(&mut row.parts);
        }
        Ok(rows)
    };

    let (rows, epoch) = if legs.is_empty() {
        // Dense zero rows, same row set and order as any shard's answer.
        let h = shared.schema.dim(dim);
        let rows: Vec<RollupParts> = h
            .nodes_at_level(level)
            .iter()
            .map(|&n| RollupParts { node: n, name: h.node_name(n), parts: Vec::new() })
            .collect();
        (rows, epoch)
    } else {
        match scatter(shared, &legs, "/rollup", |gi| {
            wire::rollup_parts_body(
                &r.dim,
                &r.level,
                &clip_to_shard(&region, &shared.groups[gi].manifest),
                r.agg,
            )
        }) {
            ScatterResult::Ok(bodies, epoch) => (merge(bodies)?, epoch),
            ScatterResult::ClientError(status, body) => {
                return Ok((status, "application/json", body))
            }
            ScatterResult::Failed(e) => return Err(e),
        }
    };
    let body = if r.parts {
        wire::rollup_parts_response(&rows, r.agg, epoch)
    } else {
        wire::rollup_response(&iolap_query::finish_rollup_parts(&rows, r.agg), r.agg, epoch)
    };
    Ok((200, "application/json", body))
}

fn handle_update(body: &str, shared: &RouterShared) -> Result<Response, ServeError> {
    let upd = wire::parse_update(body).map_err(ServeError::BadRequest)?;
    let _guard = shared.update_lock.lock().unwrap_or_else(|p| p.into_inner());

    // Every shard needs a live replica before anything mutates.
    for (gi, g) in shared.groups.iter().enumerate() {
        if !g.has_healthy() {
            return Err(ServeError::ShardUnavailable(format!("shard {gi}: all replicas drained")));
        }
    }

    // Phase 1: prepare on every healthy replica of every shard. Each
    // replica applies the batch and stages the snapshot; readers keep
    // the old epoch until phase 2.
    let prepare_body = wire::update_body_opts(&upd.muts, true);
    let mut staged: Vec<Vec<(usize, usize, String)>> = Vec::new(); // (gi, ri, body)
    let mut client_error: Option<(u16, String)> = None;
    let mut any_staged = false;
    for (gi, g) in shared.groups.iter().enumerate() {
        let mut group_staged = Vec::new();
        for (ri, r) in g.replicas.iter().enumerate() {
            if !r.healthy.load(Ordering::Acquire) {
                continue;
            }
            match call(&r.addr, "POST", "/update", &prepare_body, shared) {
                Ok((200, b)) => {
                    group_staged.push((gi, ri, b));
                    any_staged = true;
                }
                Ok((status, b)) if (400..500).contains(&status) && !any_staged => {
                    // Deterministic rejection happens before any replica
                    // mutates — every peer rejects identically, so stop
                    // scattering and forward it.
                    client_error = Some((status, b));
                    break;
                }
                _ => {
                    // Replica failed or diverged mid-scatter: drain it.
                    // It keeps serving nothing until the probe sees it
                    // healthy at the cluster epoch.
                    if r.healthy.swap(false, Ordering::AcqRel) {
                        shared.metrics.replica_drained.inc();
                    }
                }
            }
        }
        if client_error.is_some() {
            break;
        }
        staged.push(group_staged);
    }
    if let Some((status, b)) = client_error {
        return Ok((status, "application/json", b));
    }

    // Commit only if every shard still has a staged replica; otherwise
    // the batch never publishes anywhere (staged replicas answer reads
    // at the old epoch and get drained by the next write's prepare).
    if let Some(gi) = staged.iter().position(Vec::is_empty) {
        return Err(ServeError::ScatterFailed(format!("shard {gi}: no replica staged the batch")));
    }

    // Deterministic peers agree on the staged epoch; drain any that
    // drifted.
    let parse_epoch =
        |b: &str| json::parse(b).ok().and_then(|v| v.get("epoch").and_then(|e| e.as_u64()));
    let target = staged
        .first()
        .and_then(|g| g.first())
        .and_then(|(_, _, b)| parse_epoch(b))
        .ok_or_else(|| ServeError::ScatterFailed("unparseable prepare response".into()))?;
    let first_report = staged[0][0].2.clone();
    for g in &mut staged {
        g.retain(|(gi, ri, b)| {
            let keep = parse_epoch(b) == Some(target);
            if !keep {
                let r = &shared.groups[*gi].replicas[*ri];
                if r.healthy.swap(false, Ordering::AcqRel) {
                    shared.metrics.replica_drained.inc();
                }
            }
            keep
        });
    }
    if let Some(gi) = staged.iter().position(Vec::is_empty) {
        return Err(ServeError::ScatterFailed(format!(
            "shard {gi}: replicas disagree on the staged epoch"
        )));
    }

    // Phase 2: flip every staged replica to the new epoch.
    let commit_body = wire::commit_body(target);
    let mut invalidated = None;
    let mut committed_everywhere = true;
    for g in &staged {
        let mut group_committed = false;
        for (gi, ri, _) in g {
            let r = &shared.groups[*gi].replicas[*ri];
            match call(&r.addr, "POST", "/epoch", &commit_body, shared) {
                Ok((200, b)) => {
                    group_committed = true;
                    if invalidated.is_none() {
                        invalidated = json::parse(&b)
                            .ok()
                            .and_then(|v| v.get("invalidated").and_then(|x| x.as_u64()));
                    }
                }
                _ => {
                    if r.healthy.swap(false, Ordering::AcqRel) {
                        shared.metrics.replica_drained.inc();
                    }
                }
            }
        }
        committed_everywhere &= group_committed;
    }
    // Any successful commit advances the cluster clock — replicas left
    // behind must not rejoin at the old epoch.
    shared.epoch.store(target, Ordering::SeqCst);
    shared.metrics.epoch.set(target as i64);
    if !committed_everywhere {
        return Err(ServeError::ScatterFailed("a shard lost every replica during commit".into()));
    }
    shared.metrics.updates_committed.inc();

    // Answer with the first replica's maintenance report at the
    // committed epoch.
    let v = json::parse(&first_report)
        .map_err(|e| ServeError::ScatterFailed(format!("bad prepare response: {e}")))?;
    let f = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let body = wire::update_response(
        target,
        invalidated.unwrap_or(0),
        f("affected_components"),
        f("affected_tuples"),
        f("entries_rewritten"),
        f("merges"),
        f("splits"),
    );
    Ok((200, "application/json", body))
}
