//! End-to-end cluster behavior over real sockets: a partitioned dataset
//! served by in-process shard servers behind the scatter-gather router.
//!
//! The bit-level contract under test: every router answer — `/query`
//! cold and after a cross-shard `/update`, and `/rollup` — is **byte**
//! identical to a single-node server over the same dataset (rollups
//! compared against the single node's `"plan":"scan"` form, the
//! cluster's documented reference). Plus the documented failure shapes:
//! a shard with no live replica answers `503 shard_unavailable`, a
//! partially-failed scatter answers `503 scatter_failed`, and reads
//! survive losing one replica of a group.

use iolap_cluster::{partition_dataset, shard_dir_name, Router, RouterHandle};
use iolap_core::{AllocConfig, PolicySpec};
use iolap_model::csv::{read_dataset, write_dataset};
use iolap_model::paper_example;
use iolap_obs::json;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, ServeConfig, Server, ServerHandle};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn policy() -> PolicySpec {
    PolicySpec::em_count(0.01)
}

fn alloc_cfg() -> AllocConfig {
    AllocConfig::builder().in_memory(256).build()
}

/// Partition the paper example into `shards` shard dirs under a fresh
/// temp dir and return the cluster dir.
fn build_cluster_dir(tag: &str, shards: usize) -> PathBuf {
    let base = std::env::temp_dir().join(format!("iolap-cluster-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data = base.join("data");
    std::fs::create_dir_all(&data).unwrap();
    write_dataset(&paper_example::table1(), &data).unwrap();
    let out = base.join("cluster");
    partition_dataset(&data, &out, shards, &policy(), &alloc_cfg()).unwrap();
    out
}

/// Start one shard server over `dir`'s dataset copy.
fn start_shard(dir: &Path) -> ServerHandle {
    let (_, table) = read_dataset(dir).unwrap();
    Server::builder(table, policy())
        .alloc(alloc_cfg())
        .config(ServeConfig::builder().role("shard").build())
        .bind("127.0.0.1:0")
        .expect("shard starts")
}

fn start_single() -> ServerHandle {
    Server::builder(paper_example::table1(), policy())
        .alloc(alloc_cfg())
        .config(ServeConfig::default())
        .bind("127.0.0.1:0")
        .expect("single node starts")
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut c = TcpStream::connect(addr).expect("connect");
    http_roundtrip(&mut c, "POST", path, body).expect("roundtrip")
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut c = TcpStream::connect(addr).expect("connect");
    http_roundtrip(&mut c, "GET", path, "").expect("roundtrip")
}

/// Every documented error answer carries `{"error","code","status"}`.
fn assert_error_shape(status: u16, body: &str, code: &str) {
    let v = json::parse(body).unwrap_or_else(|e| panic!("unparseable error body {body:?}: {e}"));
    assert_eq!(v.get("code").and_then(|c| c.as_str()), Some(code), "{body}");
    assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(u64::from(status)), "{body}");
    assert!(v.get("error").and_then(|m| m.as_str()).is_some(), "{body}");
}

const QUERIES: &[(&str, AggFn)] = &[
    ("{}", AggFn::Sum),
    ("{\"agg\":\"count\"}", AggFn::Count),
    ("{\"region\":{\"Location\":\"MA\"},\"agg\":\"sum\"}", AggFn::Sum),
    ("{\"region\":{\"Location\":\"East\"},\"agg\":\"average\"}", AggFn::Avg),
    ("{\"region\":{\"Location\":\"West\",\"Automobile\":\"Sedan\"}}", AggFn::Sum),
    ("{\"region\":{\"Location\":\"CA\",\"Automobile\":\"Truck\"},\"agg\":\"count\"}", AggFn::Count),
];

const ROLLUPS: &[&str] = &[
    "{\"dim\":\"Location\",\"level\":\"State\"}",
    "{\"dim\":\"Location\",\"level\":\"Region\",\"agg\":\"average\"}",
    "{\"dim\":\"Automobile\",\"level\":\"Category\",\"region\":{\"Location\":\"East\"},\"agg\":\"count\"}",
];

/// Start a 2-shard cluster (one replica each) plus the router.
fn start_cluster(tag: &str) -> (Vec<ServerHandle>, RouterHandle, PathBuf) {
    let dir = build_cluster_dir(tag, 2);
    let shards: Vec<ServerHandle> =
        (0..2).map(|i| start_shard(&dir.join(shard_dir_name(i)))).collect();
    let a0 = shards[0].addr().to_string();
    let a1 = shards[1].addr().to_string();
    let router = Router::builder(&dir)
        .shard_replicas(0, &[&a0])
        .shard_replicas(1, &[&a1])
        .probe_interval(Duration::from_millis(50))
        .bind("127.0.0.1:0")
        .expect("router starts");
    (shards, router, dir)
}

#[test]
fn router_answers_are_byte_identical_to_a_single_node() {
    let (shards, router, _dir) = start_cluster("bits");
    let single = start_single();

    // healthz: the router reports its role and the cluster epoch.
    let (status, body) = get(router.addr(), "/healthz");
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("role").and_then(|r| r.as_str()), Some("router"), "{body}");
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0), "{body}");

    // Cold reads: queries (scatter and single-shard forwards alike) and
    // scan-planned rollups match the single node byte-for-byte.
    for (q, _) in QUERIES {
        let (rs, rb) = post(router.addr(), "/query", q);
        let (ss, sb) = post(single.addr(), "/query", q);
        assert_eq!((rs, &rb), (ss, &sb), "query {q}");
    }
    for r in ROLLUPS {
        let (rs, rb) = post(router.addr(), "/rollup", r);
        let scan = format!("{},\"plan\":\"scan\"}}", &r[..r.len() - 1]);
        let (ss, sb) = post(single.addr(), "/rollup", &scan);
        assert_eq!((rs, &rb), (ss, &sb), "rollup {r}");
    }

    // A cross-shard update through the router: two-phase prepare+commit
    // across both shards, epoch flips to 1 everywhere.
    let upd = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":2,\"measure\":500.0},\
               {\"op\":\"insert\",\"id\":50,\"dims\":[\"NY\",\"F150\"],\"measure\":42.0}]}";
    let (status, body) = post(router.addr(), "/update", upd);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "{body}");
    let (_, hb) = get(router.addr(), "/healthz");
    let v = json::parse(&hb).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "{hb}");
    for s in &shards {
        assert_eq!(s.obs().gauge("serve.epoch").unwrap().get(), 1, "shard published the epoch");
    }

    // Replay the same batch on the single node; answers stay identical.
    let (status, _) = post(single.addr(), "/update", upd);
    assert_eq!(status, 200);
    for (q, _) in QUERIES {
        let (rs, rb) = post(router.addr(), "/query", q);
        let (ss, sb) = post(single.addr(), "/query", q);
        assert_eq!((rs, &rb), (ss, &sb), "post-update query {q}");
    }
    for r in ROLLUPS {
        let (rs, rb) = post(router.addr(), "/rollup", r);
        let scan = format!("{},\"plan\":\"scan\"}}", &r[..r.len() - 1]);
        let (ss, sb) = post(single.addr(), "/rollup", &scan);
        assert_eq!((rs, &rb), (ss, &sb), "post-update rollup {r}");
    }

    // Classical baselines ride the full table every shard holds.
    let classical = "{\"classical\":\"contains\",\"region\":{\"Location\":\"East\"}}";
    let (rs, rb) = post(router.addr(), "/query", classical);
    let (ss, sb) = post(single.addr(), "/query", classical);
    assert_eq!((rs, rb), (ss, sb));

    // Deterministic client errors pass through with the documented shape.
    let (status, body) = post(router.addr(), "/query", "{\"region\":{\"Nope\":\"MA\"}}");
    assert_eq!(status, 400, "{body}");
    assert_error_shape(400, &body, "bad-request");

    single.shutdown();
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn cluster_failures_answer_the_documented_shapes() {
    let (mut shards, router, _dir) = start_cluster("failures");

    // Lose shard 1 entirely. A box confined to shard 0 still answers...
    shards.pop().unwrap().shutdown();
    let ma = "{\"region\":{\"Location\":\"MA\"}}";
    let (status, body) = post(router.addr(), "/query", ma);
    assert_eq!(status, 200, "{body}");

    // ...a scatter needing both shards is a partial failure, never a
    // half-merged 200...
    let (status, body) = post(router.addr(), "/query", "{}");
    assert_eq!(status, 503, "{body}");
    assert_error_shape(503, &body, "scatter_failed");
    let (status, body) = post(router.addr(), "/rollup", ROLLUPS[0]);
    assert_eq!(status, 503, "{body}");
    assert_error_shape(503, &body, "scatter_failed");

    // ...a request that must land on the dead shard reports it
    // unavailable (TX and CA live in shard 1's leaf interval)...
    let west = "{\"region\":{\"Location\":\"West\"}}";
    let (status, body) = post(router.addr(), "/query", west);
    assert_eq!(status, 503, "{body}");
    assert_error_shape(503, &body, "shard_unavailable");

    // ...updates refuse to start when a shard has no live replica...
    let upd = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":2,\"measure\":500.0}]}";
    let (status, body) = post(router.addr(), "/update", upd);
    assert_eq!(status, 503, "{body}");
    assert_error_shape(503, &body, "shard_unavailable");

    // ...and /healthz degrades to 503 once the drain is observed.
    let (_, body) = get(router.addr(), "/healthz");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("role").and_then(|r| r.as_str()), Some("router"));
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("degraded"), "{body}");

    assert!(router.obs().counter("cluster.replica.drained").unwrap().get() >= 1);
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn reads_fail_over_between_replicas() {
    let dir = build_cluster_dir("failover", 2);
    // Shard 0 runs two replicas; shard 1 runs one.
    let r0a = start_shard(&dir.join(shard_dir_name(0)));
    let r0b = start_shard(&dir.join(shard_dir_name(0)));
    let s1 = start_shard(&dir.join(shard_dir_name(1)));
    let (a, b, c) = (r0a.addr().to_string(), r0b.addr().to_string(), s1.addr().to_string());
    let router = Router::builder(&dir)
        .shard_replicas(0, &[&a, &b])
        .shard_replicas(1, &[&c])
        .probe_interval(Duration::from_millis(50))
        .bind("127.0.0.1:0")
        .expect("router starts");

    // The `cached` flag is per-replica state, so compare the payload
    // bits (value, sum, count, epoch), not the whole body.
    let bits = |body: &str| {
        let v = json::parse(body).unwrap();
        let f = |k: &str| v.get(k).and_then(|x| x.as_f64()).expect(k).to_bits();
        (f("value"), f("sum"), f("count"), v.get("epoch").and_then(|e| e.as_u64()).unwrap())
    };
    let ma = "{\"region\":{\"Location\":\"MA\"}}";
    let (_, reference) = post(router.addr(), "/query", ma);
    let reference = bits(&reference);

    // Round-robin actually spreads reads across the group.
    for _ in 0..6 {
        let (status, body) = post(router.addr(), "/query", ma);
        assert_eq!(status, 200);
        assert_eq!(bits(&body), reference, "replicas answer identically");
    }
    let hits_a = r0a.obs().counter("serve.requests").unwrap().get();
    let hits_b = r0b.obs().counter("serve.requests").unwrap().get();
    assert!(hits_a > 0 && hits_b > 0, "round-robin used both replicas ({hits_a}/{hits_b})");

    // Kill one replica: reads keep succeeding with the same bits and the
    // drain shows up in the metrics.
    r0a.shutdown();
    for _ in 0..4 {
        let (status, body) = post(router.addr(), "/query", ma);
        assert_eq!(status, 200, "{body}");
        assert_eq!(bits(&body), reference);
    }
    assert!(router.obs().counter("cluster.replica.drained").unwrap().get() >= 1);
    let (status, _) = get(router.addr(), "/healthz");
    assert_eq!(status, 200, "one live replica per shard keeps the cluster healthy");

    router.shutdown();
    r0b.shutdown();
    s1.shutdown();
}
