//! `iolap-serve` — a concurrent query server over the materialized EDB.
//!
//! The paper's allocation algorithms produce an *Extended Database*: the
//! fact table with imprecise records expanded into weighted `(cell,
//! weight)` entries, over which OLAP aggregates are ordinary weighted
//! sums. This crate wraps that artifact in a long-lived process with the
//! three properties a serving path needs:
//!
//! 1. **Snapshot swapping** — readers aggregate over an immutable
//!    [`EdbSnapshot`] behind an `Arc`; a single coordinator thread applies
//!    `/update` batches through the Section 9 incremental-maintenance
//!    machinery (`iolap_core::MaintainableEdb`) and atomically publishes
//!    the next epoch. Queries never block updates and vice versa.
//! 2. **A sharded result cache with targeted invalidation** — results are
//!    keyed by `(region, aggregate, semantics)`; an update invalidates
//!    only the entries whose region overlaps a bounding box the batch
//!    touched (the same component-locality argument — Theorem 12 — that
//!    makes maintenance itself cheap).
//! 3. **Robustness under load** — a bounded accept queue that sheds with
//!    `503` when saturated, socket timeouts both ways, per-request panic
//!    isolation, and graceful drain on shutdown.
//!
//! The HTTP surface is a deliberate std-only subset (no async runtime,
//! no TLS): `POST /query`, `POST /rollup`, `POST /update`,
//! `GET /healthz`, `GET /metrics` (Prometheus text via `iolap-obs`).
//!
//! ```no_run
//! use iolap_serve::{Server, ServeConfig};
//! use iolap_core::{AllocConfig, PolicySpec};
//! use iolap_model::paper_example;
//!
//! let table = paper_example::table1();
//! let policy = PolicySpec::em_count(0.01);
//! let alloc = AllocConfig::builder().in_memory(256).build();
//! let h = Server::start(table, policy, alloc, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! println!("listening on {}", h.addr());
//! h.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use cache::{CacheKey, CachedResult, ShardedCache};
pub use server::{http_roundtrip, read_response, ServeConfig, ServeError, Server, ServerHandle};
pub use snapshot::EdbSnapshot;
