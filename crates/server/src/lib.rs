//! `iolap-serve` — a concurrent query server over the materialized EDB.
//!
//! The paper's allocation algorithms produce an *Extended Database*: the
//! fact table with imprecise records expanded into weighted `(cell,
//! weight)` entries, over which OLAP aggregates are ordinary weighted
//! sums. This crate wraps that artifact in a long-lived process with the
//! three properties a serving path needs:
//!
//! 1. **Snapshot swapping** — readers aggregate over an immutable
//!    [`EdbSnapshot`] behind an `Arc`; a single coordinator thread applies
//!    `/update` batches through the Section 9 incremental-maintenance
//!    machinery (`iolap_core::MaintainableEdb`) and atomically publishes
//!    the next epoch. Queries never block updates and vice versa.
//! 2. **A sharded result cache with targeted invalidation** — results are
//!    keyed by `(region, aggregate, semantics)`; an update invalidates
//!    only the entries whose region overlaps a bounding box the batch
//!    touched (the same component-locality argument — Theorem 12 — that
//!    makes maintenance itself cheap).
//! 3. **An event-driven core** — one reactor thread owns every socket
//!    behind an epoll/poll readiness loop (vendored syscall shim, no
//!    external crate), so concurrent keep-alive connections are bounded
//!    by `max_connections`, not by the worker count; workers pull
//!    *ready, fully-parsed requests*. Saturation sheds with `503` per
//!    [`ShedPolicy`], sockets carry read/write/idle timeouts, handler
//!    panics cost one `500`, and shutdown drains gracefully.
//!
//! The HTTP surface is a deliberate std-only subset (no async runtime,
//! no TLS): `POST /query`, `POST /rollup`, `POST /update`,
//! `GET /healthz`, `GET /metrics` (Prometheus text via `iolap-obs`).
//! Every error status shares one JSON shape — see [`wire::ServeError`].
//!
//! ```no_run
//! use iolap_serve::{Server, ServeConfig};
//! use iolap_core::{AllocConfig, PolicySpec};
//! use iolap_model::paper_example;
//!
//! let h = Server::builder(paper_example::table1(), PolicySpec::em_count(0.01))
//!     .alloc(AllocConfig::builder().in_memory(256).build())
//!     .config(ServeConfig::builder().workers(2).max_connections(10_000).build())
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! println!("listening on {}", h.addr());
//! h.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod http;
mod reactor;
pub mod server;
pub mod snapshot;
mod sys;
pub mod wire;

pub use cache::{CacheKey, CachedResult, ShardedCache};
pub use engine::{EngineHandle, Handler, Response};
pub use server::{
    http_roundtrip, read_response, ServeConfig, ServeConfigBuilder, ServeError, Server,
    ServerBuilder, ServerHandle, ShedPolicy,
};
pub use snapshot::EdbSnapshot;
pub use sys::raise_nofile_limit;
