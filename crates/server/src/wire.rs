//! The server's JSON wire format — hand-rolled emitters in the style of
//! `iolap_obs::metrics::to_json`, with `iolap_obs::json::parse` as the
//! reader, shared between the request handlers and the bench/CI clients
//! so neither side duplicates the parsing.
//!
//! Every `parse_*` function returns `Err` (never panics) on malformed
//! input; the server maps those to `400 Bad Request`.
//!
//! Floats are emitted with Rust's shortest-round-trip `Display`, so a
//! value parsed back with `str::parse::<f64>` (which the JSON reader
//! uses) is **bit-identical** to the one the server computed — the
//! property `tests/serve_consistency.rs` leans on.

use iolap_obs::json::{self, Json};
use iolap_query::{AggFn, AggResult, Classical, RollupRow};

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value (shortest round-trip; non-finite
/// values — which no well-formed aggregate produces — become `null`).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// The wire name of an aggregate function.
pub fn agg_name(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Sum => "sum",
        AggFn::Count => "count",
        AggFn::Avg => "average",
    }
}

/// Parse an aggregate function name (case-insensitive).
pub fn parse_agg(name: &str) -> Result<AggFn, String> {
    match name.to_ascii_lowercase().as_str() {
        "sum" => Ok(AggFn::Sum),
        "count" => Ok(AggFn::Count),
        "avg" | "average" => Ok(AggFn::Avg),
        other => Err(format!("unknown aggregate {other:?} (want sum|count|average)")),
    }
}

/// Parse a classical-semantics name (case-insensitive).
pub fn parse_classical(name: &str) -> Result<Classical, String> {
    match name.to_ascii_lowercase().as_str() {
        "none" => Ok(Classical::None),
        "contains" => Ok(Classical::Contains),
        "overlaps" => Ok(Classical::Overlaps),
        other => {
            Err(format!("unknown classical semantics {other:?} (want none|contains|overlaps)"))
        }
    }
}

fn classical_name(sem: Classical) -> &'static str {
    match sem {
        Classical::None => "none",
        Classical::Contains => "contains",
        Classical::Overlaps => "overlaps",
    }
}

// ---------------------------------------------------------------------------
// POST /query
// ---------------------------------------------------------------------------

/// A parsed `/query` body.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// `(dimension name, node name)` constraints; unlisted dimensions are
    /// `ALL`.
    pub at: Vec<(String, String)>,
    /// The aggregate (default SUM).
    pub agg: AggFn,
    /// When set, evaluate under a classical baseline semantics on the raw
    /// fact table instead of the allocation-weighted EDB.
    pub classical: Option<Classical>,
}

/// Parse a `/query` body: `{"region": {"Dim": "Node", ...}, "agg":
/// "sum"|"count"|"average", "classical": "none"|"contains"|"overlaps"}`.
/// Every field is optional; the default is SUM over `ALL × … × ALL`.
pub fn parse_query(body: &str) -> Result<QueryRequest, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request body must be a JSON object".into());
    }
    let at = parse_region(&v)?;
    let agg = match v.get("agg") {
        None | Some(Json::Null) => AggFn::Sum,
        Some(a) => parse_agg(a.as_str().ok_or("\"agg\" must be a string")?)?,
    };
    let classical = match v.get("classical") {
        None | Some(Json::Null) => None,
        Some(c) => Some(parse_classical(c.as_str().ok_or("\"classical\" must be a string")?)?),
    };
    Ok(QueryRequest { at, agg, classical })
}

fn parse_region(v: &Json) -> Result<Vec<(String, String)>, String> {
    match v.get("region") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(r) => {
            let members =
                r.as_object().ok_or("\"region\" must be an object of dimension: node pairs")?;
            let mut at = Vec::with_capacity(members.len());
            for (dim, node) in members {
                let node = node
                    .as_str()
                    .ok_or_else(|| format!("region[{dim:?}] must be a node name string"))?;
                at.push((dim.clone(), node.to_string()));
            }
            Ok(at)
        }
    }
}

/// Build a `/query` body (client side: bench bins, tests, examples).
pub fn query_body(at: &[(&str, &str)], agg: AggFn, classical: Option<Classical>) -> String {
    let mut s = String::from("{\"region\":{");
    for (i, (d, n)) in at.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":\"{}\"", escape(d), escape(n)));
    }
    s.push_str(&format!("}},\"agg\":\"{}\"", agg_name(agg)));
    if let Some(sem) = classical {
        s.push_str(&format!(",\"classical\":\"{}\"", classical_name(sem)));
    }
    s.push('}');
    s
}

/// Serialize a `/query` response.
pub fn query_response(r: &AggResult, agg: AggFn, cached: bool, epoch: u64) -> String {
    format!(
        "{{\"value\":{},\"sum\":{},\"count\":{},\"agg\":\"{}\",\"cached\":{},\"epoch\":{}}}",
        fmt_f64(r.value),
        fmt_f64(r.sum),
        fmt_f64(r.count),
        agg_name(agg),
        cached,
        epoch
    )
}

// ---------------------------------------------------------------------------
// POST /rollup
// ---------------------------------------------------------------------------

/// A parsed `/rollup` body.
#[derive(Debug, Clone)]
pub struct RollupRequest {
    /// Dimension to roll up along (by name).
    pub dim: String,
    /// Level name within that dimension (e.g. `"Region"`, or `"ALL"`).
    pub level: String,
    /// Optional dice region, same form as `/query`.
    pub at: Vec<(String, String)>,
    /// The aggregate (default SUM).
    pub agg: AggFn,
}

/// Parse a `/rollup` body: `{"dim": "Location", "level": "Region",
/// "region": {...}, "agg": "sum"}`.
pub fn parse_rollup(body: &str) -> Result<RollupRequest, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request body must be a JSON object".into());
    }
    let dim = v
        .get("dim")
        .and_then(|d| d.as_str())
        .ok_or("\"dim\" (dimension name) is required")?
        .to_string();
    let level = v
        .get("level")
        .and_then(|l| l.as_str())
        .ok_or("\"level\" (level name) is required")?
        .to_string();
    let at = parse_region(&v)?;
    let agg = match v.get("agg") {
        None | Some(Json::Null) => AggFn::Sum,
        Some(a) => parse_agg(a.as_str().ok_or("\"agg\" must be a string")?)?,
    };
    Ok(RollupRequest { dim, level, at, agg })
}

/// Build a `/rollup` body (client side).
pub fn rollup_body(dim: &str, level: &str, at: &[(&str, &str)], agg: AggFn) -> String {
    let mut s =
        format!("{{\"dim\":\"{}\",\"level\":\"{}\",\"region\":{{", escape(dim), escape(level));
    for (i, (d, n)) in at.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":\"{}\"", escape(d), escape(n)));
    }
    s.push_str(&format!("}},\"agg\":\"{}\"}}", agg_name(agg)));
    s
}

/// Serialize a `/rollup` response.
pub fn rollup_response(rows: &[RollupRow], agg: AggFn, epoch: u64) -> String {
    let mut s = String::from("{\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"value\":{},\"sum\":{},\"count\":{}}}",
            escape(&row.name),
            fmt_f64(row.result.value),
            fmt_f64(row.result.sum),
            fmt_f64(row.result.count)
        ));
    }
    s.push_str(&format!("],\"agg\":\"{}\",\"epoch\":{}}}", agg_name(agg), epoch));
    s
}

// ---------------------------------------------------------------------------
// POST /update
// ---------------------------------------------------------------------------

/// One mutation in a `/update` batch, with dimension values still as
/// node *names* (resolved against the schema by the server).
#[derive(Debug, Clone)]
pub enum MutationReq {
    /// `{"op": "update", "fact_id": N, "measure": M}`
    Update {
        /// The fact to update.
        fact_id: u64,
        /// Its new measure.
        measure: f64,
    },
    /// `{"op": "insert", "id": N, "dims": ["MA", "Civic"], "measure": M}`
    Insert {
        /// Id for the new fact (must be unused).
        id: u64,
        /// One node name per dimension, in schema order.
        dims: Vec<String>,
        /// The fact's measure.
        measure: f64,
    },
    /// `{"op": "delete", "fact_id": N}`
    Delete {
        /// The fact to delete.
        fact_id: u64,
    },
}

/// Parse a `/update` body: `{"mutations": [ ... ]}`.
pub fn parse_update(body: &str) -> Result<Vec<MutationReq>, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let muts =
        v.get("mutations").and_then(|m| m.as_array()).ok_or("\"mutations\" must be an array")?;
    if muts.is_empty() {
        return Err("\"mutations\" must not be empty".into());
    }
    let mut out = Vec::with_capacity(muts.len());
    for (i, m) in muts.iter().enumerate() {
        let op = m
            .get("op")
            .and_then(|o| o.as_str())
            .ok_or_else(|| format!("mutation {i}: \"op\" is required"))?;
        let fact_id = |field: &str| -> Result<u64, String> {
            m.get(field)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("mutation {i}: \"{field}\" must be a non-negative integer"))
        };
        let measure = || -> Result<f64, String> {
            m.get("measure")
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("mutation {i}: \"measure\" must be a number"))
        };
        out.push(match op {
            "update" => MutationReq::Update { fact_id: fact_id("fact_id")?, measure: measure()? },
            "insert" => {
                let dims = m
                    .get("dims")
                    .and_then(|d| d.as_array())
                    .ok_or_else(|| format!("mutation {i}: \"dims\" must be an array"))?;
                let mut names = Vec::with_capacity(dims.len());
                for d in dims {
                    names.push(
                        d.as_str()
                            .ok_or_else(|| format!("mutation {i}: dims must be node names"))?
                            .to_string(),
                    );
                }
                MutationReq::Insert { id: fact_id("id")?, dims: names, measure: measure()? }
            }
            "delete" => MutationReq::Delete { fact_id: fact_id("fact_id")? },
            other => {
                return Err(format!(
                    "mutation {i}: unknown op {other:?} (want update|insert|delete)"
                ))
            }
        });
    }
    Ok(out)
}

/// Build a `/update` body (client side).
pub fn update_body(muts: &[MutationReq]) -> String {
    let mut s = String::from("{\"mutations\":[");
    for (i, m) in muts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match m {
            MutationReq::Update { fact_id, measure } => s.push_str(&format!(
                "{{\"op\":\"update\",\"fact_id\":{fact_id},\"measure\":{}}}",
                fmt_f64(*measure)
            )),
            MutationReq::Insert { id, dims, measure } => {
                s.push_str(&format!("{{\"op\":\"insert\",\"id\":{id},\"dims\":["));
                for (j, d) in dims.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\"{}\"", escape(d)));
                }
                s.push_str(&format!("],\"measure\":{}}}", fmt_f64(*measure)));
            }
            MutationReq::Delete { fact_id } => {
                s.push_str(&format!("{{\"op\":\"delete\",\"fact_id\":{fact_id}}}"))
            }
        }
    }
    s.push_str("]}");
    s
}

/// Serialize a `/update` response.
#[allow(clippy::too_many_arguments)]
pub fn update_response(
    epoch: u64,
    invalidated: u64,
    affected_components: u64,
    affected_tuples: u64,
    entries_rewritten: u64,
    merges: u64,
    splits: u64,
) -> String {
    format!(
        "{{\"epoch\":{epoch},\"invalidated\":{invalidated},\
         \"affected_components\":{affected_components},\
         \"affected_tuples\":{affected_tuples},\
         \"entries_rewritten\":{entries_rewritten},\
         \"merges\":{merges},\"splits\":{splits}}}"
    )
}

// ---------------------------------------------------------------------------
// Misc bodies
// ---------------------------------------------------------------------------

/// `GET /healthz` response. `ok = false` means the update coordinator
/// is poisoned: reads still serve, writes are refused.
pub fn health_response(epoch: u64, ok: bool) -> String {
    let status = if ok { "ok" } else { "degraded" };
    format!("{{\"status\":\"{status}\",\"epoch\":{epoch}}}")
}

/// A JSON error envelope.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(msg))
}

// ---------------------------------------------------------------------------
// Unified error type
// ---------------------------------------------------------------------------

/// Every way serving can fail, unified behind one status + JSON-body
/// mapping so 400/404/405/413/431/500/503 share a single wire shape.
///
/// The request-scoped variants ([`to_response`](ServeError::to_response))
/// serialize as:
///
/// ```json
/// {"error": "<human-readable message>", "code": "<kebab-case-code>", "status": <u16>}
/// ```
///
/// The lifecycle variants ([`Io`](ServeError::Io),
/// [`Init`](ServeError::Init)) never reach a socket — they are returned
/// from server construction/startup and carried through `iolap::Error`.
#[derive(Debug)]
pub enum ServeError {
    /// 400 — malformed request line, header, or body.
    BadRequest(String),
    /// 404 — no route matches the request path.
    NotFound(String),
    /// 405 — route exists, method doesn't.
    MethodNotAllowed(String),
    /// 413 — declared `Content-Length` exceeds the configured cap.
    PayloadTooLarge(String),
    /// 431 — header line or header count over the parser limits.
    HeadersTooLarge(String),
    /// 500 — handler panicked or an internal invariant failed.
    Internal(String),
    /// 503 — load shed, shutdown in progress, or coordinator poisoned.
    Unavailable(String),
    /// Lifecycle: socket-level failure during startup (bind/listen).
    Io(std::io::Error),
    /// Lifecycle: the initial allocation or EDB build failed.
    Init(String),
}

impl ServeError {
    /// The HTTP status this error maps to (lifecycle variants report 500,
    /// though they are never written to a socket).
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::PayloadTooLarge(_) => 413,
            ServeError::HeadersTooLarge(_) => 431,
            ServeError::Internal(_) | ServeError::Io(_) | ServeError::Init(_) => 500,
            ServeError::Unavailable(_) => 503,
        }
    }

    /// Stable machine-readable code for the `"code"` field.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::NotFound(_) => "not-found",
            ServeError::MethodNotAllowed(_) => "method-not-allowed",
            ServeError::PayloadTooLarge(_) => "payload-too-large",
            ServeError::HeadersTooLarge(_) => "headers-too-large",
            ServeError::Internal(_) => "internal",
            ServeError::Unavailable(_) => "unavailable",
            ServeError::Io(_) => "io",
            ServeError::Init(_) => "init",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            ServeError::BadRequest(m)
            | ServeError::NotFound(m)
            | ServeError::MethodNotAllowed(m)
            | ServeError::PayloadTooLarge(m)
            | ServeError::HeadersTooLarge(m)
            | ServeError::Internal(m)
            | ServeError::Unavailable(m)
            | ServeError::Init(m) => m.clone(),
            ServeError::Io(e) => e.to_string(),
        }
    }

    /// Map a status produced elsewhere (the HTTP parser's
    /// [`ReadError::Bad`](crate::http::ReadError) carries raw numbers)
    /// into the matching variant. Unknown statuses become
    /// [`Internal`](ServeError::Internal).
    pub fn from_status(status: u16, msg: impl Into<String>) -> ServeError {
        let msg = msg.into();
        match status {
            400 => ServeError::BadRequest(msg),
            404 => ServeError::NotFound(msg),
            405 => ServeError::MethodNotAllowed(msg),
            413 => ServeError::PayloadTooLarge(msg),
            431 => ServeError::HeadersTooLarge(msg),
            503 => ServeError::Unavailable(msg),
            _ => ServeError::Internal(msg),
        }
    }

    /// The one status + JSON body mapping every handler error path goes
    /// through. The `"error"` field stays a plain string for backward
    /// compatibility; `"code"` and `"status"` are machine-readable.
    pub fn to_response(&self) -> (u16, String) {
        let status = self.status();
        let body = format!(
            "{{\"error\":\"{}\",\"code\":\"{}\",\"status\":{}}}",
            escape(&self.message()),
            self.code(),
            status
        );
        (status, body)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Init(m) => write!(f, "serve init error: {m}"),
            other => write!(f, "{} {}: {}", other.status(), other.code(), other.message()),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips() {
        let body = query_body(&[("Location", "MA")], AggFn::Count, Some(Classical::Overlaps));
        let q = parse_query(&body).unwrap();
        assert_eq!(q.at, vec![("Location".to_string(), "MA".to_string())]);
        assert_eq!(q.agg, AggFn::Count);
        assert_eq!(q.classical, Some(Classical::Overlaps));
    }

    #[test]
    fn query_defaults_when_fields_absent() {
        let q = parse_query("{}").unwrap();
        assert!(q.at.is_empty());
        assert_eq!(q.agg, AggFn::Sum);
        assert_eq!(q.classical, None);
    }

    #[test]
    fn malformed_query_bodies_are_rejected_not_panicked() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            "{\"region\": 5}",
            "{\"region\": {\"Location\": 3}}",
            "{\"agg\": \"median\"}",
            "{\"agg\": 1}",
            "{\"classical\": \"sometimes\"}",
            "{\"region\": {\"Location\": \"MA\"",
        ] {
            assert!(parse_query(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rollup_round_trips() {
        let body = rollup_body("Location", "Region", &[("Automobile", "Truck")], AggFn::Sum);
        let r = parse_rollup(&body).unwrap();
        assert_eq!(r.dim, "Location");
        assert_eq!(r.level, "Region");
        assert_eq!(r.at, vec![("Automobile".to_string(), "Truck".to_string())]);
    }

    #[test]
    fn rollup_requires_dim_and_level() {
        assert!(parse_rollup("{}").is_err());
        assert!(parse_rollup("{\"dim\":\"Location\"}").is_err());
        assert!(parse_rollup("{\"dim\":1,\"level\":\"Region\"}").is_err());
    }

    #[test]
    fn update_round_trips_every_op() {
        let muts = vec![
            MutationReq::Update { fact_id: 2, measure: 999.5 },
            MutationReq::Insert { id: 50, dims: vec!["MA".into(), "Civic".into()], measure: 70.0 },
            MutationReq::Delete { fact_id: 11 },
        ];
        let parsed = parse_update(&update_body(&muts)).unwrap();
        assert_eq!(parsed.len(), 3);
        match &parsed[0] {
            MutationReq::Update { fact_id, measure } => {
                assert_eq!(*fact_id, 2);
                assert_eq!(*measure, 999.5);
            }
            other => panic!("{other:?}"),
        }
        match &parsed[1] {
            MutationReq::Insert { id, dims, measure } => {
                assert_eq!(*id, 50);
                assert_eq!(dims, &["MA".to_string(), "Civic".to_string()]);
                assert_eq!(*measure, 70.0);
            }
            other => panic!("{other:?}"),
        }
        match &parsed[2] {
            MutationReq::Delete { fact_id } => assert_eq!(*fact_id, 11),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_update_bodies_are_rejected() {
        for bad in [
            "{}",
            "{\"mutations\": []}",
            "{\"mutations\": [{}]}",
            "{\"mutations\": [{\"op\": \"upsert\"}]}",
            "{\"mutations\": [{\"op\": \"update\", \"fact_id\": -1, \"measure\": 1}]}",
            "{\"mutations\": [{\"op\": \"update\", \"fact_id\": 1}]}",
            "{\"mutations\": [{\"op\": \"insert\", \"id\": 1, \"dims\": [7], \"measure\": 1}]}",
        ] {
            assert!(parse_update(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_formatting_round_trips_bits() {
        for v in [0.0, 1.0 / 3.0, 2.5 / 6.5, f64::MIN_POSITIVE, 1e300, -605.125] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn escape_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let doc = format!("{{\"k\":\"{}\"}}", escape("x\u{1}y"));
        assert!(iolap_obs::json::parse(&doc).is_ok(), "{doc}");
    }

    #[test]
    fn responses_parse_back() {
        let r = AggResult { value: 605.0, sum: 605.0, count: 5.0 };
        let v = iolap_obs::json::parse(&query_response(&r, AggFn::Sum, false, 3)).unwrap();
        assert_eq!(v.get("value").and_then(|x| x.as_f64()), Some(605.0));
        assert_eq!(v.get("cached").and_then(|x| x.as_bool()), Some(false));
        assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(3));
        let v = iolap_obs::json::parse(&update_response(1, 2, 3, 4, 5, 6, 7)).unwrap();
        assert_eq!(v.get("invalidated").and_then(|x| x.as_u64()), Some(2));
        let v = iolap_obs::json::parse(&error_body("boom \"quoted\"")).unwrap();
        assert_eq!(v.get("error").and_then(|x| x.as_str()), Some("boom \"quoted\""));
    }

    #[test]
    fn every_serve_error_variant_emits_the_documented_shape() {
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (ServeError::BadRequest("bad \"body\"".into()), 400, "bad-request"),
            (ServeError::NotFound("no route".into()), 404, "not-found"),
            (ServeError::MethodNotAllowed("POST only".into()), 405, "method-not-allowed"),
            (ServeError::PayloadTooLarge("big".into()), 413, "payload-too-large"),
            (ServeError::HeadersTooLarge("wide".into()), 431, "headers-too-large"),
            (ServeError::Internal("boom".into()), 500, "internal"),
            (ServeError::Unavailable("shed".into()), 503, "unavailable"),
        ];
        for (err, want_status, want_code) in cases {
            let (status, body) = err.to_response();
            assert_eq!(status, want_status, "{err}");
            let v = iolap_obs::json::parse(&body).unwrap_or_else(|e| panic!("{err}: {e}: {body}"));
            assert!(v.get("error").and_then(|x| x.as_str()).is_some(), "{body}");
            assert_eq!(v.get("code").and_then(|x| x.as_str()), Some(want_code), "{body}");
            assert_eq!(
                v.get("status").and_then(|x| x.as_u64()),
                Some(want_status as u64),
                "{body}"
            );
        }
    }

    #[test]
    fn from_status_round_trips_the_parser_codes() {
        for status in [400u16, 404, 405, 413, 431, 503] {
            let e = ServeError::from_status(status, "x");
            assert_eq!(e.status(), status);
        }
        // Unknown statuses collapse to 500, never panic.
        assert_eq!(ServeError::from_status(999, "x").status(), 500);
    }

    #[test]
    fn lifecycle_variants_display_and_chain() {
        let io = ServeError::from(std::io::Error::new(std::io::ErrorKind::AddrInUse, "busy"));
        assert!(io.to_string().contains("busy"), "{io}");
        assert!(std::error::Error::source(&io).is_some());
        let init = ServeError::Init("allocation failed".into());
        assert!(init.to_string().contains("allocation failed"), "{init}");
    }
}
