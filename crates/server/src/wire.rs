//! The server's JSON wire format — hand-rolled emitters in the style of
//! `iolap_obs::metrics::to_json`, with `iolap_obs::json::parse` as the
//! reader, shared between the request handlers and the bench/CI clients
//! so neither side duplicates the parsing.
//!
//! Every `parse_*` function returns `Err` (never panics) on malformed
//! input; the server maps those to `400 Bad Request`.
//!
//! Floats are emitted with Rust's shortest-round-trip `Display`, so a
//! value parsed back with `str::parse::<f64>` (which the JSON reader
//! uses) is **bit-identical** to the one the server computed — the
//! property `tests/serve_consistency.rs` leans on.

use iolap_core::ChunkPart;
use iolap_obs::json::{self, Json};
use iolap_query::{AggFn, AggResult, Classical, RollupParts, RollupRow};

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value (shortest round-trip; non-finite
/// values — which no well-formed aggregate produces — become `null`).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// The wire name of an aggregate function.
pub fn agg_name(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Sum => "sum",
        AggFn::Count => "count",
        AggFn::Avg => "average",
    }
}

/// Parse an aggregate function name (case-insensitive).
pub fn parse_agg(name: &str) -> Result<AggFn, String> {
    match name.to_ascii_lowercase().as_str() {
        "sum" => Ok(AggFn::Sum),
        "count" => Ok(AggFn::Count),
        "avg" | "average" => Ok(AggFn::Avg),
        other => Err(format!("unknown aggregate {other:?} (want sum|count|average)")),
    }
}

/// Parse a classical-semantics name (case-insensitive).
pub fn parse_classical(name: &str) -> Result<Classical, String> {
    match name.to_ascii_lowercase().as_str() {
        "none" => Ok(Classical::None),
        "contains" => Ok(Classical::Contains),
        "overlaps" => Ok(Classical::Overlaps),
        other => {
            Err(format!("unknown classical semantics {other:?} (want none|contains|overlaps)"))
        }
    }
}

fn classical_name(sem: Classical) -> &'static str {
    match sem {
        Classical::None => "none",
        Classical::Contains => "contains",
        Classical::Overlaps => "overlaps",
    }
}

// ---------------------------------------------------------------------------
// POST /query
// ---------------------------------------------------------------------------

/// A parsed `/query` body.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// `(dimension name, node name)` constraints; unlisted dimensions are
    /// `ALL`.
    pub at: Vec<(String, String)>,
    /// An explicit leaf-interval box (`[[lo, hi], …]`, one half-open pair
    /// per dimension); when present it overrides `at`. This is the form
    /// the cluster router sends after clipping a query to a shard.
    pub raw_box: Option<Vec<(u32, u32)>>,
    /// The aggregate (default SUM).
    pub agg: AggFn,
    /// When set, evaluate under a classical baseline semantics on the raw
    /// fact table instead of the allocation-weighted EDB.
    pub classical: Option<Classical>,
    /// Return the canonical `(view, slab)` chunk list instead of a folded
    /// total (the scatter-gather leg of a cluster query).
    pub parts: bool,
}

/// Parse a `/query` body: `{"region": {"Dim": "Node", ...}, "box":
/// [[lo, hi], ...], "agg": "sum"|"count"|"average", "classical":
/// "none"|"contains"|"overlaps", "parts": bool}`. Every field is
/// optional; the default is SUM over `ALL × … × ALL`.
pub fn parse_query(body: &str) -> Result<QueryRequest, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request body must be a JSON object".into());
    }
    let at = parse_region(&v)?;
    let raw_box = parse_box(&v)?;
    let agg = match v.get("agg") {
        None | Some(Json::Null) => AggFn::Sum,
        Some(a) => parse_agg(a.as_str().ok_or("\"agg\" must be a string")?)?,
    };
    let classical = match v.get("classical") {
        None | Some(Json::Null) => None,
        Some(c) => Some(parse_classical(c.as_str().ok_or("\"classical\" must be a string")?)?),
    };
    Ok(QueryRequest { at, raw_box, agg, classical, parts: parse_parts_flag(&v)? })
}

/// Parse the optional `"box": [[lo, hi], ...]` field.
fn parse_box(v: &Json) -> Result<Option<Vec<(u32, u32)>>, String> {
    match v.get("box") {
        None | Some(Json::Null) => Ok(None),
        Some(b) => {
            let arr = b.as_array().ok_or("\"box\" must be an array of [lo, hi] pairs")?;
            let mut out = Vec::with_capacity(arr.len());
            for (d, pair) in arr.iter().enumerate() {
                let p = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("box[{d}] must be a [lo, hi] pair"))?;
                let coord = |x: &Json, side: &str| {
                    x.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| format!("box[{d}] {side} must be a u32"))
                };
                out.push((coord(&p[0], "lo")?, coord(&p[1], "hi")?));
            }
            Ok(Some(out))
        }
    }
}

fn parse_parts_flag(v: &Json) -> Result<bool, String> {
    match v.get("parts") {
        None | Some(Json::Null) => Ok(false),
        Some(p) => p.as_bool().ok_or_else(|| "\"parts\" must be a boolean".into()),
    }
}

/// Serialize a box as `[[lo, hi], ...]`.
pub fn box_json(b: &[(u32, u32)]) -> String {
    let pairs: Vec<String> = b.iter().map(|(l, h)| format!("[{l},{h}]")).collect();
    format!("[{}]", pairs.join(","))
}

fn parse_region(v: &Json) -> Result<Vec<(String, String)>, String> {
    match v.get("region") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(r) => {
            let members =
                r.as_object().ok_or("\"region\" must be an object of dimension: node pairs")?;
            let mut at = Vec::with_capacity(members.len());
            for (dim, node) in members {
                let node = node
                    .as_str()
                    .ok_or_else(|| format!("region[{dim:?}] must be a node name string"))?;
                at.push((dim.clone(), node.to_string()));
            }
            Ok(at)
        }
    }
}

/// Build a `/query` body (client side: bench bins, tests, examples).
pub fn query_body(at: &[(&str, &str)], agg: AggFn, classical: Option<Classical>) -> String {
    let mut s = String::from("{\"region\":{");
    for (i, (d, n)) in at.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":\"{}\"", escape(d), escape(n)));
    }
    s.push_str(&format!("}},\"agg\":\"{}\"", agg_name(agg)));
    if let Some(sem) = classical {
        s.push_str(&format!(",\"classical\":\"{}\"", classical_name(sem)));
    }
    s.push('}');
    s
}

/// Serialize a `/query` response.
pub fn query_response(r: &AggResult, agg: AggFn, cached: bool, epoch: u64) -> String {
    format!(
        "{{\"value\":{},\"sum\":{},\"count\":{},\"agg\":\"{}\",\"cached\":{},\"epoch\":{}}}",
        fmt_f64(r.value),
        fmt_f64(r.sum),
        fmt_f64(r.count),
        agg_name(agg),
        cached,
        epoch
    )
}

/// Build the scatter-gather `/query` body the router sends to one shard:
/// an explicit clipped box, `"parts": true`.
pub fn query_parts_body(b: &[(u32, u32)], agg: AggFn) -> String {
    format!("{{\"box\":{},\"agg\":\"{}\",\"parts\":true}}", box_json(b), agg_name(agg))
}

fn parts_json(parts: &[ChunkPart]) -> String {
    let items: Vec<String> = parts
        .iter()
        .map(|p| format!("[{},{},{},{}]", p.view, p.slab, fmt_f64(p.sum), fmt_f64(p.count)))
        .collect();
    format!("[{}]", items.join(","))
}

fn parts_from_json(v: &Json) -> Result<Vec<ChunkPart>, String> {
    let arr = v.as_array().ok_or("\"parts\" must be an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, item) in arr.iter().enumerate() {
        let p = item
            .as_array()
            .filter(|p| p.len() == 4)
            .ok_or_else(|| format!("parts[{i}] must be [view, slab, sum, count]"))?;
        let idx = |x: &Json, f: &str| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("parts[{i}] {f} must be a u32"))
        };
        let num = |x: &Json, f: &str| {
            x.as_f64().ok_or_else(|| format!("parts[{i}] {f} must be a number"))
        };
        out.push(ChunkPart {
            view: idx(&p[0], "view")?,
            slab: idx(&p[1], "slab")?,
            sum: num(&p[2], "sum")?,
            count: num(&p[3], "count")?,
        });
    }
    Ok(out)
}

/// Serialize a `/query` response with `"parts": true`: the chunk list,
/// each chunk as `[view, slab, sum, count]` with shortest-round-trip
/// floats so the router's re-parse is bit-identical.
pub fn parts_response(parts: &[ChunkPart], agg: AggFn, epoch: u64) -> String {
    format!("{{\"parts\":{},\"agg\":\"{}\",\"epoch\":{}}}", parts_json(parts), agg_name(agg), epoch)
}

/// Parse a [`parts_response`] body back into `(chunks, epoch)`.
pub fn parse_parts_response(body: &str) -> Result<(Vec<ChunkPart>, u64), String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let parts = parts_from_json(v.get("parts").ok_or("missing \"parts\"")?)?;
    let epoch = v.get("epoch").and_then(Json::as_u64).ok_or("missing \"epoch\"")?;
    Ok((parts, epoch))
}

// ---------------------------------------------------------------------------
// POST /rollup
// ---------------------------------------------------------------------------

/// Which execution plan a `/rollup` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollupPlan {
    /// The default: answer grain-aligned cores from materialized cuboids.
    Lattice,
    /// The chunked leaf scan — the cluster-mergeable canonical plan (a
    /// router merge over shard parts is bit-identical to this plan on a
    /// single node).
    Scan,
}

/// A parsed `/rollup` body.
#[derive(Debug, Clone)]
pub struct RollupRequest {
    /// Dimension to roll up along (by name).
    pub dim: String,
    /// Level name within that dimension (e.g. `"Region"`, or `"ALL"`).
    pub level: String,
    /// Optional dice region, same form as `/query`.
    pub at: Vec<(String, String)>,
    /// Explicit leaf-interval box, overriding `at` (router-clipped form).
    pub raw_box: Option<Vec<(u32, u32)>>,
    /// The aggregate (default SUM).
    pub agg: AggFn,
    /// The execution plan (default [`RollupPlan::Lattice`]).
    pub plan: RollupPlan,
    /// Return per-row chunk lists instead of folded totals.
    pub parts: bool,
}

/// Parse a `/rollup` body: `{"dim": "Location", "level": "Region",
/// "region": {...}, "box": [[lo, hi], ...], "agg": "sum", "plan":
/// "lattice"|"scan", "parts": bool}`.
pub fn parse_rollup(body: &str) -> Result<RollupRequest, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request body must be a JSON object".into());
    }
    let dim = v
        .get("dim")
        .and_then(|d| d.as_str())
        .ok_or("\"dim\" (dimension name) is required")?
        .to_string();
    let level = v
        .get("level")
        .and_then(|l| l.as_str())
        .ok_or("\"level\" (level name) is required")?
        .to_string();
    let at = parse_region(&v)?;
    let raw_box = parse_box(&v)?;
    let agg = match v.get("agg") {
        None | Some(Json::Null) => AggFn::Sum,
        Some(a) => parse_agg(a.as_str().ok_or("\"agg\" must be a string")?)?,
    };
    let plan = match v.get("plan") {
        None | Some(Json::Null) => RollupPlan::Lattice,
        Some(p) => match p.as_str().ok_or("\"plan\" must be a string")? {
            "lattice" => RollupPlan::Lattice,
            "scan" => RollupPlan::Scan,
            other => return Err(format!("unknown plan {other:?} (want lattice|scan)")),
        },
    };
    Ok(RollupRequest { dim, level, at, raw_box, agg, plan, parts: parse_parts_flag(&v)? })
}

/// Build a `/rollup` body (client side).
pub fn rollup_body(dim: &str, level: &str, at: &[(&str, &str)], agg: AggFn) -> String {
    let mut s =
        format!("{{\"dim\":\"{}\",\"level\":\"{}\",\"region\":{{", escape(dim), escape(level));
    for (i, (d, n)) in at.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":\"{}\"", escape(d), escape(n)));
    }
    s.push_str(&format!("}},\"agg\":\"{}\"}}", agg_name(agg)));
    s
}

/// Serialize a `/rollup` response.
pub fn rollup_response(rows: &[RollupRow], agg: AggFn, epoch: u64) -> String {
    let mut s = String::from("{\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"value\":{},\"sum\":{},\"count\":{}}}",
            escape(&row.name),
            fmt_f64(row.result.value),
            fmt_f64(row.result.sum),
            fmt_f64(row.result.count)
        ));
    }
    s.push_str(&format!("],\"agg\":\"{}\",\"epoch\":{}}}", agg_name(agg), epoch));
    s
}

/// Build the scatter-gather `/rollup` body the router sends to one shard:
/// clipped box, scan plan, per-row chunk lists.
pub fn rollup_parts_body(dim: &str, level: &str, b: &[(u32, u32)], agg: AggFn) -> String {
    format!(
        "{{\"dim\":\"{}\",\"level\":\"{}\",\"box\":{},\"agg\":\"{}\",\"plan\":\"scan\",\"parts\":true}}",
        escape(dim),
        escape(level),
        box_json(b),
        agg_name(agg)
    )
}

/// Serialize a `/rollup` response with `"parts": true`: one row per node
/// at the level, each with its canonical chunk list.
pub fn rollup_parts_response(rows: &[RollupParts], agg: AggFn, epoch: u64) -> String {
    let mut s = String::from("{\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"node\":{},\"name\":\"{}\",\"parts\":{}}}",
            row.node.0,
            escape(&row.name),
            parts_json(&row.parts)
        ));
    }
    s.push_str(&format!("],\"agg\":\"{}\",\"epoch\":{}}}", agg_name(agg), epoch));
    s
}

/// Parse a [`rollup_parts_response`] body back into `(rows, epoch)`.
pub fn parse_rollup_parts_response(body: &str) -> Result<(Vec<RollupParts>, u64), String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let arr = v.get("rows").and_then(Json::as_array).ok_or("missing \"rows\"")?;
    let mut rows = Vec::with_capacity(arr.len());
    for (i, row) in arr.iter().enumerate() {
        let node = row
            .get("node")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("rows[{i}] missing node"))?;
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("rows[{i}] missing name"))?
            .to_string();
        let parts =
            parts_from_json(row.get("parts").ok_or_else(|| format!("rows[{i}] missing parts"))?)?;
        rows.push(RollupParts { node: iolap_hierarchy::NodeId(node), name, parts });
    }
    let epoch = v.get("epoch").and_then(Json::as_u64).ok_or("missing \"epoch\"")?;
    Ok((rows, epoch))
}

// ---------------------------------------------------------------------------
// POST /update
// ---------------------------------------------------------------------------

/// One mutation in a `/update` batch, with dimension values still as
/// node *names* (resolved against the schema by the server).
#[derive(Debug, Clone)]
pub enum MutationReq {
    /// `{"op": "update", "fact_id": N, "measure": M}`
    Update {
        /// The fact to update.
        fact_id: u64,
        /// Its new measure.
        measure: f64,
    },
    /// `{"op": "insert", "id": N, "dims": ["MA", "Civic"], "measure": M}`
    Insert {
        /// Id for the new fact (must be unused).
        id: u64,
        /// One node name per dimension, in schema order.
        dims: Vec<String>,
        /// The fact's measure.
        measure: f64,
    },
    /// `{"op": "delete", "fact_id": N}`
    Delete {
        /// The fact to delete.
        fact_id: u64,
    },
}

/// A parsed `/update` body.
#[derive(Debug, Clone)]
pub struct UpdateRequest {
    /// The mutation batch.
    pub muts: Vec<MutationReq>,
    /// Apply but do not publish: stage the new epoch until `POST /epoch`
    /// commits it (phase one of the cluster's two-phase publish).
    pub prepare: bool,
}

/// Parse a `/update` body: `{"mutations": [ ... ], "prepare": bool}`.
pub fn parse_update(body: &str) -> Result<UpdateRequest, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let prepare = match v.get("prepare") {
        None | Some(Json::Null) => false,
        Some(p) => p.as_bool().ok_or("\"prepare\" must be a boolean")?,
    };
    let muts =
        v.get("mutations").and_then(|m| m.as_array()).ok_or("\"mutations\" must be an array")?;
    if muts.is_empty() {
        return Err("\"mutations\" must not be empty".into());
    }
    let mut out = Vec::with_capacity(muts.len());
    for (i, m) in muts.iter().enumerate() {
        let op = m
            .get("op")
            .and_then(|o| o.as_str())
            .ok_or_else(|| format!("mutation {i}: \"op\" is required"))?;
        let fact_id = |field: &str| -> Result<u64, String> {
            m.get(field)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("mutation {i}: \"{field}\" must be a non-negative integer"))
        };
        let measure = || -> Result<f64, String> {
            m.get("measure")
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("mutation {i}: \"measure\" must be a number"))
        };
        out.push(match op {
            "update" => MutationReq::Update { fact_id: fact_id("fact_id")?, measure: measure()? },
            "insert" => {
                let dims = m
                    .get("dims")
                    .and_then(|d| d.as_array())
                    .ok_or_else(|| format!("mutation {i}: \"dims\" must be an array"))?;
                let mut names = Vec::with_capacity(dims.len());
                for d in dims {
                    names.push(
                        d.as_str()
                            .ok_or_else(|| format!("mutation {i}: dims must be node names"))?
                            .to_string(),
                    );
                }
                MutationReq::Insert { id: fact_id("id")?, dims: names, measure: measure()? }
            }
            "delete" => MutationReq::Delete { fact_id: fact_id("fact_id")? },
            other => {
                return Err(format!(
                    "mutation {i}: unknown op {other:?} (want update|insert|delete)"
                ))
            }
        });
    }
    Ok(UpdateRequest { muts: out, prepare })
}

/// Build a `/update` body (client side).
pub fn update_body(muts: &[MutationReq]) -> String {
    update_body_opts(muts, false)
}

/// [`update_body`] with an explicit `"prepare"` flag (router phase one).
pub fn update_body_opts(muts: &[MutationReq], prepare: bool) -> String {
    let mut s = if prepare {
        String::from("{\"prepare\":true,\"mutations\":[")
    } else {
        String::from("{\"mutations\":[")
    };
    for (i, m) in muts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match m {
            MutationReq::Update { fact_id, measure } => s.push_str(&format!(
                "{{\"op\":\"update\",\"fact_id\":{fact_id},\"measure\":{}}}",
                fmt_f64(*measure)
            )),
            MutationReq::Insert { id, dims, measure } => {
                s.push_str(&format!("{{\"op\":\"insert\",\"id\":{id},\"dims\":["));
                for (j, d) in dims.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\"{}\"", escape(d)));
                }
                s.push_str(&format!("],\"measure\":{}}}", fmt_f64(*measure)));
            }
            MutationReq::Delete { fact_id } => {
                s.push_str(&format!("{{\"op\":\"delete\",\"fact_id\":{fact_id}}}"))
            }
        }
    }
    s.push_str("]}");
    s
}

/// Serialize a `/update` response.
#[allow(clippy::too_many_arguments)]
pub fn update_response(
    epoch: u64,
    invalidated: u64,
    affected_components: u64,
    affected_tuples: u64,
    entries_rewritten: u64,
    merges: u64,
    splits: u64,
) -> String {
    format!(
        "{{\"epoch\":{epoch},\"invalidated\":{invalidated},\
         \"affected_components\":{affected_components},\
         \"affected_tuples\":{affected_tuples},\
         \"entries_rewritten\":{entries_rewritten},\
         \"merges\":{merges},\"splits\":{splits}}}"
    )
}

// ---------------------------------------------------------------------------
// POST /epoch
// ---------------------------------------------------------------------------

/// Build a `POST /epoch` body committing a prepared epoch.
pub fn commit_body(epoch: u64) -> String {
    format!("{{\"commit\":{epoch}}}")
}

/// Parse a `POST /epoch` body: `{"commit": N}`.
pub fn parse_commit(body: &str) -> Result<u64, String> {
    let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    v.get("commit").and_then(Json::as_u64).ok_or_else(|| "\"commit\" must be an epoch".into())
}

/// Serialize a `POST /epoch` response.
pub fn commit_response(epoch: u64, invalidated: u64) -> String {
    format!("{{\"epoch\":{epoch},\"invalidated\":{invalidated}}}")
}

// ---------------------------------------------------------------------------
// Misc bodies
// ---------------------------------------------------------------------------

/// `GET /healthz` response. `ok = false` means the update coordinator
/// is poisoned: reads still serve, writes are refused. `role` names the
/// process's place in the topology: `"single"`, `"shard"`, or
/// `"router"`. `wal_backlog` is the number of WAL frames acknowledged
/// durable but not yet folded into a delta segment (always 0 without a
/// WAL or in synchronous group-commit mode).
pub fn health_response(epoch: u64, ok: bool, role: &str, wal_backlog: u64) -> String {
    let status = if ok { "ok" } else { "degraded" };
    format!(
        "{{\"status\":\"{status}\",\"epoch\":{epoch},\"role\":\"{}\",\"wal_backlog\":{wal_backlog}}}",
        escape(role)
    )
}

/// Serialize a `/update` response acknowledged at WAL-durable: the batch
/// is fsynced in the log (`wal_batch` is its id) but not yet folded into
/// the EDB — `staged` frames are waiting on the group-commit trigger,
/// and `epoch` is the epoch readers currently see.
pub fn staged_response(wal_batch: u64, staged: u64, epoch: u64) -> String {
    format!("{{\"durable\":true,\"wal_batch\":{wal_batch},\"staged\":{staged},\"epoch\":{epoch}}}")
}

/// A JSON error envelope.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(msg))
}

// ---------------------------------------------------------------------------
// Unified error type
// ---------------------------------------------------------------------------

/// Every way serving can fail, unified behind one status + JSON-body
/// mapping so 400/404/405/413/431/500/503 share a single wire shape.
///
/// The request-scoped variants ([`to_response`](ServeError::to_response))
/// serialize as:
///
/// ```json
/// {"error": "<human-readable message>", "code": "<kebab-case-code>", "status": <u16>}
/// ```
///
/// The lifecycle variants ([`Io`](ServeError::Io),
/// [`Init`](ServeError::Init)) never reach a socket — they are returned
/// from server construction/startup and carried through `iolap::Error`.
#[derive(Debug)]
pub enum ServeError {
    /// 400 — malformed request line, header, or body.
    BadRequest(String),
    /// 404 — no route matches the request path.
    NotFound(String),
    /// 405 — route exists, method doesn't.
    MethodNotAllowed(String),
    /// 413 — declared `Content-Length` exceeds the configured cap.
    PayloadTooLarge(String),
    /// 431 — header line or header count over the parser limits.
    HeadersTooLarge(String),
    /// 409 — a prepared epoch is pending (or missing) on this node, so
    /// the requested update/commit cannot proceed.
    Conflict(String),
    /// 500 — handler panicked or an internal invariant failed.
    Internal(String),
    /// 503 — load shed, shutdown in progress, or coordinator poisoned.
    Unavailable(String),
    /// 503 — (router) every replica of a shard the request needs is
    /// drained or unreachable.
    ShardUnavailable(String),
    /// 503 — (router) a scatter leg failed after retries; no partial
    /// merge is ever returned.
    ScatterFailed(String),
    /// Lifecycle: socket-level failure during startup (bind/listen).
    Io(std::io::Error),
    /// Lifecycle: the initial allocation or EDB build failed.
    Init(String),
}

impl ServeError {
    /// The HTTP status this error maps to (lifecycle variants report 500,
    /// though they are never written to a socket).
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::NotFound(_) => 404,
            ServeError::MethodNotAllowed(_) => 405,
            ServeError::PayloadTooLarge(_) => 413,
            ServeError::HeadersTooLarge(_) => 431,
            ServeError::Conflict(_) => 409,
            ServeError::Internal(_) | ServeError::Io(_) | ServeError::Init(_) => 500,
            ServeError::Unavailable(_)
            | ServeError::ShardUnavailable(_)
            | ServeError::ScatterFailed(_) => 503,
        }
    }

    /// Stable machine-readable code for the `"code"` field.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad-request",
            ServeError::NotFound(_) => "not-found",
            ServeError::MethodNotAllowed(_) => "method-not-allowed",
            ServeError::PayloadTooLarge(_) => "payload-too-large",
            ServeError::HeadersTooLarge(_) => "headers-too-large",
            ServeError::Conflict(_) => "conflict",
            ServeError::Internal(_) => "internal",
            ServeError::Unavailable(_) => "unavailable",
            ServeError::ShardUnavailable(_) => "shard_unavailable",
            ServeError::ScatterFailed(_) => "scatter_failed",
            ServeError::Io(_) => "io",
            ServeError::Init(_) => "init",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            ServeError::BadRequest(m)
            | ServeError::NotFound(m)
            | ServeError::MethodNotAllowed(m)
            | ServeError::PayloadTooLarge(m)
            | ServeError::HeadersTooLarge(m)
            | ServeError::Conflict(m)
            | ServeError::Internal(m)
            | ServeError::Unavailable(m)
            | ServeError::ShardUnavailable(m)
            | ServeError::ScatterFailed(m)
            | ServeError::Init(m) => m.clone(),
            ServeError::Io(e) => e.to_string(),
        }
    }

    /// Map a status produced elsewhere (the HTTP parser's
    /// [`ReadError::Bad`](crate::http::ReadError) carries raw numbers)
    /// into the matching variant. Unknown statuses become
    /// [`Internal`](ServeError::Internal).
    pub fn from_status(status: u16, msg: impl Into<String>) -> ServeError {
        let msg = msg.into();
        match status {
            400 => ServeError::BadRequest(msg),
            404 => ServeError::NotFound(msg),
            405 => ServeError::MethodNotAllowed(msg),
            409 => ServeError::Conflict(msg),
            413 => ServeError::PayloadTooLarge(msg),
            431 => ServeError::HeadersTooLarge(msg),
            503 => ServeError::Unavailable(msg),
            _ => ServeError::Internal(msg),
        }
    }

    /// The one status + JSON body mapping every handler error path goes
    /// through. The `"error"` field stays a plain string for backward
    /// compatibility; `"code"` and `"status"` are machine-readable.
    pub fn to_response(&self) -> (u16, String) {
        let status = self.status();
        let body = format!(
            "{{\"error\":\"{}\",\"code\":\"{}\",\"status\":{}}}",
            escape(&self.message()),
            self.code(),
            status
        );
        (status, body)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Init(m) => write!(f, "serve init error: {m}"),
            other => write!(f, "{} {}: {}", other.status(), other.code(), other.message()),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips() {
        let body = query_body(&[("Location", "MA")], AggFn::Count, Some(Classical::Overlaps));
        let q = parse_query(&body).unwrap();
        assert_eq!(q.at, vec![("Location".to_string(), "MA".to_string())]);
        assert_eq!(q.agg, AggFn::Count);
        assert_eq!(q.classical, Some(Classical::Overlaps));
    }

    #[test]
    fn query_defaults_when_fields_absent() {
        let q = parse_query("{}").unwrap();
        assert!(q.at.is_empty());
        assert_eq!(q.agg, AggFn::Sum);
        assert_eq!(q.classical, None);
    }

    #[test]
    fn malformed_query_bodies_are_rejected_not_panicked() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            "{\"region\": 5}",
            "{\"region\": {\"Location\": 3}}",
            "{\"agg\": \"median\"}",
            "{\"agg\": 1}",
            "{\"classical\": \"sometimes\"}",
            "{\"region\": {\"Location\": \"MA\"",
        ] {
            assert!(parse_query(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rollup_round_trips() {
        let body = rollup_body("Location", "Region", &[("Automobile", "Truck")], AggFn::Sum);
        let r = parse_rollup(&body).unwrap();
        assert_eq!(r.dim, "Location");
        assert_eq!(r.level, "Region");
        assert_eq!(r.at, vec![("Automobile".to_string(), "Truck".to_string())]);
    }

    #[test]
    fn rollup_requires_dim_and_level() {
        assert!(parse_rollup("{}").is_err());
        assert!(parse_rollup("{\"dim\":\"Location\"}").is_err());
        assert!(parse_rollup("{\"dim\":1,\"level\":\"Region\"}").is_err());
    }

    #[test]
    fn update_round_trips_every_op() {
        let muts = vec![
            MutationReq::Update { fact_id: 2, measure: 999.5 },
            MutationReq::Insert { id: 50, dims: vec!["MA".into(), "Civic".into()], measure: 70.0 },
            MutationReq::Delete { fact_id: 11 },
        ];
        let parsed = parse_update(&update_body(&muts)).unwrap();
        assert!(!parsed.prepare);
        let prepared = parse_update(&update_body_opts(&muts, true)).unwrap();
        assert!(prepared.prepare);
        let parsed = parsed.muts;
        assert_eq!(parsed.len(), 3);
        match &parsed[0] {
            MutationReq::Update { fact_id, measure } => {
                assert_eq!(*fact_id, 2);
                assert_eq!(*measure, 999.5);
            }
            other => panic!("{other:?}"),
        }
        match &parsed[1] {
            MutationReq::Insert { id, dims, measure } => {
                assert_eq!(*id, 50);
                assert_eq!(dims, &["MA".to_string(), "Civic".to_string()]);
                assert_eq!(*measure, 70.0);
            }
            other => panic!("{other:?}"),
        }
        match &parsed[2] {
            MutationReq::Delete { fact_id } => assert_eq!(*fact_id, 11),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_update_bodies_are_rejected() {
        for bad in [
            "{}",
            "{\"mutations\": []}",
            "{\"mutations\": [{}]}",
            "{\"mutations\": [{\"op\": \"upsert\"}]}",
            "{\"mutations\": [{\"op\": \"update\", \"fact_id\": -1, \"measure\": 1}]}",
            "{\"mutations\": [{\"op\": \"update\", \"fact_id\": 1}]}",
            "{\"mutations\": [{\"op\": \"insert\", \"id\": 1, \"dims\": [7], \"measure\": 1}]}",
        ] {
            assert!(parse_update(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_formatting_round_trips_bits() {
        for v in [0.0, 1.0 / 3.0, 2.5 / 6.5, f64::MIN_POSITIVE, 1e300, -605.125] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn escape_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let doc = format!("{{\"k\":\"{}\"}}", escape("x\u{1}y"));
        assert!(iolap_obs::json::parse(&doc).is_ok(), "{doc}");
    }

    #[test]
    fn responses_parse_back() {
        let r = AggResult { value: 605.0, sum: 605.0, count: 5.0 };
        let v = iolap_obs::json::parse(&query_response(&r, AggFn::Sum, false, 3)).unwrap();
        assert_eq!(v.get("value").and_then(|x| x.as_f64()), Some(605.0));
        assert_eq!(v.get("cached").and_then(|x| x.as_bool()), Some(false));
        assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(3));
        let v = iolap_obs::json::parse(&update_response(1, 2, 3, 4, 5, 6, 7)).unwrap();
        assert_eq!(v.get("invalidated").and_then(|x| x.as_u64()), Some(2));
        let v = iolap_obs::json::parse(&error_body("boom \"quoted\"")).unwrap();
        assert_eq!(v.get("error").and_then(|x| x.as_str()), Some("boom \"quoted\""));
    }

    #[test]
    fn every_serve_error_variant_emits_the_documented_shape() {
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (ServeError::BadRequest("bad \"body\"".into()), 400, "bad-request"),
            (ServeError::NotFound("no route".into()), 404, "not-found"),
            (ServeError::MethodNotAllowed("POST only".into()), 405, "method-not-allowed"),
            (ServeError::Conflict("staged".into()), 409, "conflict"),
            (ServeError::PayloadTooLarge("big".into()), 413, "payload-too-large"),
            (ServeError::HeadersTooLarge("wide".into()), 431, "headers-too-large"),
            (ServeError::Internal("boom".into()), 500, "internal"),
            (ServeError::Unavailable("shed".into()), 503, "unavailable"),
            (ServeError::ShardUnavailable("all replicas down".into()), 503, "shard_unavailable"),
            (ServeError::ScatterFailed("leg failed".into()), 503, "scatter_failed"),
        ];
        for (err, want_status, want_code) in cases {
            let (status, body) = err.to_response();
            assert_eq!(status, want_status, "{err}");
            let v = iolap_obs::json::parse(&body).unwrap_or_else(|e| panic!("{err}: {e}: {body}"));
            assert!(v.get("error").and_then(|x| x.as_str()).is_some(), "{body}");
            assert_eq!(v.get("code").and_then(|x| x.as_str()), Some(want_code), "{body}");
            assert_eq!(
                v.get("status").and_then(|x| x.as_u64()),
                Some(want_status as u64),
                "{body}"
            );
        }
    }

    #[test]
    fn from_status_round_trips_the_parser_codes() {
        for status in [400u16, 404, 405, 409, 413, 431, 503] {
            let e = ServeError::from_status(status, "x");
            assert_eq!(e.status(), status);
        }
        // Unknown statuses collapse to 500, never panic.
        assert_eq!(ServeError::from_status(999, "x").status(), 500);
    }

    #[test]
    fn parts_round_trip_is_bit_exact() {
        let parts = vec![
            ChunkPart { view: 0, slab: 3, sum: 1.0 / 3.0, count: 2.5 },
            ChunkPart { view: 2, slab: 7, sum: -605.125, count: 0.1 + 0.2 },
        ];
        let (back, epoch) = parse_parts_response(&parts_response(&parts, AggFn::Sum, 9)).unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(back.len(), parts.len());
        for (a, b) in back.iter().zip(&parts) {
            assert_eq!((a.view, a.slab), (b.view, b.slab));
            assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            assert_eq!(a.count.to_bits(), b.count.to_bits());
        }
        // Rollup rows carry the same chunk encoding.
        let rows = vec![RollupParts {
            node: iolap_hierarchy::NodeId(4),
            name: "East".into(),
            parts: parts.clone(),
        }];
        let (back, epoch) =
            parse_rollup_parts_response(&rollup_parts_response(&rows, AggFn::Avg, 2)).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(back[0].node.0, 4);
        assert_eq!(back[0].name, "East");
        assert_eq!(back[0].parts[1].sum.to_bits(), parts[1].sum.to_bits());
    }

    #[test]
    fn box_and_plan_and_flags_parse() {
        let q = parse_query(&query_parts_body(&[(0, 4), (2, 7)], AggFn::Count)).unwrap();
        assert_eq!(q.raw_box.as_deref(), Some(&[(0, 4), (2, 7)][..]));
        assert!(q.parts);
        assert_eq!(q.agg, AggFn::Count);
        let r =
            parse_rollup(&rollup_parts_body("Location", "State", &[(0, 4)], AggFn::Sum)).unwrap();
        assert_eq!(r.plan, RollupPlan::Scan);
        assert!(r.parts);
        assert_eq!(r.raw_box.as_deref(), Some(&[(0, 4)][..]));
        // Defaults and rejects.
        let r = parse_rollup("{\"dim\":\"d\",\"level\":\"l\"}").unwrap();
        assert_eq!(r.plan, RollupPlan::Lattice);
        assert!(!r.parts);
        assert!(parse_rollup("{\"dim\":\"d\",\"level\":\"l\",\"plan\":\"magic\"}").is_err());
        assert!(parse_query("{\"box\":[[1]]}").is_err());
        assert!(parse_query("{\"parts\":\"yes\"}").is_err());
        // Commit bodies round-trip.
        assert_eq!(parse_commit(&commit_body(7)).unwrap(), 7);
        assert!(parse_commit("{}").is_err());
        let v = iolap_obs::json::parse(&commit_response(7, 3)).unwrap();
        assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(7));
    }

    #[test]
    fn health_response_reports_role() {
        let v = iolap_obs::json::parse(&health_response(5, true, "router", 12)).unwrap();
        assert_eq!(v.get("role").and_then(|x| x.as_str()), Some("router"));
        assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(v.get("status").and_then(|x| x.as_str()), Some("ok"));
        assert_eq!(v.get("wal_backlog").and_then(|x| x.as_u64()), Some(12));
    }

    #[test]
    fn staged_response_reports_durability() {
        let v = iolap_obs::json::parse(&staged_response(3, 7, 2)).unwrap();
        assert_eq!(v.get("durable").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(v.get("wal_batch").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("staged").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("epoch").and_then(|x| x.as_u64()), Some(2));
    }

    #[test]
    fn lifecycle_variants_display_and_chain() {
        let io = ServeError::from(std::io::Error::new(std::io::ErrorKind::AddrInUse, "busy"));
        assert!(io.to_string().contains("busy"), "{io}");
        assert!(std::error::Error::source(&io).is_some());
        let init = ServeError::Init("allocation failed".into());
        assert!(init.to_string().contains("allocation failed"), "{init}");
    }
}
