//! Vendored readiness and resource syscall shims.
//!
//! The workspace's no-external-deps discipline extends to the event loop:
//! instead of pulling in `libc`/`mio`, this module declares the handful
//! of C symbols the reactor needs (`epoll_*` on Linux, `poll` elsewhere,
//! `getrlimit`/`setrlimit`) as `extern "C"` items — the Rust standard
//! library already links the platform libc, so the symbols resolve
//! without adding a dependency.
//!
//! Three primitives are exposed:
//!
//! * [`Poller`] — level-triggered readiness notification over raw fds
//!   (epoll on Linux, `poll(2)` on other Unixes). Tokens are plain
//!   `u64`s chosen by the caller.
//! * [`Waker`] — a cross-thread wakeup channel built from a loopback
//!   TCP pair (pure std, no extra syscalls), with a pending-flag so N
//!   wakes between two [`Waker::clear`]s cost one socket write.
//! * [`raise_nofile_limit`] — lift `RLIMIT_NOFILE`'s soft limit to the
//!   hard limit, so a 10k-connection server doesn't die at the default
//!   1024-fd soft cap.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(target_os = "linux")]
pub(crate) use epoll::Poller;
#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) use poll_fallback::Poller;

#[cfg(not(unix))]
compile_error!("iolap-serve's reactor requires a Unix platform (epoll or poll)");

/// What a polled fd is ready for. `error` folds in hangup: a conn with
/// either flag set should be read (to observe EOF) or torn down.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// Caller-chosen registration token.
    pub token: u64,
    /// Readable (or peer half-closed — a read will return 0).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition on the fd.
    pub error: bool,
}

/// Interest set for a registration. Both-false is valid and means "keep
/// the registration but report nothing" — the reactor parks dispatched
/// connections this way so buffered pipelined bytes don't busy-wake the
/// loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interest {
    /// Report readability.
    pub readable: bool,
    /// Report writability.
    pub writable: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest { readable: true, writable: false };
    pub(crate) const WRITE: Interest = Interest { readable: false, writable: true };
    pub(crate) const NONE: Interest = Interest { readable: false, writable: false };
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll;

// ---------------------------------------------------------------------------
// Other Unixes: poll(2) fallback (same interface, O(n) per wait)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod poll_fallback {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)`-backed registration table. Correct, portable, and O(n)
    /// per wait — Linux builds use the epoll implementation instead.
    pub(crate) struct Poller {
        fds: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller { fds: Mutex::new(Vec::new()) })
        }

        pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.lock().unwrap().push((fd, token, interest));
            Ok(())
        }

        pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            match fds.iter_mut().find(|(f, ..)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.fds.lock().unwrap().retain(|(f, ..)| *f != fd);
            Ok(())
        }

        pub(crate) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let regs: Vec<(RawFd, u64, Interest)> = self.fds.lock().unwrap().clone();
            let mut pfds: Vec<PollFd> = regs
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: (if interest.readable { POLLIN } else { 0 })
                        | (if interest.writable { POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            loop {
                // SAFETY: `pfds` is a valid array of the stated length.
                let n = unsafe { poll(pfds.as_mut_ptr(), pfds.len() as u64, ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for (pfd, &(_, token, _)) in pfds.iter().zip(regs.iter()) {
                    if pfd.revents != 0 {
                        out.push(Event {
                            token,
                            readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                            writable: pfd.revents & POLLOUT != 0,
                            error: pfd.revents & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// Cross-thread reactor wakeup: a connected loopback TCP pair. Workers
/// (and the shutdown path) call [`wake`](Waker::wake); the reactor
/// registers [`read_fd`](Waker::read_fd) for readability and calls
/// [`clear`](Waker::clear) when it fires. The `pending` flag collapses
/// any number of wakes between two clears into one socket write.
pub(crate) struct Waker {
    tx: TcpStream,
    rx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Waker> {
        // std has no socketpair; a loopback accept gives the same thing.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nodelay(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx, pending: AtomicBool::new(false) })
    }

    /// The fd the reactor should register for readability.
    pub(crate) fn read_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Wake the reactor (idempotent until the next [`clear`](Waker::clear)).
    pub(crate) fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            use std::io::Write;
            let _ = (&self.tx).write(&[1u8]);
        }
    }

    /// Drain pending wake bytes. The reactor must drain its message
    /// queues *after* calling this, so a wake that races the drain is
    /// either observed now or re-signals the socket.
    pub(crate) fn clear(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        self.pending.store(false, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// RLIMIT_NOFILE
// ---------------------------------------------------------------------------

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: i32 = 7;
#[cfg(all(unix, not(target_os = "linux")))]
const RLIMIT_NOFILE: i32 = 8;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Raise the process's open-file soft limit to its hard limit and return
/// the soft limit now in effect. Best-effort: on any failure the current
/// (unchanged) soft limit is returned. Servers holding tens of thousands
/// of sockets call this once at startup; the default soft limit on most
/// distributions is 1024, which a 10k-connection sweep blows through.
pub fn raise_nofile_limit() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid out-pointer for the duration of the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur < lim.max {
        let want = RLimit { cur: lim.max, max: lim.max };
        // SAFETY: passing a valid, initialized struct by const pointer.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            return want.cur;
        }
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn waker_wakes_and_clears() {
        let w = Waker::new().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(w.read_fd(), 7, Interest::READ).unwrap();

        // No wake: times out with no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        // Multiple wakes collapse into one readable event.
        w.wake();
        w.wake();
        w.wake();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // After clear, the level-triggered source goes quiet...
        w.clear();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());

        // ...and the next wake fires again.
        w.wake();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn poller_reports_listener_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 42, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no pending connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Interest NONE parks the registration without removing it.
        poller.modify(listener.as_raw_fd(), 42, Interest::NONE).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "parked registration must stay quiet");

        poller.modify(listener.as_raw_fd(), 42, Interest::READ).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(events.len(), 1, "re-armed registration reports again");

        poller.remove(listener.as_raw_fd()).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let n = raise_nofile_limit();
        assert!(n >= 256, "soft fd limit {n} is implausibly low");
        // Calling it again is idempotent.
        assert_eq!(raise_nofile_limit(), n);
    }
}
