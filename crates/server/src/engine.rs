//! The generic HTTP engine: one reactor thread plus a worker pool,
//! parameterized over a [`Handler`] so the same event-driven core serves
//! both the single-node query server and the cluster router.
//!
//! The engine owns everything transport-shaped — accepting, parsing,
//! shedding, timeouts, panic isolation, graceful drain — and knows
//! nothing about snapshots, caches, or shards. A handler receives one
//! fully-parsed [`Request`] and returns `(status, content-type, body)`;
//! the engine counts it, times it, and writes it.
//!
//! Engine metrics are registered under a caller-chosen prefix
//! (`serve.*` for the single-node server, `cluster.*` for the router),
//! so the two planes stay distinguishable in one Prometheus scrape.

use crate::http::{response_bytes, Request};
use crate::reactor::{write_nonblocking, Completion, Reactor, ReadyRequest, WriteOutcome};
use crate::server::ServeConfig;
use crate::sys::Waker;
use crate::wire::ServeError;
use iolap_obs::{Counter, Gauge, Histogram, Obs};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One HTTP response: status, content type, body.
pub type Response = (u16, &'static str, String);

/// Application logic behind the engine: map one parsed request to a
/// response. Called concurrently from every worker thread; panics are
/// caught and answered with a `500`.
pub trait Handler: Send + Sync + 'static {
    /// Answer one request.
    fn handle(&self, req: &Request) -> Response;
}

/// Transport-level metric handles, resolved once at startup under a
/// name prefix (hot paths never re-hash names).
pub(crate) struct EngineMetrics {
    pub(crate) requests: Counter,
    pub(crate) resp_ok: Counter,
    pub(crate) resp_client_error: Counter,
    pub(crate) resp_server_error: Counter,
    pub(crate) shed: Counter,
    pub(crate) panics: Counter,
    /// Depth of the ready-request queue (requests parsed by the reactor
    /// but not yet picked up by a worker).
    pub(crate) queue_depth: Gauge,
    /// Live connection count owned by the reactor.
    pub(crate) connections: Gauge,
    pub(crate) latency_us: Histogram,
}

impl EngineMetrics {
    fn new(obs: &Obs, prefix: &str) -> Self {
        let c = |n: String| obs.counter(&n).expect("engine obs is always enabled");
        EngineMetrics {
            requests: c(format!("{prefix}.requests")),
            resp_ok: c(format!("{prefix}.responses.ok")),
            resp_client_error: c(format!("{prefix}.responses.client_error")),
            resp_server_error: c(format!("{prefix}.responses.server_error")),
            shed: c(format!("{prefix}.shed")),
            panics: c(format!("{prefix}.panics")),
            queue_depth: obs.gauge(&format!("{prefix}.queue.depth")).expect("enabled"),
            connections: obs.gauge(&format!("{prefix}.connections")).expect("enabled"),
            latency_us: obs.histogram(&format!("{prefix}.latency_us")).expect("enabled"),
        }
    }
}

/// State shared by the reactor and every worker.
pub(crate) struct EngineShared {
    pub(crate) metrics: EngineMetrics,
    pub(crate) shutdown: AtomicBool,
    handler: Arc<dyn Handler>,
}

/// Classify a status into the ok / client-error / server-error counters.
pub(crate) fn count_status(shared: &EngineShared, status: u16) {
    match status {
        200..=299 => shared.metrics.resp_ok.inc(),
        400..=499 => shared.metrics.resp_client_error.inc(),
        _ => shared.metrics.resp_server_error.inc(),
    }
}

/// A running engine. Dropping it (or calling [`stop`](EngineHandle::stop))
/// drains in-flight responses and joins the reactor and workers.
pub struct EngineHandle {
    addr: SocketAddr,
    shared: Arc<EngineShared>,
    waker: Arc<Waker>,
    threads: Vec<JoinHandle<()>>,
}

impl EngineHandle {
    /// The bound address (useful with `:0` for an OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight responses, join every thread.
    /// Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and start the reactor plus `cfg.workers` worker threads
/// running `handler`. Transport metrics register under `prefix`. Thread
/// names start with `name` (`iolap-<name>-reactor`, …).
pub fn start(
    addr: &str,
    cfg: &ServeConfig,
    name: &str,
    prefix: &str,
    obs: &Obs,
    handler: Arc<dyn Handler>,
) -> Result<EngineHandle, ServeError> {
    let metrics = EngineMetrics::new(obs, prefix);
    let shared = Arc::new(EngineShared { metrics, shutdown: AtomicBool::new(false), handler });

    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let waker = Arc::new(Waker::new()?);

    let (work_tx, work_rx) = mpsc::sync_channel::<ReadyRequest>(cfg.queue_depth.max(1));
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let mut threads = Vec::with_capacity(cfg.workers + 1);

    for i in 0..cfg.workers.max(1) {
        let rx = work_rx.clone();
        let sh = shared.clone();
        let done = done_tx.clone();
        let wk = waker.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("iolap-{name}-worker-{i}"))
                .spawn(move || worker_main(rx, sh, done, wk))
                .map_err(ServeError::Io)?,
        );
    }
    drop(done_tx); // reactor's done_rx disconnects when workers exit

    let reactor =
        Reactor::new(listener, waker.clone(), work_tx, done_rx, shared.clone(), cfg.clone())?;
    threads.push(
        std::thread::Builder::new()
            .name(format!("iolap-{name}-reactor"))
            .spawn(move || reactor.run())
            .map_err(ServeError::Io)?,
    );

    Ok(EngineHandle { addr: local, shared, waker, threads })
}

fn worker_main(
    rx: Arc<Mutex<Receiver<ReadyRequest>>>,
    shared: Arc<EngineShared>,
    done_tx: Sender<Completion>,
    waker: Arc<Waker>,
) {
    loop {
        let job = {
            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
            match rx.recv() {
                Ok(j) => j,
                Err(_) => return, // reactor gone, queue drained
            }
        };
        shared.metrics.queue_depth.add(-1);
        shared.metrics.requests.inc();

        let t0 = Instant::now();
        let handler = shared.handler.clone();
        let out = catch_unwind(AssertUnwindSafe(|| handler.handle(&job.req)));
        let (status, content_type, body) = out.unwrap_or_else(|_| {
            shared.metrics.panics.inc();
            let (status, body) = ServeError::Internal("internal error".into()).to_response();
            (status, "application/json", body)
        });
        shared.metrics.latency_us.observe(t0.elapsed().as_micros() as u64);
        count_status(&shared, status);

        let keep_alive = job.req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let bytes = response_bytes(status, content_type, body.as_bytes(), keep_alive);
        // Write straight to the socket — the reactor holds this
        // connection's interest at zero until our completion arrives, so
        // the two threads never touch the stream concurrently.
        let outcome = match write_nonblocking(&job.stream, &bytes, 0) {
            Ok(off) if off == bytes.len() => WriteOutcome::Done { keep_alive },
            Ok(off) => WriteOutcome::Blocked { bytes, off, keep_alive },
            Err(_) => WriteOutcome::Failed,
        };
        drop(job.stream);
        if done_tx.send(Completion { conn_id: job.conn_id, outcome }).is_err() {
            return;
        }
        waker.wake();
    }
}
