//! The epoch-swapped read snapshot.
//!
//! Request workers never touch the mutable [`iolap_core::MaintainableEdb`]
//! — they clone an `Arc<EdbSnapshot>` and aggregate over its immutable
//! segment views. The coordinator thread refreshes the views after each
//! `/update` batch (via `MaintainableEdb::snapshot_segments`, which reads
//! only the EDB tail appended by the batch and reuses unchanged segments
//! by `Arc` identity) and publishes a new snapshot atomically, so readers
//! never block on writers, writers never wait for readers, and publishing
//! costs O(segments) rather than O(entries).
//!
//! The aggregation here **is** the query crate's: both call
//! [`iolap_core::accumulate_region`] / [`iolap_core::SegmentCursor`] over
//! segment views, so a server answer is bit-identical to querying the
//! materialized EDB directly when the views hold the same entries
//! (`tests/serve_consistency.rs` asserts the f64 bits). Fence pruning
//! skips only pages provably disjoint from the query box, so it never
//! perturbs those bits.

use iolap_core::{accumulate_region, SegScanStats, SegmentCursor, SegmentView};
use iolap_hierarchy::LevelNo;
use iolap_model::{FactTable, RegionBox, Schema, MAX_DIMS};
use iolap_query::{AggFn, AggResult, RollupRow};
use std::sync::Arc;

/// One immutable published view of the maintained EDB.
pub struct EdbSnapshot {
    /// Monotone version: 0 at startup, +1 per applied `/update` batch.
    pub epoch: u64,
    /// The dataset schema (shared across all epochs).
    pub schema: Arc<Schema>,
    /// The fact table as of this epoch (for classical baselines).
    pub table: Arc<FactTable>,
    /// The EDB as immutable segment views (base + deltas). Each view is
    /// two `Arc`s, so cloning a snapshot's worth is O(segments); segments
    /// untouched by an update batch are shared with the previous epoch.
    pub segments: Vec<SegmentView>,
}

impl EdbSnapshot {
    /// Allocation-weighted aggregate over the snapshot's segments, with
    /// fence pruning. A corrupt compressed page surfaces as the storage
    /// error it is, never a short answer.
    pub fn aggregate(&self, region: &RegionBox, agg: AggFn) -> iolap_core::Result<AggResult> {
        Ok(self.aggregate_with_stats(region, agg)?.0)
    }

    /// [`EdbSnapshot::aggregate`] plus the scan's page/byte counters
    /// (pages read vs pruned, compressed bytes), for the server's metrics.
    pub fn aggregate_with_stats(
        &self,
        region: &RegionBox,
        agg: AggFn,
    ) -> iolap_core::Result<(AggResult, SegScanStats)> {
        let (sum, count, stats) = accumulate_region(&self.segments, region)?;
        Ok((finish(agg, sum, count), stats))
    }

    /// Roll up along `dim` at `level` within an optional dice region —
    /// the one-scan accumulation of `iolap_query::rollup`, over the
    /// snapshot's segments. Returns the rows plus the scan's page
    /// counters.
    pub fn rollup(
        &self,
        dim: usize,
        level: LevelNo,
        region: Option<&RegionBox>,
        agg: AggFn,
    ) -> iolap_core::Result<(Vec<RollupRow>, SegScanStats)> {
        let h = self.schema.dim(dim);
        let nodes = h.nodes_at_level(level);
        let mut pos_of = std::collections::HashMap::with_capacity(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            pos_of.insert(n, i);
        }
        let mut sums = vec![0.0f64; nodes.len()];
        let mut counts = vec![0.0f64; nodes.len()];
        let rg = region.copied().unwrap_or_else(|| SegmentCursor::all_region(self.schema.k()));
        let mut cursor = SegmentCursor::new(&self.segments, rg);
        cursor.for_each(|e| {
            let anc = h.ancestor_at(e.cell[dim], level);
            let i = pos_of[&anc];
            sums[i] += e.weight * e.measure;
            counts[i] += e.weight;
        })?;
        let rows = nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| RollupRow {
                node,
                name: h.node_name(node),
                result: finish(agg, sums[i], counts[i]),
            })
            .collect();
        Ok((rows, cursor.stats()))
    }
}

/// Identical to the private `finish` of `iolap_query::agg`.
pub(crate) fn finish(agg: AggFn, sum: f64, count: f64) -> AggResult {
    let value = match agg {
        AggFn::Sum => sum,
        AggFn::Count => count,
        AggFn::Avg => {
            if count > 0.0 {
                sum / count
            } else {
                0.0
            }
        }
    };
    AggResult { value, sum, count }
}

/// Resolve `(dimension name, node name)` pairs into a query region;
/// unlisted dimensions default to `ALL`. Unlike `QueryBuilder::at` (which
/// is lenient for exploratory use), unknown node names are errors here —
/// a typo over HTTP must surface as a 400, not silently mean `ALL`.
pub fn resolve_region(schema: &Schema, at: &[(String, String)]) -> Result<RegionBox, String> {
    let k = schema.k();
    let mut lo = [0u32; MAX_DIMS];
    let mut hi = [0u32; MAX_DIMS];
    for d in 0..k {
        let r = schema.dim(d).leaf_range(schema.dim(d).all());
        lo[d] = r.start;
        hi[d] = r.end;
    }
    for (dim_name, node_name) in at {
        let d = (0..k)
            .find(|&d| schema.dim(d).name() == dim_name)
            .ok_or_else(|| format!("unknown dimension {dim_name:?}"))?;
        let h = schema.dim(d);
        // Accept explicit node names first, then the `Level[lo..hi]`
        // display form `Hierarchy::node_name` synthesizes for anonymous
        // nodes — so any name the system prints resolves back.
        let node = h
            .node_by_name(node_name)
            .or_else(|| {
                (0..h.num_nodes())
                    .map(iolap_hierarchy::NodeId)
                    .find(|&id| h.node_name(id) == *node_name)
            })
            .ok_or_else(|| format!("unknown node {node_name:?} in dimension {dim_name:?}"))?;
        let r = h.leaf_range(node);
        lo[d] = r.start;
        hi[d] = r.end;
    }
    Ok(RegionBox { lo, hi, k: k as u8 })
}

/// Resolve a `(dimension name, level name)` pair for `/rollup`.
pub fn resolve_level(schema: &Schema, dim: &str, level: &str) -> Result<(usize, LevelNo), String> {
    let d = (0..schema.k())
        .find(|&d| schema.dim(d).name() == dim)
        .ok_or_else(|| format!("unknown dimension {dim:?}"))?;
    let h = schema.dim(d);
    let l = (1..=h.levels())
        .find(|&l| h.level_name(l) == level)
        .ok_or_else(|| format!("unknown level {level:?} in dimension {dim:?}"))?;
    Ok((d, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    #[test]
    fn resolve_region_defaults_and_errors() {
        let s = paper_example::schema();
        let all = resolve_region(&s, &[]).unwrap();
        assert_eq!(all.num_cells(), 16);
        let ma = resolve_region(&s, &[("Location".into(), "MA".into())]).unwrap();
        assert_eq!(ma.num_cells(), 4);
        assert!(resolve_region(&s, &[("Nope".into(), "MA".into())]).is_err());
        assert!(resolve_region(&s, &[("Location".into(), "Atlantis".into())]).is_err());
    }

    #[test]
    fn resolve_level_names() {
        let s = paper_example::schema();
        assert_eq!(resolve_level(&s, "Location", "Region").unwrap(), (0, 2));
        assert_eq!(resolve_level(&s, "Automobile", "Category").unwrap(), (1, 2));
        assert!(resolve_level(&s, "Location", "Continent").is_err());
        assert!(resolve_level(&s, "Time", "Region").is_err());
    }
}
