//! The epoch-swapped read snapshot.
//!
//! Request workers never touch the mutable [`iolap_core::MaintainableEdb`]
//! — they clone an `Arc<EdbSnapshot>` and aggregate over its immutable
//! segment views. The coordinator thread refreshes the views after each
//! `/update` batch (via `MaintainableEdb::snapshot_segments`, which reads
//! only the EDB tail appended by the batch and reuses unchanged segments
//! by `Arc` identity) and publishes a new snapshot atomically, so readers
//! never block on writers, writers never wait for readers, and publishing
//! costs O(segments) rather than O(entries).
//!
//! The aggregation here **is** the query crate's: both call
//! [`iolap_core::accumulate_region`] / [`iolap_core::SegmentCursor`] over
//! segment views, so a server answer is bit-identical to querying the
//! materialized EDB directly when the views hold the same entries
//! (`tests/serve_consistency.rs` asserts the f64 bits). Fence pruning
//! skips only pages provably disjoint from the query box, so it never
//! perturbs those bits.

use iolap_core::{
    accumulate_region_parts, fold_parts, ChunkPart, CuboidLattice, SegScanStats, SegmentView,
};
use iolap_hierarchy::LevelNo;
use iolap_model::{FactTable, RegionBox, Schema, MAX_DIMS};
use iolap_query::{
    plan_rollup_views, rollup_views_parts, AggFn, AggResult, PlanMode, PlanStats, RollupParts,
    RollupRow,
};
use std::sync::Arc;

/// One immutable published view of the maintained EDB.
pub struct EdbSnapshot {
    /// Monotone version: 0 at startup, +1 per applied `/update` batch.
    pub epoch: u64,
    /// The dataset schema (shared across all epochs).
    pub schema: Arc<Schema>,
    /// The fact table as of this epoch (for classical baselines).
    pub table: Arc<FactTable>,
    /// The EDB as immutable segment views (base + deltas). Each view is
    /// two `Arc`s, so cloning a snapshot's worth is O(segments); segments
    /// untouched by an update batch are shared with the previous epoch.
    pub segments: Vec<SegmentView>,
    /// The materialized cuboid lattice over `segments`, synced by the
    /// coordinator through the same epoch swap (`None` degrades `/rollup`
    /// to plain leaf scans — never to wrong answers).
    pub lattice: Option<Arc<CuboidLattice>>,
}

impl EdbSnapshot {
    /// Allocation-weighted aggregate over the snapshot's segments, with
    /// fence pruning. A corrupt compressed page surfaces as the storage
    /// error it is, never a short answer.
    pub fn aggregate(&self, region: &RegionBox, agg: AggFn) -> iolap_core::Result<AggResult> {
        Ok(self.aggregate_with_stats(region, agg)?.0)
    }

    /// [`EdbSnapshot::aggregate`] plus the scan's page/byte counters
    /// (pages read vs pruned, compressed bytes), for the server's metrics.
    pub fn aggregate_with_stats(
        &self,
        region: &RegionBox,
        agg: AggFn,
    ) -> iolap_core::Result<(AggResult, SegScanStats)> {
        let (parts, stats) = self.aggregate_parts(region)?;
        let (sum, count) = fold_parts(&parts);
        Ok((finish(agg, sum, count), stats))
    }

    /// The partial-aggregation form of [`EdbSnapshot::aggregate`]: the
    /// region's (sum, count) as canonical chunk parts — per-view,
    /// per-dim0-slab partials in (view, slab) order. Folding them with
    /// [`iolap_core::fold_parts`] gives bits identical to `aggregate`,
    /// and because chunks never straddle a dim0 cut, concatenating the
    /// parts from a disjoint dim0 partition of the region (as the cluster
    /// router does across shards) and folding gives those same bits.
    pub fn aggregate_parts(
        &self,
        region: &RegionBox,
    ) -> iolap_core::Result<(Vec<ChunkPart>, SegScanStats)> {
        accumulate_region_parts(&self.segments, region)
    }

    /// Scan-planned rollup as per-row chunk parts, the cluster merge form
    /// of [`EdbSnapshot::rollup`]: every row of `dim` at `level` carries
    /// its canonical parts, ready for cross-shard concatenation. Answers
    /// match the single-node `"plan":"scan"` rollup bit-for-bit.
    pub fn rollup_scan_parts(
        &self,
        dim: usize,
        level: LevelNo,
        region: Option<&RegionBox>,
    ) -> iolap_core::Result<(Vec<RollupParts>, SegScanStats)> {
        rollup_views_parts(&self.segments, &self.schema, dim, level, region)
    }

    /// Roll up along `dim` at `level` within an optional dice region,
    /// planned over the snapshot's cuboid lattice: the coarsest usable
    /// cuboid answers the grain-aligned core of the region and only the
    /// partial-overlap residue is leaf-scanned — f64-bit-identical to the
    /// plain one-scan accumulation by the planner's construction. Returns
    /// the rows plus the plan's page counters and cuboid hit/miss tallies.
    pub fn rollup(
        &self,
        dim: usize,
        level: LevelNo,
        region: Option<&RegionBox>,
        agg: AggFn,
    ) -> iolap_core::Result<(Vec<RollupRow>, PlanStats)> {
        plan_rollup_views(
            &self.segments,
            self.lattice.as_deref(),
            &self.schema,
            dim,
            level,
            region,
            agg,
            PlanMode::Lattice,
        )
    }
}

/// Identical to the query crate's aggregate finisher.
pub(crate) fn finish(agg: AggFn, sum: f64, count: f64) -> AggResult {
    AggResult::from_parts(agg, sum, count)
}

/// Resolve `(dimension name, node name)` pairs into a query region;
/// unlisted dimensions default to `ALL`. Unlike `QueryBuilder::at` (which
/// is lenient for exploratory use), unknown node names are errors here —
/// a typo over HTTP must surface as a 400, not silently mean `ALL`.
pub fn resolve_region(schema: &Schema, at: &[(String, String)]) -> Result<RegionBox, String> {
    let k = schema.k();
    let mut lo = [0u32; MAX_DIMS];
    let mut hi = [0u32; MAX_DIMS];
    for d in 0..k {
        let r = schema.dim(d).leaf_range(schema.dim(d).all());
        lo[d] = r.start;
        hi[d] = r.end;
    }
    for (dim_name, node_name) in at {
        let d = (0..k)
            .find(|&d| schema.dim(d).name() == dim_name)
            .ok_or_else(|| format!("unknown dimension {dim_name:?}"))?;
        let h = schema.dim(d);
        // Accept explicit node names first, then the `Level[lo..hi]`
        // display form `Hierarchy::node_name` synthesizes for anonymous
        // nodes — so any name the system prints resolves back.
        let node = h
            .node_by_name(node_name)
            .or_else(|| {
                (0..h.num_nodes())
                    .map(iolap_hierarchy::NodeId)
                    .find(|&id| h.node_name(id) == *node_name)
            })
            .ok_or_else(|| format!("unknown node {node_name:?} in dimension {dim_name:?}"))?;
        let r = h.leaf_range(node);
        lo[d] = r.start;
        hi[d] = r.end;
    }
    Ok(RegionBox { lo, hi, k: k as u8 })
}

/// Resolve a `(dimension name, level name)` pair for `/rollup`.
pub fn resolve_level(schema: &Schema, dim: &str, level: &str) -> Result<(usize, LevelNo), String> {
    let d = (0..schema.k())
        .find(|&d| schema.dim(d).name() == dim)
        .ok_or_else(|| format!("unknown dimension {dim:?}"))?;
    let h = schema.dim(d);
    let l = (1..=h.levels())
        .find(|&l| h.level_name(l) == level)
        .ok_or_else(|| format!("unknown level {level:?} in dimension {dim:?}"))?;
    Ok((d, l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    #[test]
    fn resolve_region_defaults_and_errors() {
        let s = paper_example::schema();
        let all = resolve_region(&s, &[]).unwrap();
        assert_eq!(all.num_cells(), 16);
        let ma = resolve_region(&s, &[("Location".into(), "MA".into())]).unwrap();
        assert_eq!(ma.num_cells(), 4);
        assert!(resolve_region(&s, &[("Nope".into(), "MA".into())]).is_err());
        assert!(resolve_region(&s, &[("Location".into(), "Atlantis".into())]).is_err());
    }

    #[test]
    fn resolve_level_names() {
        let s = paper_example::schema();
        assert_eq!(resolve_level(&s, "Location", "Region").unwrap(), (0, 2));
        assert_eq!(resolve_level(&s, "Automobile", "Category").unwrap(), (1, 2));
        assert!(resolve_level(&s, "Location", "Continent").is_err());
        assert!(resolve_level(&s, "Time", "Region").is_err());
    }
}
