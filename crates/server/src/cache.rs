//! The sharded query-result cache with R-tree-driven invalidation.
//!
//! Keys are `(region box, aggregate, semantics)`; values are epoch-stamped
//! [`AggResult`]s. Shards are plain `Mutex<HashMap>`s with a per-shard LRU
//! stamp — at server concurrency (tens of workers) lock striping is all
//! the scalability needed, and keeping the shard dumb keeps invalidation
//! easy to reason about.
//!
//! Invalidation is *targeted*: `/update` hands the coordinator the
//! bounding boxes of every touched region/component (Theorem 12's scope),
//! and only cache entries whose query region **overlaps** one of those
//! boxes are evicted. Entries over disjoint regions provably kept their
//! answer and stay hot.
//!
//! The stale-insert race (a reader computes from snapshot `N` while the
//! coordinator publishes `N+1`) is closed with an epoch guard:
//! [`ShardedCache::begin_epoch`] is called *before* invalidation and
//! snapshot publication, and [`ShardedCache::insert`] drops any result
//! computed against an older epoch, checking the epoch *while holding
//! the shard lock* so the check is ordered against the invalidation
//! sweep (which takes the same lock). Conservative — a disjoint-region
//! result from the old snapshot would still be valid — but it can never
//! re-admit a stale overlapping answer after its eviction.

use iolap_model::{RegionBox, MAX_DIMS};
use iolap_query::{AggFn, AggResult, Classical};
use iolap_rtree::Aabb;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: the query region plus what was computed over it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    lo: [u32; MAX_DIMS],
    hi: [u32; MAX_DIMS],
    k: u8,
    /// Aggregate discriminant + classical semantics discriminant.
    kind: u8,
}

impl CacheKey {
    /// Build a key for an aggregate over `region`.
    pub fn new(region: &RegionBox, agg: AggFn, classical: Option<Classical>) -> Self {
        let a = match agg {
            AggFn::Sum => 0u8,
            AggFn::Count => 1,
            AggFn::Avg => 2,
        };
        let c = match classical {
            None => 0u8,
            Some(Classical::None) => 1,
            Some(Classical::Contains) => 2,
            Some(Classical::Overlaps) => 3,
        };
        CacheKey { lo: region.lo, hi: region.hi, k: region.k, kind: a | (c << 2) }
    }

    /// Half-open overlap between the key's region and a bounding box.
    fn overlaps(&self, b: &Aabb) -> bool {
        let k = (self.k as usize).min(b.k as usize);
        for d in 0..k {
            if self.lo[d] >= b.hi[d] || b.lo[d] >= self.hi[d] {
                return false;
            }
        }
        true
    }
}

/// A cached aggregate stamped with the snapshot epoch it was computed on.
#[derive(Debug, Clone, Copy)]
pub struct CachedResult {
    /// The aggregate.
    pub result: AggResult,
    /// Epoch of the snapshot that produced it.
    pub epoch: u64,
}

struct Entry {
    val: CachedResult,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Counters returned by cache operations so the server can feed its
/// metrics registry without the cache depending on `iolap-obs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Entries evicted to make room (LRU pressure, not invalidation).
    pub evicted: u64,
    /// Whether the insert was accepted (false: stale epoch, dropped).
    pub inserted: bool,
}

/// The sharded, epoch-guarded LRU result cache.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    cap_per_shard: usize,
    epoch: AtomicU64,
}

impl ShardedCache {
    /// A cache holding at most `capacity` entries across `shards` shards.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let cap_per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            cap_per_shard,
            epoch: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Look up a key, refreshing its LRU stamp on hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let e = shard.map.get_mut(key)?;
        e.stamp = tick;
        Some(e.val)
    }

    /// Insert a result. Rejected (dropped) when `val.epoch` is older than
    /// the cache's current epoch — see the module docs for the race this
    /// closes. Returns LRU evictions performed to make room.
    pub fn insert(&self, key: CacheKey, val: CachedResult) -> CacheOutcome {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|p| p.into_inner());
        // The epoch must be checked while the shard lock is held: the
        // coordinator stores the new epoch *before* sweeping shards, so
        // either we observe the new epoch here and drop, or the store
        // hasn't happened yet and the sweep will take this shard's lock
        // after us and evict whatever we insert. A check before the lock
        // leaves a window where a stale overlapping entry lands after
        // the sweep has already passed this shard.
        if val.epoch < self.epoch.load(Ordering::Acquire) {
            return CacheOutcome { evicted: 0, inserted: false };
        }
        let mut evicted = 0u64;
        while shard.map.len() >= self.cap_per_shard && !shard.map.contains_key(&key) {
            // Evict the least-recently-stamped entry (scan: shards are
            // small — capacity / shards entries).
            let Some(oldest) =
                shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            else {
                break;
            };
            shard.map.remove(&oldest);
            evicted += 1;
        }
        shard.tick += 1;
        let stamp = shard.tick;
        shard.map.insert(key, Entry { val, stamp });
        CacheOutcome { evicted, inserted: true }
    }

    /// Open invalidation epoch `epoch`: from now on, inserts computed
    /// against older snapshots are dropped. Call *before* evicting and
    /// before publishing the new snapshot.
    pub fn begin_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Re-stamp every surviving entry to `epoch`. The publisher calls
    /// this *after* the targeted invalidation sweep: an entry that
    /// survived is disjoint from every touched box, so (Theorem 12's
    /// contrapositive) its answer is unchanged at the new epoch and a
    /// hit may honestly report it as current. Without the re-stamp,
    /// legitimately-surviving pre-update entries answer with their old
    /// epoch, and byte-identity harnesses had to disable caching to
    /// compare servers.
    pub fn retag_epoch(&self, epoch: u64) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            for e in shard.map.values_mut() {
                if e.val.epoch < epoch {
                    e.val.epoch = epoch;
                }
            }
        }
    }

    /// Evict every entry whose region overlaps one of `boxes`; returns
    /// the number of entries removed.
    pub fn invalidate_overlapping(&self, boxes: &[Aabb]) -> u64 {
        if boxes.is_empty() {
            return 0;
        }
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            let before = shard.map.len();
            shard.map.retain(|k, _| !boxes.iter().any(|b| k.overlaps(b)));
            removed += (before - shard.map.len()) as u64;
        }
        removed
    }

    /// Number of live entries (for tests and gauges).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len()).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(lo: [u32; 2], hi: [u32; 2]) -> RegionBox {
        let mut l = [0u32; MAX_DIMS];
        let mut h = [0u32; MAX_DIMS];
        l[..2].copy_from_slice(&lo);
        h[..2].copy_from_slice(&hi);
        RegionBox { lo: l, hi: h, k: 2 }
    }

    fn val(epoch: u64, x: f64) -> CachedResult {
        CachedResult { result: AggResult { value: x, sum: x, count: 1.0 }, epoch }
    }

    #[test]
    fn get_after_insert_round_trips() {
        let c = ShardedCache::new(64, 4);
        let k = CacheKey::new(&region([0, 0], [2, 2]), AggFn::Sum, None);
        assert!(c.get(&k).is_none());
        assert!(c.insert(k.clone(), val(0, 5.0)).inserted);
        assert_eq!(c.get(&k).unwrap().result.value, 5.0);
    }

    #[test]
    fn distinct_aggregates_do_not_collide() {
        let c = ShardedCache::new(64, 4);
        let r = region([0, 0], [2, 2]);
        let ks = CacheKey::new(&r, AggFn::Sum, None);
        let kc = CacheKey::new(&r, AggFn::Count, None);
        let kcl = CacheKey::new(&r, AggFn::Count, Some(Classical::Overlaps));
        c.insert(ks.clone(), val(0, 1.0));
        c.insert(kc.clone(), val(0, 2.0));
        c.insert(kcl.clone(), val(0, 3.0));
        assert_eq!(c.get(&ks).unwrap().result.value, 1.0);
        assert_eq!(c.get(&kc).unwrap().result.value, 2.0);
        assert_eq!(c.get(&kcl).unwrap().result.value, 3.0);
    }

    #[test]
    fn invalidation_is_targeted_to_overlapping_regions() {
        let c = ShardedCache::new(64, 4);
        let west = CacheKey::new(&region([2, 0], [4, 4]), AggFn::Sum, None);
        let east = CacheKey::new(&region([0, 0], [2, 4]), AggFn::Sum, None);
        c.insert(west.clone(), val(0, 1.0));
        c.insert(east.clone(), val(0, 2.0));
        // Touch a single cell in the west half: (3, 1).
        let touched = Aabb::new(&[3, 1], &[4, 2]);
        assert_eq!(c.invalidate_overlapping(&[touched]), 1);
        assert!(c.get(&west).is_none(), "overlapping entry must go");
        assert!(c.get(&east).is_some(), "disjoint entry must stay");
    }

    #[test]
    fn stale_epoch_inserts_are_dropped() {
        let c = ShardedCache::new(64, 4);
        let k = CacheKey::new(&region([0, 0], [2, 2]), AggFn::Sum, None);
        c.begin_epoch(2);
        assert!(!c.insert(k.clone(), val(1, 9.0)).inserted, "old-epoch insert must drop");
        assert!(c.get(&k).is_none());
        assert!(c.insert(k.clone(), val(2, 9.0)).inserted);
        assert!(c.get(&k).is_some());
    }

    #[test]
    fn surviving_entries_are_retagged_to_the_new_epoch() {
        let c = ShardedCache::new(64, 4);
        let west = CacheKey::new(&region([2, 0], [4, 4]), AggFn::Sum, None);
        let east = CacheKey::new(&region([0, 0], [2, 4]), AggFn::Sum, None);
        c.insert(west.clone(), val(0, 1.0));
        c.insert(east.clone(), val(0, 2.0));
        // The publisher's sequence for an update touching the west half.
        c.begin_epoch(1);
        c.invalidate_overlapping(&[Aabb::new(&[3, 1], &[4, 2])]);
        c.retag_epoch(1);
        assert!(c.get(&west).is_none());
        let hit = c.get(&east).expect("disjoint entry survives");
        assert_eq!(hit.epoch, 1, "survivor answers as the current epoch");
        assert_eq!(hit.result.value, 2.0, "with its (provably unchanged) value");
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard so the LRU order is fully observable.
        let c = ShardedCache::new(2, 1);
        let k1 = CacheKey::new(&region([0, 0], [1, 1]), AggFn::Sum, None);
        let k2 = CacheKey::new(&region([1, 1], [2, 2]), AggFn::Sum, None);
        let k3 = CacheKey::new(&region([2, 2], [3, 3]), AggFn::Sum, None);
        c.insert(k1.clone(), val(0, 1.0));
        c.insert(k2.clone(), val(0, 2.0));
        c.get(&k1); // k1 now hotter than k2
        let out = c.insert(k3.clone(), val(0, 3.0));
        assert_eq!(out.evicted, 1);
        assert!(c.get(&k2).is_none(), "coldest entry (k2) must be the victim");
        assert!(c.get(&k1).is_some());
        assert!(c.get(&k3).is_some());
    }

    #[test]
    fn empty_box_list_invalidates_nothing() {
        let c = ShardedCache::new(8, 2);
        let k = CacheKey::new(&region([0, 0], [2, 2]), AggFn::Sum, None);
        c.insert(k.clone(), val(0, 1.0));
        assert_eq!(c.invalidate_overlapping(&[]), 0);
        assert!(c.get(&k).is_some());
    }
}
