//! The readiness loop at the heart of iolap-serve: one thread owning
//! every socket, with workers pulling *ready, fully-parsed requests*
//! instead of owning connections.
//!
//! Per-connection state machine:
//!
//! ```text
//!            readable bytes          full request parsed
//!   accept ──► Reading ────────────────► Dispatched ──┐
//!                ▲                        (worker      │ worker wrote
//!                │ response fully         computes +   │ response
//!                │ written, keep-alive    writes)      ▼
//!                └──────── Writing ◄─────────── (residual bytes only)
//!                              │
//!                              └──► Closing (close/EOF/timeout/shed)
//! ```
//!
//! Readiness protocol: a `Reading` connection is registered for
//! readability; the moment a complete request parses, the connection's
//! interest set is *zeroed* (the registration stays, so errors are still
//! observed) and the request goes to the worker queue — buffered
//! pipelined bytes therefore cannot busy-wake the loop while the worker
//! computes. The worker writes the response straight to the nonblocking
//! socket; only bytes the socket wouldn't take come back to the reactor
//! as a residual `Writing` state with write interest. On completion the
//! connection re-enters `Reading` and any buffered pipelined request is
//! parsed immediately, without waiting for another readable event.
//!
//! Why workers pull requests, not connections: a pulled *connection*
//! pins a worker for the socket's whole keep-alive lifetime, so idle
//! sockets exhaust the pool (the pre-reactor design's limit). A pulled
//! *request* costs a worker only the compute time of one answer, so the
//! connection count is bounded by memory and `max_connections`, not by
//! the worker count.

use crate::engine::{count_status, EngineShared};
use crate::http::{response_bytes, try_parse, ParseStatus, ReadError, Request};
use crate::server::{ServeConfig, ShedPolicy};
use crate::sys::{Event, Interest, Poller, Waker};
use crate::wire::ServeError;
use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

/// How long the poller sleeps with nothing to do. Timeout sweeps run on
/// this cadence; shutdown and completions interrupt it via the waker.
const TICK: Duration = Duration::from_millis(250);

/// Max bytes pulled off one socket per readable event, so a
/// fast-streaming peer cannot monopolize the loop (level-triggered
/// polling re-reports the fd if more is buffered).
const READ_BUDGET: usize = 64 * 1024;

/// A fully-parsed request handed to the worker pool.
pub(crate) struct ReadyRequest {
    /// Reactor token of the owning connection (echoed in [`Completion`]).
    pub conn_id: u64,
    /// The socket, shared with the reactor. The worker writes the
    /// response bytes directly; the reactor does not touch a dispatched
    /// connection's stream until the completion arrives.
    pub stream: Arc<TcpStream>,
    /// The parsed request.
    pub req: Request,
}

/// What happened when a worker wrote its response.
pub(crate) enum WriteOutcome {
    /// Everything was written.
    Done {
        /// Whether the connection should await another request.
        keep_alive: bool,
    },
    /// The socket buffer filled; the reactor finishes the tail.
    Blocked {
        /// The full response bytes.
        bytes: Vec<u8>,
        /// Offset of the first unwritten byte.
        off: usize,
        /// Keep-alive after the tail drains.
        keep_alive: bool,
    },
    /// The socket is dead (peer reset mid-write).
    Failed,
}

/// Worker → reactor notification that a dispatched request finished.
pub(crate) struct Completion {
    pub conn_id: u64,
    pub outcome: WriteOutcome,
}

/// Write as much of `bytes[off..]` as the nonblocking socket accepts.
/// Returns the new offset, or `Err` if the socket is dead.
pub(crate) fn write_nonblocking(
    stream: &TcpStream,
    bytes: &[u8],
    mut off: usize,
) -> std::io::Result<usize> {
    use std::io::Write;
    while off < bytes.len() {
        match (&*stream).write(&bytes[off..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(off)
}

enum ConnState {
    /// Waiting for (more) request bytes; read interest.
    Reading,
    /// A request is with a worker; interest zeroed.
    Dispatched,
    /// The reactor is draining response bytes; write interest.
    Writing { bytes: Vec<u8>, off: usize, keep_alive: bool },
}

struct Conn {
    stream: Arc<TcpStream>,
    /// Received-but-unparsed bytes (pipelined successors accumulate here).
    buf: Vec<u8>,
    state: ConnState,
    /// When the connection entered its current state (timeout sweeps).
    since: Instant,
    /// Peer sent EOF; close once the buffer can't yield another request.
    peer_closed: bool,
    /// An error event arrived while dispatched; close on completion
    /// instead of yanking the stream out from under the worker.
    errored: bool,
}

pub(crate) struct Reactor {
    listener: Option<TcpListener>,
    poller: Poller,
    waker: Arc<Waker>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    ready_tx: Option<SyncSender<ReadyRequest>>,
    done_rx: Receiver<Completion>,
    shared: Arc<EngineShared>,
    cfg: ServeConfig,
    draining: bool,
}

impl Reactor {
    pub(crate) fn new(
        listener: TcpListener,
        waker: Arc<Waker>,
        ready_tx: SyncSender<ReadyRequest>,
        done_rx: Receiver<Completion>,
        shared: Arc<EngineShared>,
        cfg: ServeConfig,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(waker.read_fd(), TOKEN_WAKER, Interest::READ)?;
        Ok(Reactor {
            listener: Some(listener),
            poller,
            waker,
            conns: HashMap::new(),
            next_id: FIRST_CONN,
            ready_tx: Some(ready_tx),
            done_rx,
            shared,
            cfg,
            draining: false,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                // A failing poller is unrecoverable; drain and exit so
                // shutdown still joins.
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
                continue;
            }
            // Clear the waker *before* draining completions: a wake that
            // races the drain either lands in this batch or re-signals
            // the socket for the next wait.
            self.waker.clear();
            while let Ok(c) = self.done_rx.try_recv() {
                self.on_completion(c);
            }
            // Split borrows: take the event list, act, put it back.
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_LISTENER => self.on_accept(),
                    TOKEN_WAKER => {}
                    id => self.on_conn_event(id, ev),
                }
            }
            events = batch;
            let now = Instant::now();
            if now.duration_since(last_sweep) >= TICK {
                self.sweep_timeouts(now);
                last_sweep = now;
            }
        }
        // Dropping ready_tx lets workers drain the queue and exit.
    }

    /// Shutdown: stop accepting, close every parked connection (the
    /// half-close the old design applied per-socket), and let dispatched
    /// or writing connections finish their in-flight response.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(l) = self.listener.take() {
            let _ = self.poller.remove(l.as_raw_fd());
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, ConnState::Reading))
            .map(|(&id, _)| id)
            .collect();
        for id in idle {
            self.close(id);
        }
    }

    fn on_accept(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            let (stream, _) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            if self.conns.len() >= self.cfg.max_connections {
                self.shed_connection(stream);
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            if self.poller.add(stream.as_raw_fd(), id, Interest::READ).is_err() {
                continue;
            }
            self.shared.metrics.connections.add(1);
            self.conns.insert(
                id,
                Conn {
                    stream: Arc::new(stream),
                    buf: Vec::new(),
                    state: ConnState::Reading,
                    since: Instant::now(),
                    peer_closed: false,
                    errored: false,
                },
            );
        }
    }

    /// Over `max_connections`: refuse the newly-accepted socket according
    /// to the shed policy. The 503 is written best-effort in one
    /// nonblocking call — a fresh socket's send buffer is empty, so the
    /// ~150-byte response either lands immediately or the client just
    /// sees a dropped connection; the reactor never stalls on a shed.
    fn shed_connection(&self, stream: TcpStream) {
        self.shared.metrics.shed.inc();
        if let ShedPolicy::Respond503 = self.cfg.shed {
            self.shared.metrics.resp_server_error.inc();
            let (status, body) =
                ServeError::Unavailable("server at connection capacity, retry later".into())
                    .to_response();
            let bytes = response_bytes(status, "application/json", body.as_bytes(), false);
            let _ = write_nonblocking(&stream, &bytes, 0);
        }
    }

    fn on_conn_event(&mut self, id: u64, ev: &Event) {
        enum Action {
            Close,
            Read,
            Write,
            Nothing,
        }
        let action = {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            if ev.error {
                match conn.state {
                    // Never close under a worker holding the stream;
                    // remember and act when the completion arrives.
                    ConnState::Dispatched => {
                        conn.errored = true;
                        Action::Nothing
                    }
                    // A hangup may still carry final buffered bytes; the
                    // read path observes the EOF properly.
                    ConnState::Reading => Action::Read,
                    ConnState::Writing { .. } => Action::Close,
                }
            } else {
                match conn.state {
                    ConnState::Reading if ev.readable => Action::Read,
                    ConnState::Writing { .. } if ev.writable => Action::Write,
                    _ => Action::Nothing,
                }
            }
        };
        match action {
            Action::Close => self.close(id),
            Action::Read => self.on_readable(id),
            Action::Write => self.on_writable(id),
            Action::Nothing => {}
        }
    }

    fn on_readable(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        let mut chunk = [0u8; 16 * 1024];
        let mut pulled = 0usize;
        loop {
            match (&*conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.since = Instant::now();
                    pulled += n;
                    if pulled >= READ_BUDGET {
                        break; // level-triggered: the fd re-reports
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(id);
                    return;
                }
            }
        }
        self.advance(id);
    }

    /// Try to turn buffered bytes into the connection's next dispatched
    /// request. Called after reads, and again after each completed
    /// response so pipelined successors don't wait for new readiness.
    fn advance(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        debug_assert!(matches!(conn.state, ConnState::Reading));
        match try_parse(&conn.buf, self.cfg.max_body_bytes) {
            Ok(ParseStatus::Complete(req, consumed)) => {
                conn.buf.drain(..consumed);
                self.dispatch(id, req);
            }
            Ok(ParseStatus::Partial { in_body, .. }) => {
                if conn.peer_closed {
                    if conn.buf.is_empty() || in_body {
                        // Clean close between requests, or EOF mid-body
                        // (nobody is left to read an error).
                        self.close(id);
                    } else {
                        // EOF inside headers: the peer may have only
                        // half-closed; answer 400 like the blocking
                        // reader did, then close.
                        let err = ServeError::BadRequest("eof inside headers".into());
                        self.respond_inline(id, err, false);
                    }
                }
                // else: stay Reading, wait for more bytes.
            }
            Err(ReadError::Bad(status, msg)) => {
                let err = ServeError::from_status(status, msg);
                self.respond_inline(id, err, false);
            }
            Err(ReadError::Io(_)) => self.close(id), // unreachable: try_parse does no I/O
        }
    }

    /// Hand a parsed request to the worker pool, or shed if the ready
    /// queue is full (the workers are the bottleneck, not the sockets).
    fn dispatch(&mut self, id: u64, req: Request) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        let Some(ready_tx) = self.ready_tx.as_ref() else {
            self.close(id);
            return;
        };
        let job = ReadyRequest { conn_id: id, stream: conn.stream.clone(), req };
        match ready_tx.try_send(job) {
            Ok(()) => {
                conn.state = ConnState::Dispatched;
                conn.since = Instant::now();
                self.shared.metrics.queue_depth.add(1);
                let _ = self.poller.modify(conn.stream.as_raw_fd(), id, Interest::NONE);
            }
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.shed.inc();
                match self.cfg.shed {
                    ShedPolicy::Respond503 => {
                        let err = ServeError::Unavailable("server saturated, retry later".into());
                        self.respond_inline(id, err, false);
                    }
                    ShedPolicy::DropConnection => self.close(id),
                }
            }
            Err(TrySendError::Disconnected(_)) => self.close(id),
        }
    }

    /// Write a reactor-generated error response (parse failure or shed)
    /// on the reactor thread, spilling to `Writing` state if the socket
    /// blocks.
    fn respond_inline(&mut self, id: u64, err: ServeError, keep_alive: bool) {
        let (status, body) = err.to_response();
        count_status(&self.shared, status);
        let bytes = response_bytes(status, "application/json", body.as_bytes(), keep_alive);
        self.start_write(id, bytes, 0, keep_alive);
    }

    /// Begin (or continue) draining `bytes[off..]` to the socket.
    fn start_write(&mut self, id: u64, bytes: Vec<u8>, off: usize, keep_alive: bool) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        match write_nonblocking(&conn.stream, &bytes, off) {
            Ok(done) if done == bytes.len() => self.finish_response(id, keep_alive),
            Ok(off) => {
                conn.state = ConnState::Writing { bytes, off, keep_alive };
                conn.since = Instant::now();
                let _ = self.poller.modify(conn.stream.as_raw_fd(), id, Interest::WRITE);
            }
            Err(_) => self.close(id),
        }
    }

    fn on_writable(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if !matches!(conn.state, ConnState::Writing { .. }) {
            return; // spurious writable event
        }
        let ConnState::Writing { bytes, off, keep_alive } =
            std::mem::replace(&mut conn.state, ConnState::Reading)
        else {
            unreachable!()
        };
        self.start_write(id, bytes, off, keep_alive);
    }

    /// A response has been fully written: close, or rearm for the next
    /// request (parsing any pipelined bytes already buffered).
    fn finish_response(&mut self, id: u64, keep_alive: bool) {
        if !keep_alive || self.draining {
            self.close(id);
            return;
        }
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.errored {
            self.close(id);
            return;
        }
        conn.state = ConnState::Reading;
        conn.since = Instant::now();
        let _ = self.poller.modify(conn.stream.as_raw_fd(), id, Interest::READ);
        self.advance(id);
    }

    fn on_completion(&mut self, c: Completion) {
        let Some(conn) = self.conns.get_mut(&c.conn_id) else { return };
        debug_assert!(matches!(conn.state, ConnState::Dispatched));
        match c.outcome {
            WriteOutcome::Failed => self.close(c.conn_id),
            WriteOutcome::Done { keep_alive } => {
                // finish_response handles the errored flag and pipelined
                // successors; put the conn back in Reading first.
                conn.state = ConnState::Reading;
                self.finish_response(c.conn_id, keep_alive);
            }
            WriteOutcome::Blocked { bytes, off, keep_alive } => {
                if conn.errored {
                    self.close(c.conn_id);
                } else {
                    conn.state = ConnState::Reading; // placeholder; start_write sets Writing
                    self.start_write(c.conn_id, bytes, off, keep_alive);
                }
            }
        }
    }

    fn sweep_timeouts(&mut self, now: Instant) {
        let cfg = &self.cfg;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                let age = now.duration_since(c.since);
                match &c.state {
                    ConnState::Reading if c.buf.is_empty() => age >= cfg.idle_timeout,
                    ConnState::Reading => age >= cfg.read_timeout,
                    ConnState::Writing { .. } => age >= cfg.write_timeout,
                    // A worker is computing: its runtime is not the
                    // socket's fault; no timeout applies.
                    ConnState::Dispatched => false,
                }
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.close(id);
        }
    }

    fn close(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            self.shared.metrics.connections.add(-1);
            // The fd itself closes when the last Arc clone drops — if a
            // worker still holds one, the close completes at its send.
        }
    }
}
