//! Linux `epoll(7)` backend for [`Poller`](super::Poller) — level-
//! triggered, declared via `extern "C"` against the libc std already
//! links (no external crate).

use super::{Event, Interest};
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// The kernel packs `struct epoll_event` on x86-64 only; everywhere
// else it has natural alignment. Getting this wrong corrupts the
// event array, so mirror the uapi header's `EPOLL_PACKED` exactly.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn events_bits(interest: Interest) -> u32 {
    let mut bits = EPOLLRDHUP;
    if interest.readable {
        bits |= EPOLLIN;
    }
    if interest.writable {
        bits |= EPOLLOUT;
    }
    bits
}

/// Level-triggered epoll instance.
pub(crate) struct Poller {
    epfd: RawFd,
}

impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall wrapper; -1 is checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: events_bits(interest), data: token };
        // SAFETY: `ev` outlives the call; fd validity is the
        // caller's contract (a closed fd surfaces as EBADF).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Wait for events; `None` timeout blocks indefinitely. Retries
    /// EINTR. Appends into `out` (cleared first).
    pub(crate) fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let mut raw = [EpollEvent { events: 0, data: 0 }; 512];
        let ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: `raw` is a valid writable array of the stated
            // length for the duration of the call.
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            for ev in raw.iter().take(n as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.epfd) };
    }
}
