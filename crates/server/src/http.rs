//! A minimal HTTP/1.1 subset — just enough for the query server:
//! request-line + headers + `Content-Length`-framed bodies, keep-alive,
//! and hard limits on every dimension of the input.
//!
//! The core is the *incremental* [`try_parse`]: it inspects a buffer of
//! bytes received so far and either yields a complete [`Request`] (plus
//! how many bytes it consumed, so pipelined successors stay in the
//! buffer) or reports how many more bytes it needs. The nonblocking
//! reactor calls it after every read; the blocking [`read_request`] is a
//! thin loop over the same function, so both paths share one grammar.
//!
//! Deliberately *not* supported: chunked transfer encoding, trailers,
//! continuation lines, HTTP/1.0 keep-alive negotiation. Anything outside
//! the subset is rejected with a 4xx before a body byte is trusted.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per request.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no query-string splitting; the API has none).
    pub path: String,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection may carry another request after this one.
    pub keep_alive: bool,
}

/// Why a read failed.
#[derive(Debug)]
pub enum ReadError {
    /// Transport error (includes read timeouts); the connection is dead.
    Io(std::io::Error),
    /// Protocol violation: respond with this status, then close.
    Bad(u16, String),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Outcome of [`try_parse`] over the bytes received so far.
#[derive(Debug)]
pub enum ParseStatus {
    /// A full request, and the number of buffer bytes it consumed.
    /// Bytes past `consumed` belong to the next pipelined request.
    Complete(Request, usize),
    /// More bytes required before a verdict.
    Partial {
        /// Minimum further bytes needed. Inside headers this is always 1
        /// (line lengths aren't known in advance); inside a body it is
        /// the exact remaining `Content-Length`.
        need: usize,
        /// Whether the headers are complete and only body bytes remain.
        /// Distinguishes EOF-mid-headers (a 400) from EOF-mid-body (an
        /// I/O error) for callers that observe the peer closing.
        in_body: bool,
    },
}

/// Pull the next `\n`-terminated line out of `buf` starting at `*pos`,
/// stripping an optional trailing `\r`. `Ok(None)` means the line is
/// still incomplete.
fn next_line<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Option<&'a str>, ReadError> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(i) => {
            let mut line = &rest[..i];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.len() > MAX_LINE {
                return Err(ReadError::Bad(431, "header line too long".into()));
            }
            *pos += i + 1;
            let s = std::str::from_utf8(line)
                .map_err(|_| ReadError::Bad(400, "non-utf8 header bytes".into()))?;
            Ok(Some(s))
        }
        None => {
            if rest.len() > MAX_LINE {
                return Err(ReadError::Bad(431, "header line too long".into()));
            }
            Ok(None)
        }
    }
}

/// Try to parse one request from the bytes received so far. Pure: does
/// no I/O and never mutates `buf`, so it is safe to call repeatedly as
/// bytes arrive.
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<ParseStatus, ReadError> {
    let mut pos = 0usize;
    let line = match next_line(buf, &mut pos)? {
        Some(l) => l,
        None => return Ok(ParseStatus::Partial { need: 1, in_body: false }),
    };
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(400, format!("malformed request line {line:?}")));
    }

    let mut content_length: usize = 0;
    // Keep-alive is the default only for HTTP/1.1; a 1.0 client that
    // doesn't negotiate it expects the server to close (it would
    // otherwise hang waiting for EOF until the read timeout).
    let mut keep_alive = version == "HTTP/1.1";
    let mut n_headers = 0usize;
    loop {
        let h = match next_line(buf, &mut pos)? {
            Some(h) => h,
            None => return Ok(ParseStatus::Partial { need: 1, in_body: false }),
        };
        if h.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(ReadError::Bad(431, "too many headers".into()));
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ReadError::Bad(400, format!("malformed header {h:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Bad(400, format!("bad content-length {value:?}")))?;
            }
            "transfer-encoding" => {
                return Err(ReadError::Bad(400, "chunked bodies not supported".into()));
            }
            "connection" if value.eq_ignore_ascii_case("close") => {
                keep_alive = false;
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(ReadError::Bad(413, format!("body of {content_length} bytes exceeds limit")));
    }
    let have = buf.len() - pos;
    if have < content_length {
        return Ok(ParseStatus::Partial { need: content_length - have, in_body: true });
    }
    let body = buf[pos..pos + content_length].to_vec();
    Ok(ParseStatus::Complete(Request { method, path, body, keep_alive }, pos + content_length))
}

/// Read one request from a blocking stream. `Ok(None)` means the peer
/// closed cleanly between requests (normal keep-alive teardown).
///
/// Reads are sized by [`try_parse`]'s `need` hints — one byte at a time
/// through the headers, then exactly the remaining body — so bytes
/// belonging to a pipelined successor are never pulled off the stream.
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, ReadError> {
    let mut buf = Vec::new();
    loop {
        let (need, in_body) = match try_parse(&buf, max_body)? {
            ParseStatus::Complete(req, _) => return Ok(Some(req)),
            ParseStatus::Partial { need, in_body } => (need, in_body),
        };
        if in_body {
            // The remaining body size is exact: read all of it at once.
            let start = buf.len();
            buf.resize(start + need, 0);
            r.read_exact(&mut buf[start..]).map_err(ReadError::Io)?;
        } else {
            let mut byte = [0u8; 1];
            let n = r.read(&mut byte).map_err(ReadError::Io)?;
            if n == 0 {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(ReadError::Bad(400, "eof inside headers".into()));
            }
            buf.push(byte[0]);
        }
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response; `keep_alive` controls the `Connection` header.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        conn
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Serialize one response to bytes (the reactor path writes these to a
/// nonblocking socket in pieces).
pub fn response_bytes(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    write_response(&mut out, status, content_type, body, keep_alive)
        .expect("writing to a Vec cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req(text: &str) -> Result<Option<Request>, ReadError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()), 1 << 20)
    }

    #[test]
    fn parses_get_without_body() {
        let r = req("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_post_with_content_length() {
        let r = req("POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap().unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let r = req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn http_10_defaults_to_close() {
        let r = req("GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 without keep-alive negotiation must close");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(req("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_400() {
        for bad in ["GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /x SPDY/3\r\n\r\n"] {
            match req(bad) {
                Err(ReadError::Bad(400, _)) => {}
                other => panic!("{bad:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let text = "POST /q HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        match read_request(&mut Cursor::new(text.as_bytes().to_vec()), 10) {
            Err(ReadError::Bad(413, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chunked_bodies_are_rejected() {
        match req("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            Err(ReadError::Bad(400, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_io_error() {
        match req("POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort") {
            Err(ReadError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_round_trips_through_the_writer() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    // ---- incremental-parser coverage (the reactor's exact read shape) ----

    #[test]
    fn try_parse_byte_at_a_time_reaches_complete() {
        let wire = b"POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        for cut in 0..wire.len() {
            match try_parse(&wire[..cut], 1 << 20).unwrap() {
                ParseStatus::Partial { need, in_body } => {
                    assert!(need >= 1, "prefix {cut}: need must be positive");
                    // Once headers are done, the need is the exact
                    // remaining body and is flagged as such.
                    if in_body {
                        assert_eq!(need, wire.len() - cut, "prefix {cut}");
                    }
                }
                other => panic!("prefix {cut} complete too early: {other:?}"),
            }
        }
        match try_parse(wire, 1 << 20).unwrap() {
            ParseStatus::Complete(r, consumed) => {
                assert_eq!(consumed, wire.len());
                assert_eq!(r.body, b"{\"a\":1}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn try_parse_leaves_pipelined_successor_in_buffer() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let (first, consumed) = match try_parse(wire, 1 << 20).unwrap() {
            ParseStatus::Complete(r, c) => (r, c),
            other => panic!("{other:?}"),
        };
        assert_eq!(first.method, "GET");
        assert_eq!(first.path, "/healthz");
        let rest = &wire[consumed..];
        match try_parse(rest, 1 << 20).unwrap() {
            ParseStatus::Complete(second, c) => {
                assert_eq!(second.method, "POST");
                assert_eq!(second.body, b"{}");
                assert_eq!(c, rest.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blocking_reader_does_not_eat_pipelined_bytes() {
        let wire = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut cur = Cursor::new(wire.as_bytes().to_vec());
        let a = read_request(&mut cur, 1 << 20).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        let b = read_request(&mut cur, 1 << 20).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert!(!b.keep_alive);
        assert!(read_request(&mut cur, 1 << 20).unwrap().is_none(), "clean EOF after both");
    }

    #[test]
    fn try_parse_empty_buffer_is_partial() {
        match try_parse(b"", 1 << 20).unwrap() {
            ParseStatus::Partial { need: 1, in_body: false } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn try_parse_rejects_oversized_header_line_before_newline() {
        let huge = vec![b'a'; MAX_LINE + 2];
        match try_parse(&huge, 1 << 20) {
            Err(ReadError::Bad(431, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn try_parse_413_fires_before_body_bytes_arrive() {
        // Headers alone are enough to reject an oversized body.
        let wire = b"POST /q HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        match try_parse(wire, 10) {
            Err(ReadError::Bad(413, _)) => {}
            other => panic!("{other:?}"),
        }
    }
}
