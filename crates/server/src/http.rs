//! A minimal HTTP/1.1 subset over blocking streams — just enough for the
//! query server: request-line + headers + `Content-Length`-framed bodies,
//! keep-alive, and hard limits on every dimension of the input.
//!
//! Deliberately *not* supported: chunked transfer encoding, trailers,
//! continuation lines, HTTP/1.0 keep-alive negotiation, pipelining beyond
//! what a strictly sequential read loop gives for free. Anything outside
//! the subset is rejected with a 4xx before a body byte is trusted.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Maximum number of headers per request.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no query-string splitting; the API has none).
    pub path: String,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
    /// Whether the connection may carry another request after this one.
    pub keep_alive: bool,
}

/// Why a read failed.
#[derive(Debug)]
pub enum ReadError {
    /// Transport error (includes read timeouts); the connection is dead.
    Io(std::io::Error),
    /// Protocol violation: respond with this status, then close.
    Bad(u16, String),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request. `Ok(None)` means the peer closed cleanly between
/// requests (normal keep-alive teardown).
pub fn read_request<R: BufRead>(r: &mut R, max_body: usize) -> Result<Option<Request>, ReadError> {
    let line = match read_line(r)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(400, format!("malformed request line {line:?}")));
    }

    let mut content_length: usize = 0;
    // Keep-alive is the default only for HTTP/1.1; a 1.0 client that
    // doesn't negotiate it expects the server to close (it would
    // otherwise hang waiting for EOF until the read timeout).
    let mut keep_alive = version == "HTTP/1.1";
    let mut n_headers = 0usize;
    loop {
        let h = match read_line(r)? {
            Some(h) => h,
            None => return Err(ReadError::Bad(400, "eof inside headers".into())),
        };
        if h.is_empty() {
            break;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(ReadError::Bad(431, "too many headers".into()));
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ReadError::Bad(400, format!("malformed header {h:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Bad(400, format!("bad content-length {value:?}")))?;
            }
            "transfer-encoding" => {
                return Err(ReadError::Bad(400, "chunked bodies not supported".into()));
            }
            "connection" if value.eq_ignore_ascii_case("close") => {
                keep_alive = false;
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(ReadError::Bad(413, format!("body of {content_length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok(Some(Request { method, path, body, keep_alive }))
}

/// Read one CRLF- (or bare-LF-) terminated line; `None` on immediate EOF.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, ReadError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = match r.read(&mut byte) {
            Ok(n) => n,
            Err(e) => return Err(ReadError::Io(e)),
        };
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(ReadError::Bad(400, "eof mid-line".into()));
        }
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            let s = String::from_utf8(buf)
                .map_err(|_| ReadError::Bad(400, "non-utf8 header bytes".into()))?;
            return Ok(Some(s));
        }
        buf.push(byte[0]);
        if buf.len() > MAX_LINE {
            return Err(ReadError::Bad(431, "header line too long".into()));
        }
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one response; `keep_alive` controls the `Connection` header.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        conn
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req(text: &str) -> Result<Option<Request>, ReadError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()), 1 << 20)
    }

    #[test]
    fn parses_get_without_body() {
        let r = req("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_post_with_content_length() {
        let r = req("POST /query HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap().unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let r = req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn http_10_defaults_to_close() {
        let r = req("GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 without keep-alive negotiation must close");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(req("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_400() {
        for bad in ["GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /x SPDY/3\r\n\r\n"] {
            match req(bad) {
                Err(ReadError::Bad(400, _)) => {}
                other => panic!("{bad:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let text = "POST /q HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        match read_request(&mut Cursor::new(text.as_bytes().to_vec()), 10) {
            Err(ReadError::Bad(413, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chunked_bodies_are_rejected() {
        match req("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            Err(ReadError::Bad(400, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_io_error() {
        match req("POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort") {
            Err(ReadError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_round_trips_through_the_writer() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
