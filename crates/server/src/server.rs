//! The server proper: reactor, worker pool, and update coordinator.
//!
//! Thread topology (all `std::thread`, no async runtime):
//!
//! * **reactor** (1) — owns the listener and every connection socket
//!   behind an epoll/poll readiness loop (the private `reactor` module;
//!   DESIGN.md §2.17 documents the state machine). Accepts,
//!   reads, and incrementally parses on nonblocking sockets; pushes
//!   *ready, fully-parsed requests* into a bounded queue. A full queue
//!   (or a connection count at `max_connections`) is saturation: the
//!   client gets an inline `503` per [`ShedPolicy`] (*load shedding* —
//!   fail fast instead of queueing unboundedly).
//! * **workers** (N) — pull ready requests off the shared queue and run
//!   the handler. Each request is wrapped in `catch_unwind`, so a
//!   handler panic costs one `500`, not a worker. The worker writes the
//!   response bytes straight to the nonblocking socket and notifies the
//!   reactor, which finishes any tail the socket wouldn't take.
//! * **coordinator** (1) — owns the mutable [`MaintainableEdb`]. Builds
//!   the initial allocation, then serially applies `/update` batches,
//!   invalidates the cache, and publishes fresh [`EdbSnapshot`]s.
//!
//! Shutdown: [`ServerHandle::shutdown`] (or drop) raises a flag and
//! wakes the reactor, which stops accepting, closes idle keep-alive
//! connections (the peer observes EOF), and drains in-flight responses;
//! dropping the ready queue stops the workers and dropping the update
//! sender stops the coordinator.

use crate::cache::{CacheKey, CachedResult, ShardedCache};
use crate::engine::{self, EngineHandle, Handler, Response};
use crate::http::Request;
use crate::snapshot::{resolve_level, resolve_region, EdbSnapshot};
use crate::wire;
pub use crate::wire::ServeError;
use iolap_core::maintain::EdbMutation;
use iolap_core::{
    allocate, Algorithm, AllocConfig, CompactionResult, MaintainableEdb, MutationWal, PolicySpec,
};
use iolap_model::{Fact, FactId, FactTable, RegionBox, MAX_DIMS};
use iolap_obs::{Counter, Gauge, Histogram, Obs};
use iolap_query::{aggregate_classical, Query};
use std::collections::{HashSet, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What to do with a connection the server cannot take on: over
/// `max_connections`, or a ready-request queue already full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Answer `503` (best-effort, never blocking the reactor) and close.
    Respond503,
    /// Close without a response — cheapest possible shed.
    DropConnection,
}

/// Tuning knobs for serving. Construct with [`ServeConfig::builder`];
/// the fields stay public for inspection and struct-literal updates.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request worker threads. Bounds concurrent *compute*, not
    /// concurrent connections (the reactor owns those).
    pub workers: usize,
    /// Bounded ready-request queue between the reactor and the workers;
    /// a full queue sheds load per [`ShedPolicy`].
    pub queue_depth: usize,
    /// Maximum concurrent connections; excess accepts are shed.
    pub max_connections: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
    /// How long a partially-received request may dribble in before the
    /// connection is closed.
    pub read_timeout: Duration,
    /// How long a response may take to drain to a slow client.
    pub write_timeout: Duration,
    /// How long an idle keep-alive connection is kept before closing.
    pub idle_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// What to do at saturation.
    pub shed: ShedPolicy,
    /// Observability handle. A disabled handle is silently upgraded to
    /// [`Obs::metrics_only`] so `/metrics` always has something to say.
    pub obs: Obs,
    /// The role this process reports in `/healthz` (`"single"` for a
    /// standalone server, `"shard"` when serving one cluster shard).
    pub role: String,
    /// Write-ahead log path. `Some` makes every `/update` durable before
    /// it is acknowledged and replays un-applied batches on startup;
    /// `None` keeps the purely in-memory write path.
    pub wal_path: Option<PathBuf>,
    /// Group-commit window. `ZERO` (the default) keeps the synchronous
    /// contract: each `/update` folds into the EDB before its response.
    /// A nonzero window acks at WAL-durable and defers the fold until
    /// the window elapses or [`group_frames`](Self::group_frames) WAL
    /// frames are staged, amortizing segment maintenance across batches.
    pub group_window: Duration,
    /// Staged-frame threshold that triggers an early fold when the
    /// group-commit window is nonzero.
    pub group_frames: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            max_connections: 8192,
            cache_capacity: 4096,
            cache_shards: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_body_bytes: 1 << 20,
            shed: ShedPolicy::Respond503,
            obs: Obs::disabled(),
            role: "single".into(),
            wal_path: None,
            group_window: Duration::ZERO,
            group_frames: 256,
        }
    }
}

impl ServeConfig {
    /// Start building a config from the defaults. Mirrors
    /// [`AllocConfig::builder`]: chain only the knobs you care about.
    ///
    /// ```
    /// use iolap_serve::{ServeConfig, ShedPolicy};
    /// use std::time::Duration;
    ///
    /// let cfg = ServeConfig::builder()
    ///     .workers(2)
    ///     .max_connections(10_000)
    ///     .idle_timeout(Duration::from_secs(30))
    ///     .shed(ShedPolicy::Respond503)
    ///     .build();
    /// assert_eq!(cfg.workers, 2);
    /// ```
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: ServeConfig::default() }
    }
}

/// Builder for [`ServeConfig`]; see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Request worker threads (compute concurrency).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Ready-request queue depth between the reactor and workers.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.cfg.queue_depth = n;
        self
    }

    /// Maximum concurrent connections before accepts are shed.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.cfg.max_connections = n;
        self
    }

    /// Result-cache capacity in entries (0 disables caching).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cfg.cache_capacity = n;
        self
    }

    /// Number of result-cache shards.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.cfg.cache_shards = n;
        self
    }

    /// Timeout for a partially-received request.
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.cfg.read_timeout = d;
        self
    }

    /// Timeout for draining a response to a slow client.
    pub fn write_timeout(mut self, d: Duration) -> Self {
        self.cfg.write_timeout = d;
        self
    }

    /// Timeout for idle keep-alive connections.
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.cfg.idle_timeout = d;
        self
    }

    /// Largest accepted request body, in bytes.
    pub fn max_body_bytes(mut self, n: usize) -> Self {
        self.cfg.max_body_bytes = n;
        self
    }

    /// Behavior at saturation (connection cap or full ready queue).
    pub fn shed(mut self, policy: ShedPolicy) -> Self {
        self.cfg.shed = policy;
        self
    }

    /// Observability handle.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Role reported in `/healthz` (`"single"` or `"shard"`).
    pub fn role(mut self, role: impl Into<String>) -> Self {
        self.cfg.role = role.into();
        self
    }

    /// Write-ahead log path (durable acks + startup replay).
    pub fn wal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.wal_path = Some(path.into());
        self
    }

    /// Group-commit window (`ZERO` = synchronous folds).
    pub fn group_window(mut self, d: Duration) -> Self {
        self.cfg.group_window = d;
        self
    }

    /// Staged-frame threshold for an early fold in deferred mode.
    pub fn group_frames(mut self, n: u64) -> Self {
        self.cfg.group_frames = n;
        self
    }

    /// Finish building.
    pub fn build(self) -> ServeConfig {
        self.cfg
    }
}

/// Outcome of one applied `/update` batch (for the response body).
struct UpdateOutcome {
    epoch: u64,
    invalidated: u64,
    report: iolap_core::UpdateReport,
}

/// What the coordinator sends back for one `/update` batch.
enum UpdateReply {
    /// Folded into the EDB and (unless prepared) published: the full
    /// apply outcome for the classic response body.
    Applied(UpdateOutcome),
    /// Acknowledged at WAL-durable; the fold rides a later group-commit
    /// trigger. `epoch` is the epoch the batch will fold *after*.
    Durable { wal_batch: u64, staged: u64, epoch: u64 },
}

/// One request to the update coordinator.
enum CoordJob {
    /// Apply a mutation batch. With `prepare`, the resulting snapshot is
    /// *staged* (readers keep the old epoch) until a matching `Commit`.
    Update {
        muts: Vec<EdbMutation>,
        prepare: bool,
        reply: Sender<Result<UpdateReply, (u16, String)>>,
    },
    /// Publish the staged snapshot whose epoch matches.
    Commit { epoch: u64, reply: Sender<Result<(u64, u64), (u16, String)>> },
    /// A background segment merge finished (or failed); install it.
    CompactionDone(Box<Result<CompactionResult, String>>),
}

/// Application-level metric handles resolved once at startup (hot paths
/// never re-hash names); the transport-level handles live in the engine.
/// The server's `Obs` is always at least metrics-only.
pub(crate) struct ServeMetrics {
    req_query: Counter,
    req_rollup: Counter,
    req_update: Counter,
    req_epoch: Counter,
    req_metrics: Counter,
    req_healthz: Counter,
    cache_hit: Counter,
    cache_miss: Counter,
    cache_insert: Counter,
    cache_invalidated: Counter,
    cache_evicted: Counter,
    epoch: Gauge,
    /// Segment-layer counters for the answer path: pages actually
    /// scanned vs pages skipped by fence pruning, plus the published
    /// segment count and compactions run by the coordinator.
    pages_read: Counter,
    pages_pruned: Counter,
    bytes_read: Counter,
    /// Cuboid-lattice counters for `/rollup`: per-view planner decisions
    /// (a hit answers the region's grain-aligned core from a materialized
    /// cuboid; a miss leaf-scans that view), plus the encoded bytes of
    /// the published lattice.
    cuboid_hits: Counter,
    cuboid_misses: Counter,
    cuboid_bytes: Gauge,
    edb_segments: Gauge,
    edb_compactions: Counter,
    /// Aggregate compression ratio of the published segments, in
    /// milli-units (1000 = row layout, 1700 = 1.7×).
    compression_ratio: Gauge,
    /// Streaming-ingest instruments: WAL bytes appended, WAL batches
    /// replayed at startup, durable-but-unfolded backlog frames, folds
    /// of staged batches into delta segments, group-commit fsync
    /// latency, and whether a background merge is in flight.
    ingest_wal_bytes: Counter,
    ingest_recovered: Counter,
    ingest_backlog: Gauge,
    ingest_folds: Counter,
    ingest_group_commit_us: Histogram,
    ingest_compaction_queue: Gauge,
}

impl ServeMetrics {
    fn new(obs: &Obs) -> Self {
        let c = |n: &str| obs.counter(n).expect("server obs is always enabled");
        ServeMetrics {
            req_query: c("serve.requests.query"),
            req_rollup: c("serve.requests.rollup"),
            req_update: c("serve.requests.update"),
            req_epoch: c("serve.requests.epoch"),
            req_metrics: c("serve.requests.metrics"),
            req_healthz: c("serve.requests.healthz"),
            cache_hit: c("serve.cache.hit"),
            cache_miss: c("serve.cache.miss"),
            cache_insert: c("serve.cache.insert"),
            cache_invalidated: c("serve.cache.invalidated"),
            cache_evicted: c("serve.cache.evicted"),
            epoch: obs.gauge("serve.epoch").expect("enabled"),
            pages_read: c("edb.pages_read"),
            pages_pruned: c("edb.pages_pruned"),
            bytes_read: c("edb.bytes_read"),
            cuboid_hits: c("edb.cuboid_hits"),
            cuboid_misses: c("edb.cuboid_misses"),
            cuboid_bytes: obs.gauge("edb.cuboid_bytes").expect("enabled"),
            edb_segments: obs.gauge("edb.segments").expect("enabled"),
            edb_compactions: c("edb.compactions"),
            compression_ratio: obs.gauge("edb.compression_ratio").expect("enabled"),
            ingest_wal_bytes: c("ingest.wal_bytes"),
            ingest_recovered: c("ingest.recovered_batches"),
            ingest_backlog: obs.gauge("ingest.backlog").expect("enabled"),
            ingest_folds: c("ingest.folds"),
            ingest_group_commit_us: obs.histogram("ingest.group_commit_us").expect("enabled"),
            ingest_compaction_queue: obs.gauge("ingest.compaction_queue").expect("enabled"),
        }
    }
}

/// Aggregate compression ratio of a snapshot's segments in milli-units
/// (1000 = uncompressed row layout). Weighted by entry bytes, so one big
/// compressed base segment dominates many tiny row deltas.
fn compression_milli(segments: &[iolap_core::SegmentView]) -> i64 {
    let raw: u64 = segments.iter().map(|v| v.segment.uncompressed_bytes()).sum();
    let enc: u64 = segments.iter().map(|v| v.segment.encoded_bytes()).sum();
    if enc == 0 {
        1000
    } else {
        (raw as f64 / enc as f64 * 1000.0) as i64
    }
}

/// State shared by the request handlers and the coordinator.
pub(crate) struct Shared {
    snapshot: Mutex<Arc<EdbSnapshot>>,
    cache: ShardedCache,
    cache_enabled: bool,
    obs: Obs,
    pub(crate) metrics: ServeMetrics,
    update_tx: Mutex<Option<Sender<CoordJob>>>,
    role: String,
    /// Set when a maintenance batch failed partway: the EDB may be
    /// inconsistent with the published snapshot, so further `/update`s
    /// are refused (503) and `/healthz` reports degraded. Reads keep
    /// serving the last consistent snapshot.
    poisoned: AtomicBool,
    /// WAL frames acknowledged durable but not yet folded into a delta
    /// segment; `/healthz` reports it so operators (and the smoke test)
    /// can watch the group-commit backlog drain.
    wal_backlog: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> Arc<EdbSnapshot> {
        self.snapshot.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// The server. Construct with [`Server::builder`]; the returned
/// [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Start building a server for `table` under `policy` (Transitive —
    /// required for maintenance). Finish with [`ServerBuilder::bind`].
    pub fn builder(table: FactTable, policy: PolicySpec) -> ServerBuilder {
        ServerBuilder { table, policy, alloc: AllocConfig::default(), cfg: ServeConfig::default() }
    }
}

/// Builder for a running server; see [`Server::builder`].
///
/// ```no_run
/// use iolap_serve::{Server, ServeConfig};
/// use iolap_core::{AllocConfig, PolicySpec};
/// use iolap_model::paper_example;
///
/// let handle = Server::builder(paper_example::table1(), PolicySpec::em_count(0.01))
///     .alloc(AllocConfig::builder().in_memory(256).build())
///     .config(ServeConfig::builder().workers(2).build())
///     .bind("127.0.0.1:0")?;
/// println!("listening on {}", handle.addr());
/// handle.shutdown();
/// # Ok::<(), iolap_serve::ServeError>(())
/// ```
pub struct ServerBuilder {
    table: FactTable,
    policy: PolicySpec,
    alloc: AllocConfig,
    cfg: ServeConfig,
}

impl ServerBuilder {
    /// Allocation config for the initial EDB build.
    pub fn alloc(mut self, alloc: AllocConfig) -> Self {
        self.alloc = alloc;
        self
    }

    /// Serving config (see [`ServeConfig::builder`]).
    pub fn config(mut self, cfg: ServeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Bind `addr` and serve.
    ///
    /// Blocks until the initial allocation is built and the socket is
    /// listening, so a returned handle is immediately queryable.
    pub fn bind(self, addr: &str) -> Result<ServerHandle, ServeError> {
        let ServerBuilder { table, policy, alloc, cfg } = self;
        let obs = if cfg.obs.is_enabled() { cfg.obs.clone() } else { Obs::metrics_only() };
        let metrics = ServeMetrics::new(&obs);

        // The coordinator builds the allocation inside its own thread and
        // owns the MaintainableEdb for its whole life; startup blocks on
        // the readiness channel below.
        let (ready_tx, ready_rx) = mpsc::channel::<Result<Arc<EdbSnapshot>, String>>();
        let (shared_tx, shared_rx) = mpsc::channel::<Arc<Shared>>();
        let (update_tx, update_rx) = mpsc::channel::<CoordJob>();
        let ingest = IngestCfg {
            wal_path: cfg.wal_path.clone(),
            group_window: cfg.group_window,
            group_frames: cfg.group_frames.max(1),
        };
        let coordinator = std::thread::Builder::new()
            .name("iolap-serve-coord".into())
            .spawn(move || {
                coordinator_main(table, policy, alloc, ingest, ready_tx, shared_rx, update_rx)
            })
            .map_err(ServeError::Io)?;

        let first = match ready_rx.recv() {
            Ok(Ok(snap)) => snap,
            Ok(Err(msg)) => {
                let _ = coordinator.join();
                return Err(ServeError::Init(msg));
            }
            Err(_) => {
                let _ = coordinator.join();
                return Err(ServeError::Init("coordinator died during startup".into()));
            }
        };

        metrics.epoch.set(first.epoch as i64);
        metrics.edb_segments.set(first.segments.len() as i64);
        metrics.compression_ratio.set(compression_milli(&first.segments));
        let shared = Arc::new(Shared {
            snapshot: Mutex::new(first),
            cache: ShardedCache::new(cfg.cache_capacity.max(1), cfg.cache_shards),
            cache_enabled: cfg.cache_capacity > 0,
            obs: obs.clone(),
            metrics,
            update_tx: Mutex::new(Some(update_tx)),
            role: cfg.role.clone(),
            poisoned: AtomicBool::new(false),
            wal_backlog: AtomicU64::new(0),
        });
        // Hand the coordinator its view of the shared state; it only now
        // enters the update loop.
        let _ = shared_tx.send(shared.clone());

        let app = Arc::new(ServerApp { shared: shared.clone() });
        let engine = engine::start(addr, &cfg, "serve", "serve", &obs, app)?;
        Ok(ServerHandle { shared, engine, coordinator: Some(coordinator) })
    }
}

/// The single-node application behind the engine.
struct ServerApp {
    shared: Arc<Shared>,
}

impl Handler for ServerApp {
    fn handle(&self, req: &Request) -> Response {
        handle_request(req, &self.shared)
    }
}

/// A running server. Dropping it (or calling [`shutdown`]) stops every
/// thread gracefully: in-flight requests finish, idle keep-alive
/// connections observe EOF, then the workers, reactor, and coordinator
/// exit.
///
/// [`shutdown`]: ServerHandle::shutdown
pub struct ServerHandle {
    shared: Arc<Shared>,
    engine: EngineHandle,
    coordinator: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` for an OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.engine.addr()
    }

    /// The observability handle (always at least metrics-only).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The currently published snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshot().epoch
    }

    /// Stop accepting, drain, and join every thread.
    pub fn shutdown(self) {
        // Drop runs the teardown.
    }

    fn stop(&mut self) {
        // Stop the coordinator: no sender, no more jobs (in-flight
        // requests hold clones; the coordinator exits when the engine
        // drains them).
        self.shared.update_tx.lock().unwrap_or_else(|p| p.into_inner()).take();
        // Drain in-flight responses, join the reactor and workers.
        self.engine.stop();
        if let Some(c) = self.coordinator.take() {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// Route a [`ServeError`] through the one status + JSON body mapping.
fn err_response(err: ServeError) -> Response {
    let (status, body) = err.to_response();
    (status, "application/json", body)
}

pub(crate) fn handle_request(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.req_healthz.inc();
            let ok = !shared.poisoned.load(Ordering::Acquire);
            let status = if ok { 200 } else { 503 };
            let backlog = shared.wal_backlog.load(Ordering::Relaxed);
            let body = wire::health_response(shared.snapshot().epoch, ok, &shared.role, backlog);
            (status, "application/json", body)
        }
        ("GET", "/metrics") => {
            shared.metrics.req_metrics.inc();
            let text = shared.obs.metrics().map(|m| m.to_prometheus()).unwrap_or_default();
            (200, "text/plain; version=0.0.4", text)
        }
        ("POST", "/query") => {
            shared.metrics.req_query.inc();
            handle_query(&req.body, shared)
        }
        ("POST", "/rollup") => {
            shared.metrics.req_rollup.inc();
            handle_rollup(&req.body, shared)
        }
        ("POST", "/update") => {
            shared.metrics.req_update.inc();
            handle_update(&req.body, shared)
        }
        ("POST", "/epoch") => {
            shared.metrics.req_epoch.inc();
            handle_commit(&req.body, shared)
        }
        (_, "/healthz" | "/metrics" | "/query" | "/rollup" | "/update" | "/epoch") => {
            err_response(ServeError::MethodNotAllowed("method not allowed".into()))
        }
        _ => err_response(ServeError::NotFound("no such endpoint".into())),
    }
}

fn bad_request(msg: &str) -> Response {
    err_response(ServeError::BadRequest(msg.into()))
}

fn utf8_body(body: &[u8]) -> Result<&str, Response> {
    std::str::from_utf8(body).map_err(|_| bad_request("request body must be UTF-8"))
}

/// Resolve the request's region: an explicit `"box"` wins over the
/// name-based `"region"` (the router sends clipped boxes; humans send
/// names). The box must name exactly the schema's dimensions.
fn request_region(
    schema: &iolap_model::Schema,
    at: &[(String, String)],
    raw: &Option<Vec<(u32, u32)>>,
) -> Result<RegionBox, String> {
    match raw {
        None => resolve_region(schema, at),
        Some(b) => {
            if b.len() != schema.k() {
                return Err(format!(
                    "\"box\" has {} intervals, schema has {}",
                    b.len(),
                    schema.k()
                ));
            }
            let mut lo = [0u32; MAX_DIMS];
            let mut hi = [0u32; MAX_DIMS];
            for (d, (l, h)) in b.iter().enumerate() {
                lo[d] = *l;
                hi[d] = *h;
            }
            Ok(RegionBox { lo, hi, k: schema.k() as u8 })
        }
    }
}

fn handle_query(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let q = match wire::parse_query(body) {
        Ok(q) => q,
        Err(msg) => return bad_request(&msg),
    };
    let snap = shared.snapshot();
    let region = match request_region(&snap.schema, &q.at, &q.raw_box) {
        Ok(r) => r,
        Err(msg) => return bad_request(&msg),
    };

    if q.parts {
        // Scatter-gather leg: return the canonical (view, slab) chunks
        // instead of the folded total, so the router can merge shards
        // bit-identically. Not cached (the router caches at its level).
        if q.classical.is_some() {
            return bad_request("\"parts\" and \"classical\" are mutually exclusive");
        }
        let (parts, stats) = match snap.aggregate_parts(&region) {
            Ok(ps) => ps,
            Err(e) => return err_response(ServeError::Internal(format!("scan failed: {e}"))),
        };
        shared.metrics.pages_read.add(stats.pages_read);
        shared.metrics.pages_pruned.add(stats.pages_pruned);
        shared.metrics.bytes_read.add(stats.bytes_read);
        return (200, "application/json", wire::parts_response(&parts, q.agg, snap.epoch));
    }

    let key = CacheKey::new(&region, q.agg, q.classical);
    if shared.cache_enabled {
        if let Some(hit) = shared.cache.get(&key) {
            shared.metrics.cache_hit.inc();
            let body = wire::query_response(&hit.result, q.agg, true, hit.epoch);
            return (200, "application/json", body);
        }
        shared.metrics.cache_miss.inc();
    }

    let result = match q.classical {
        Some(sem) => {
            let query = Query { region, agg: q.agg };
            aggregate_classical(&snap.table, &query, sem)
        }
        None => {
            // A corrupt compressed page surfaces from the cursor as the
            // storage error it is — a 500, never a silent short answer.
            let (result, stats) = match snap.aggregate_with_stats(&region, q.agg) {
                Ok(rs) => rs,
                Err(e) => {
                    return err_response(ServeError::Internal(format!("scan failed: {e}")));
                }
            };
            shared.metrics.pages_read.add(stats.pages_read);
            shared.metrics.pages_pruned.add(stats.pages_pruned);
            shared.metrics.bytes_read.add(stats.bytes_read);
            result
        }
    };
    if shared.cache_enabled {
        let out = shared.cache.insert(key, CachedResult { result, epoch: snap.epoch });
        if out.inserted {
            shared.metrics.cache_insert.inc();
        }
        shared.metrics.cache_evicted.add(out.evicted);
    }
    (200, "application/json", wire::query_response(&result, q.agg, false, snap.epoch))
}

fn handle_rollup(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let r = match wire::parse_rollup(body) {
        Ok(r) => r,
        Err(msg) => return bad_request(&msg),
    };
    let snap = shared.snapshot();
    let (dim, level) = match resolve_level(&snap.schema, &r.dim, &r.level) {
        Ok(dl) => dl,
        Err(msg) => return bad_request(&msg),
    };
    let region = match request_region(&snap.schema, &r.at, &r.raw_box) {
        Ok(rg) => rg,
        Err(msg) => return bad_request(&msg),
    };
    if r.parts || r.plan == wire::RollupPlan::Scan {
        // The chunked scan plan: per-row (view, slab) chunks folded in
        // canonical order. This is the cluster-mergeable contract — a
        // router merge over shard parts is bit-identical to this plan on
        // a single node (the lattice plan groups additions differently).
        let (rows, stats) = match snap.rollup_scan_parts(dim, level, Some(&region)) {
            Ok(rs) => rs,
            Err(e) => return err_response(ServeError::Internal(format!("scan failed: {e}"))),
        };
        shared.metrics.pages_read.add(stats.pages_read);
        shared.metrics.pages_pruned.add(stats.pages_pruned);
        shared.metrics.bytes_read.add(stats.bytes_read);
        let body = if r.parts {
            wire::rollup_parts_response(&rows, r.agg, snap.epoch)
        } else {
            let rows = iolap_query::finish_rollup_parts(&rows, r.agg);
            wire::rollup_response(&rows, r.agg, snap.epoch)
        };
        return (200, "application/json", body);
    }
    let (rows, stats) = match snap.rollup(dim, level, Some(&region), r.agg) {
        Ok(rs) => rs,
        Err(e) => {
            return err_response(ServeError::Internal(format!("scan failed: {e}")));
        }
    };
    shared.metrics.pages_read.add(stats.scan.pages_read);
    shared.metrics.pages_pruned.add(stats.scan.pages_pruned);
    shared.metrics.bytes_read.add(stats.scan.bytes_read);
    shared.metrics.cuboid_hits.add(stats.cuboid_hits);
    shared.metrics.cuboid_misses.add(stats.cuboid_misses);
    (200, "application/json", wire::rollup_response(&rows, r.agg, snap.epoch))
}

fn handle_update(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let upd = match wire::parse_update(body) {
        Ok(m) => m,
        Err(msg) => return bad_request(&msg),
    };
    let snap = shared.snapshot();
    let mut muts = Vec::with_capacity(upd.muts.len());
    for (i, m) in upd.muts.into_iter().enumerate() {
        muts.push(match m {
            wire::MutationReq::Update { fact_id, measure } => {
                EdbMutation::UpdateMeasure { fact_id, new_measure: measure }
            }
            wire::MutationReq::Delete { fact_id } => EdbMutation::Delete(fact_id),
            wire::MutationReq::Insert { id, dims, measure } => {
                let k = snap.schema.k();
                if dims.len() != k {
                    return bad_request(&format!(
                        "mutation {i}: expected {k} dims, got {}",
                        dims.len()
                    ));
                }
                let mut fact_dims = [0u32; MAX_DIMS];
                for (d, name) in dims.iter().enumerate() {
                    let h = snap.schema.dim(d);
                    let Some(node) = h.node_by_name(name) else {
                        return bad_request(&format!(
                            "mutation {i}: unknown node {name:?} in dimension {:?}",
                            h.name()
                        ));
                    };
                    fact_dims[d] = node.0;
                }
                EdbMutation::Insert(Fact { id, dims: fact_dims, measure })
            }
        });
    }

    // Enqueue for the coordinator and wait for the published epoch.
    if shared.poisoned.load(Ordering::Acquire) {
        return err_response(ServeError::Unavailable(
            "maintenance failed earlier; updates disabled (reads still serve the last consistent snapshot)".into(),
        ));
    }
    let tx = shared.update_tx.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let Some(tx) = tx else {
        return err_response(ServeError::Unavailable("server is shutting down".into()));
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(CoordJob::Update { muts, prepare: upd.prepare, reply: reply_tx }).is_err() {
        return err_response(ServeError::Unavailable("server is shutting down".into()));
    }
    match reply_rx.recv() {
        Ok(Ok(UpdateReply::Applied(out))) => {
            let r = &out.report;
            let body = wire::update_response(
                out.epoch,
                out.invalidated,
                r.affected_components,
                r.affected_tuples,
                r.entries_rewritten,
                r.merges,
                r.splits,
            );
            (200, "application/json", body)
        }
        Ok(Ok(UpdateReply::Durable { wal_batch, staged, epoch })) => {
            (200, "application/json", wire::staged_response(wal_batch, staged, epoch))
        }
        Ok(Err((status, msg))) => err_response(ServeError::from_status(status, msg)),
        Err(_) => err_response(ServeError::Internal("update coordinator died".into())),
    }
}

/// `POST /epoch` — publish the staged snapshot prepared by a
/// `{"prepare": true}` update (phase two of the cluster's cross-shard
/// epoch flip).
fn handle_commit(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let epoch = match wire::parse_commit(body) {
        Ok(e) => e,
        Err(msg) => return bad_request(&msg),
    };
    if shared.poisoned.load(Ordering::Acquire) {
        return err_response(ServeError::Unavailable(
            "maintenance failed earlier; updates disabled (reads still serve the last consistent snapshot)".into(),
        ));
    }
    let tx = shared.update_tx.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let Some(tx) = tx else {
        return err_response(ServeError::Unavailable("server is shutting down".into()));
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(CoordJob::Commit { epoch, reply: reply_tx }).is_err() {
        return err_response(ServeError::Unavailable("server is shutting down".into()));
    }
    match reply_rx.recv() {
        Ok(Ok((epoch, invalidated))) => {
            (200, "application/json", wire::commit_response(epoch, invalidated))
        }
        Ok(Err((status, msg))) => err_response(ServeError::from_status(status, msg)),
        Err(_) => err_response(ServeError::Internal("update coordinator died".into())),
    }
}

// ---------------------------------------------------------------------------
// Update coordinator
// ---------------------------------------------------------------------------

/// Ingest knobs handed to the coordinator (a slice of [`ServeConfig`]).
struct IngestCfg {
    wal_path: Option<PathBuf>,
    group_window: Duration,
    group_frames: u64,
}

/// One accepted-but-unfolded batch: its mutations are WAL-durable and
/// its `/update` already answered.
struct PendingBatch {
    muts: Vec<EdbMutation>,
}

const POISONED_MSG: &str =
    "maintenance failed earlier; updates disabled (reads still serve the last consistent snapshot)";

type UpdateJob = (Vec<EdbMutation>, bool, Sender<Result<UpdateReply, (u16, String)>>);

fn coordinator_main(
    table: FactTable,
    policy: PolicySpec,
    alloc: AllocConfig,
    ingest: IngestCfg,
    ready_tx: Sender<Result<Arc<EdbSnapshot>, String>>,
    shared_rx: Receiver<Arc<Shared>>,
    update_rx: Receiver<CoordJob>,
) {
    // Build the initial allocation. Maintenance requires Transitive (the
    // component index is piggybacked on its component-processing step).
    let built = allocate(&table, &policy, Algorithm::Transitive, &alloc)
        .and_then(|run| MaintainableEdb::build(run, policy.clone()));
    let mut medb = match built {
        Ok(m) => m,
        Err(e) => {
            let _ = ready_tx.send(Err(format!("{e}")));
            return;
        }
    };
    // From here on compaction runs off the apply path: folds only stage
    // the need, and the merge happens on a background thread whose
    // result installs through the usual epoch-swap publish.
    medb.set_background_compaction(true);
    let mut mirror = table; // fact-table mirror for classical baselines
    let mut acked_ids: HashSet<FactId> = mirror.facts().iter().map(|f| f.id).collect();
    let mut epoch = 0u64;

    // Recover the write-ahead log *before* the first snapshot publishes.
    // Each committed WAL batch replays through the same `apply_batch`
    // path at the same batch granularity, so the recovered EDB — and the
    // epoch — are bit-identical to a synchronous replay of the
    // acknowledged history. A torn tail was never acknowledged and is
    // truncated by `open`; true corruption refuses to start.
    let mut wal: Option<MutationWal> = None;
    let mut recovered = 0u64;
    if let Some(path) = &ingest.wal_path {
        match MutationWal::open_or_create(path, medb.io_stats()) {
            Ok((w, rec)) => {
                for muts in &rec.batches {
                    if let Err(e) = fold_batch(&mut medb, &mut mirror, muts) {
                        let _ =
                            ready_tx.send(Err(format!("WAL replay failed at batch {epoch}: {e}")));
                        return;
                    }
                    apply_id_effects(&mut acked_ids, muts);
                    epoch += 1;
                    recovered += 1;
                }
                wal = Some(w);
            }
            Err(e) => {
                let _ = ready_tx.send(Err(format!("WAL recovery failed: {e}")));
                return;
            }
        }
    }

    let schema = medb.schema().clone();
    let segments = match medb.snapshot_segments() {
        Ok(s) => s,
        Err(e) => {
            let _ = ready_tx.send(Err(format!("snapshot failed: {e}")));
            return;
        }
    };
    // The lattice is an accelerator: if its build fails, publish `None`
    // and serve leaf scans rather than refusing to start.
    let lattice = medb.snapshot_lattice().ok();
    let first = Arc::new(EdbSnapshot {
        epoch,
        schema: schema.clone(),
        table: Arc::new(mirror.clone()),
        segments,
        lattice: lattice.clone(),
    });
    if ready_tx.send(Ok(first)).is_err() {
        return;
    }
    let Ok(shared) = shared_rx.recv() else {
        return;
    };
    shared.metrics.cuboid_bytes.set(lattice.as_ref().map_or(0, |l| l.encoded_bytes()) as i64);
    shared.metrics.ingest_recovered.add(recovered);
    let wal_bytes_seen = wal.as_ref().map_or(0, |w| w.appended_bytes());
    shared.metrics.ingest_wal_bytes.add(wal_bytes_seen);

    let compactions_seen = medb.num_compactions();
    let coord = Coord {
        medb,
        mirror,
        acked_ids,
        epoch,
        wal,
        wal_bytes_seen,
        shared,
        ingest,
        compactions_seen,
        staged: None,
        pending: VecDeque::new(),
        pending_frames: 0,
        oldest_pending: None,
        compaction_thread: None,
    };
    coord.run(update_rx);
}

/// The update coordinator's working state (one thread owns it all).
struct Coord {
    medb: MaintainableEdb,
    mirror: FactTable,
    /// Ids as of the last *acknowledged* batch — includes the deferred
    /// backlog, so validation at ack time sees pending effects.
    acked_ids: HashSet<FactId>,
    epoch: u64,
    wal: Option<MutationWal>,
    wal_bytes_seen: u64,
    shared: Arc<Shared>,
    ingest: IngestCfg,
    compactions_seen: u64,
    staged: Option<Staged>,
    pending: VecDeque<PendingBatch>,
    pending_frames: u64,
    oldest_pending: Option<Instant>,
    compaction_thread: Option<JoinHandle<()>>,
}

impl Coord {
    fn run(mut self, update_rx: Receiver<CoordJob>) {
        loop {
            let job = match self.oldest_pending {
                // Nothing staged: block until the next job or shutdown.
                None => match update_rx.recv() {
                    Ok(j) => j,
                    Err(_) => break,
                },
                // Deferred batches wait at most `group_window` past the
                // oldest ack before folding.
                Some(t0) => {
                    let deadline = t0 + self.ingest.group_window;
                    let now = Instant::now();
                    if deadline <= now {
                        self.fold_pending();
                        continue;
                    }
                    match update_rx.recv_timeout(deadline - now) {
                        Ok(j) => j,
                        Err(RecvTimeoutError::Timeout) => {
                            self.fold_pending();
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            match job {
                CoordJob::Update { muts, prepare, reply } => {
                    // Group-commit drain: updates already queued behind
                    // this one ride the same fsync. Stop at the first
                    // non-update job so FIFO order is preserved.
                    let mut group: Vec<UpdateJob> = vec![(muts, prepare, reply)];
                    let mut tail = None;
                    while let Ok(next) = update_rx.try_recv() {
                        match next {
                            CoordJob::Update { muts, prepare, reply } => {
                                group.push((muts, prepare, reply));
                            }
                            other => {
                                tail = Some(other);
                                break;
                            }
                        }
                    }
                    self.handle_group(group);
                    match tail {
                        Some(CoordJob::Update { muts, prepare, reply }) => {
                            self.handle_group(vec![(muts, prepare, reply)]);
                        }
                        Some(CoordJob::Commit { epoch, reply }) => self.handle_commit(epoch, reply),
                        Some(CoordJob::CompactionDone(result)) => {
                            self.handle_compaction_done(*result);
                        }
                        None => {}
                    }
                }
                CoordJob::Commit { epoch, reply } => self.handle_commit(epoch, reply),
                CoordJob::CompactionDone(result) => self.handle_compaction_done(*result),
            }
        }
        // Graceful shutdown (stdin EOF / handle drop): every batch below
        // was acknowledged durable, so flush the backlog into a delta
        // segment before exit — restart then replays nothing.
        self.fold_pending();
        if let Some(h) = self.compaction_thread.take() {
            let _ = h.join();
        }
    }

    /// Validate, WAL-append, group-fsync, then fold or stage one group
    /// of `/update` batches.
    fn handle_group(&mut self, group: Vec<UpdateJob>) {
        let t0 = Instant::now();
        // Phase 1: validate in arrival order against the acknowledged id
        // set and append accepted batches to the WAL (not yet synced).
        let mut accepted: Vec<(Vec<EdbMutation>, bool, _, Option<u64>)> = Vec::new();
        for (muts, prepare, reply) in group {
            if self.shared.poisoned.load(Ordering::Acquire) {
                let _ = reply.send(Err((503, POISONED_MSG.into())));
                continue;
            }
            if self.staged.is_some() {
                // apply_batch has no rollback, so a second batch on top
                // of an uncommitted one could never be abandoned; refuse.
                let _ = reply.send(Err((409, "a prepared batch is pending commit".into())));
                continue;
            }
            if let Err((status, msg)) = validate_batch(&mut self.acked_ids, &muts) {
                let _ = reply.send(Err((status, msg)));
                continue;
            }
            let wal_batch = match &mut self.wal {
                None => None,
                Some(w) => match w.append_batch(&muts) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        // The log is broken mid-frame; a later append
                        // could commit orphaned frames, so the write
                        // path poisons rather than guessing.
                        self.shared.poisoned.store(true, Ordering::Release);
                        let _ = reply.send(Err((500, format!("WAL append failed: {e}"))));
                        continue;
                    }
                },
            };
            accepted.push((muts, prepare, reply, wal_batch));
        }
        if accepted.is_empty() {
            return;
        }
        // Phase 2: one fsync covers every accepted batch in the group —
        // this is the whole point of group commit.
        if let Some(w) = &mut self.wal {
            if let Err(e) = w.sync() {
                self.shared.poisoned.store(true, Ordering::Release);
                for (_, _, reply, _) in accepted {
                    let reply: Sender<Result<UpdateReply, (u16, String)>> = reply;
                    let _ = reply.send(Err((500, format!("WAL fsync failed: {e}"))));
                }
                return;
            }
            let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.shared.metrics.ingest_group_commit_us.observe(micros);
            self.sync_wal_metrics();
        }
        // Phase 3: answer. Synchronous mode (and every prepare) folds
        // now; deferred mode acks at durable and stages the fold.
        let defer = self.ingest.group_window > Duration::ZERO && self.wal.is_some();
        for (muts, prepare, reply, wal_batch) in accepted {
            if self.shared.poisoned.load(Ordering::Acquire) {
                // A batch earlier in this group poisoned the EDB. This
                // one is WAL-durable and will replay on restart.
                let _ = reply.send(Err((503, POISONED_MSG.into())));
                continue;
            }
            if prepare || !defer {
                if prepare {
                    // The staged epoch must sit on top of the whole
                    // acknowledged history, not jump the backlog queue.
                    self.fold_pending();
                }
                let result = match self.fold_publish(&muts, prepare) {
                    Ok(out) => Ok(UpdateReply::Applied(out)),
                    Err(msg) => {
                        // apply_batch / snapshot_segments failed partway:
                        // the EDB may disagree with the mirror and the
                        // published snapshot, and apply_batch has no
                        // rollback. Poison: reads keep the last
                        // consistent snapshot, writes get 503.
                        self.shared.poisoned.store(true, Ordering::Release);
                        Err((500, msg))
                    }
                };
                self.sync_compaction_metric();
                let _ = reply.send(result);
            } else {
                self.pending_frames += muts.len() as u64;
                self.pending.push_back(PendingBatch { muts });
                if self.oldest_pending.is_none() {
                    self.oldest_pending = Some(Instant::now());
                }
                self.set_backlog();
                let _ = reply.send(Ok(UpdateReply::Durable {
                    wal_batch: wal_batch.unwrap_or(0),
                    staged: self.pending_frames,
                    epoch: self.epoch,
                }));
            }
        }
        if self.pending_frames >= self.ingest.group_frames {
            self.fold_pending();
        }
    }

    /// Fold every deferred batch into the EDB, one `apply_batch` per
    /// acknowledged batch (bit-identity demands the original batch
    /// granularity), publishing after each fold.
    fn fold_pending(&mut self) {
        if self.pending.is_empty() {
            self.oldest_pending = None;
            return;
        }
        if self.shared.poisoned.load(Ordering::Acquire) {
            // The backlog stays durable in the WAL for the next start;
            // the gauge keeps reporting it as unfolded.
            self.pending.clear();
            self.oldest_pending = None;
            return;
        }
        let folds = self.pending.len() as u64;
        while let Some(batch) = self.pending.pop_front() {
            match self.fold_publish(&batch.muts, false) {
                Ok(_) => self.pending_frames -= batch.muts.len() as u64,
                Err(_) => {
                    self.shared.poisoned.store(true, Ordering::Release);
                    self.pending.clear();
                    self.oldest_pending = None;
                    self.set_backlog();
                    return;
                }
            }
        }
        self.oldest_pending = None;
        self.set_backlog();
        self.shared.metrics.ingest_folds.add(folds);
        self.sync_compaction_metric();
    }

    /// Apply one batch, snapshot, bump the epoch, and publish (or stage
    /// when `prepare`). Then consider kicking off a background merge.
    /// An `Err` always means *poison* — the caller must set the flag.
    fn fold_publish(
        &mut self,
        muts: &[EdbMutation],
        prepare: bool,
    ) -> Result<UpdateOutcome, String> {
        let report = self.medb.apply_batch(muts).map_err(|e| format!("maintenance failed: {e}"))?;
        apply_mirror(&mut self.mirror, muts);

        // `snapshot_segments` reads only the EDB tail appended by this
        // batch and hands back the same `Arc`s for segments the batch
        // left alone, so publication cost is O(segments), not O(entries).
        let segments =
            self.medb.snapshot_segments().map_err(|e| format!("snapshot failed: {e}"))?;
        // Sync the cuboid lattice to the batch. A failure here degrades
        // the next epoch's `/rollup`s to leaf scans — never to wrong
        // answers — so it does not poison the coordinator.
        let lattice = self.medb.snapshot_lattice().ok();

        self.epoch += 1;
        let snap = Arc::new(EdbSnapshot {
            epoch: self.epoch,
            schema: self.medb.schema().clone(),
            table: Arc::new(self.mirror.clone()),
            segments,
            lattice,
        });
        let outcome = if prepare {
            // Phase one of the cluster's two-phase publish: the EDB has
            // the batch, readers keep the previous epoch until
            // `POST /epoch` commits. Nothing is invalidated yet.
            self.staged = Some(Staged { epoch: self.epoch, snap, touched: report.touched.clone() });
            UpdateOutcome { epoch: self.epoch, invalidated: 0, report }
        } else {
            let invalidated = publish(&self.shared, self.epoch, &snap, &report.touched);
            UpdateOutcome { epoch: self.epoch, invalidated, report }
        };
        self.maybe_start_compaction();
        Ok(outcome)
    }

    fn handle_commit(&mut self, want: u64, reply: Sender<Result<(u64, u64), (u16, String)>>) {
        let result = match self.staged.take() {
            None => Err((409, "no prepared batch to commit".into())),
            Some(s) if s.epoch != want => {
                let msg = format!("prepared epoch {} does not match commit {want}", s.epoch);
                self.staged = Some(s);
                Err((409, msg))
            }
            Some(s) => {
                let invalidated = publish(&self.shared, s.epoch, &s.snap, &s.touched);
                Ok((s.epoch, invalidated))
            }
        };
        let _ = reply.send(result);
    }

    /// Install a finished background merge and republish the segment set
    /// at the *same* epoch: the live entry multiset is unchanged, so
    /// cached answers stay valid — no epoch bump, no invalidation.
    fn handle_compaction_done(&mut self, result: Result<CompactionResult, String>) {
        if let Some(h) = self.compaction_thread.take() {
            let _ = h.join();
        }
        self.shared.metrics.ingest_compaction_queue.set(0);
        // A failed merge (e.g. temp-file I/O) left the input tiers
        // untouched; skip the install and retry below if still needed.
        if let Ok(done) = result {
            match self.medb.install_compaction(done) {
                Ok(installed) => {
                    if installed {
                        self.sync_compaction_metric();
                        // Skipped while a prepared batch is staged: its
                        // delta is in the EDB but must stay unpublished
                        // until the commit.
                        if self.staged.is_none() {
                            self.republish_segments();
                        }
                    }
                }
                Err(_) => {
                    // install_compaction mutates segment bookkeeping; a
                    // failure partway is the same class as a failed
                    // apply_batch.
                    self.shared.poisoned.store(true, Ordering::Release);
                    return;
                }
            }
        }
        self.maybe_start_compaction();
    }

    /// Swap the published snapshot's segments for the merged set without
    /// touching epoch, cache, or the fact-table mirror.
    fn republish_segments(&mut self) {
        let Ok(segments) = self.medb.snapshot_segments() else {
            return;
        };
        let lattice = self.medb.snapshot_lattice().ok();
        let current = self.shared.snapshot();
        let snap = Arc::new(EdbSnapshot {
            epoch: self.epoch,
            schema: self.medb.schema().clone(),
            table: current.table.clone(),
            segments,
            lattice,
        });
        self.shared.metrics.edb_segments.set(snap.segments.len() as i64);
        self.shared.metrics.compression_ratio.set(compression_milli(&snap.segments));
        self.shared
            .metrics
            .cuboid_bytes
            .set(snap.lattice.as_ref().map_or(0, |l| l.encoded_bytes()) as i64);
        *self.shared.snapshot.lock().unwrap_or_else(|p| p.into_inner()) = snap;
    }

    /// Kick off a background merge when the tier count calls for one and
    /// none is in flight. The spawned thread owns a `CoordJob` sender
    /// clone taken from `Shared` *now* — never a persistent clone on the
    /// coordinator, which would keep its own receive loop alive at
    /// shutdown.
    fn maybe_start_compaction(&mut self) {
        if self.compaction_thread.is_some() || !self.medb.needs_compaction() {
            return;
        }
        let tx = self.shared.update_tx.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let Some(tx) = tx else {
            return; // shutting down; the final fold already ran or will
        };
        match self.medb.prepare_compaction() {
            Ok(Some(plan)) => {
                self.shared.metrics.ingest_compaction_queue.set(1);
                let spawned = std::thread::Builder::new().name("iolap-serve-compact".into()).spawn(
                    move || {
                        let result = plan.run().map_err(|e| format!("{e}"));
                        let _ = tx.send(CoordJob::CompactionDone(Box::new(result)));
                    },
                );
                match spawned {
                    Ok(h) => self.compaction_thread = Some(h),
                    Err(_) => self.shared.metrics.ingest_compaction_queue.set(0),
                }
            }
            Ok(None) => {}
            // Planning reads segment state; a failure leaves it
            // untouched. Stay un-compacted rather than poisoning.
            Err(_) => {}
        }
    }

    fn set_backlog(&self) {
        self.shared.wal_backlog.store(self.pending_frames, Ordering::Relaxed);
        let gauge = i64::try_from(self.pending_frames).unwrap_or(i64::MAX);
        self.shared.metrics.ingest_backlog.set(gauge);
    }

    fn sync_wal_metrics(&mut self) {
        if let Some(w) = &self.wal {
            let total = w.appended_bytes();
            self.shared.metrics.ingest_wal_bytes.add(total - self.wal_bytes_seen);
            self.wal_bytes_seen = total;
        }
    }

    /// Surface segment-layer maintenance work since the last sync.
    fn sync_compaction_metric(&mut self) {
        let now = self.medb.num_compactions();
        self.shared.metrics.edb_compactions.add(now - self.compactions_seen);
        self.compactions_seen = now;
    }
}

/// A prepared-but-unpublished epoch: the EDB has already applied the
/// batch, readers still see the previous snapshot.
struct Staged {
    epoch: u64,
    snap: Arc<EdbSnapshot>,
    touched: Vec<iolap_rtree::Aabb>,
}

/// Publish a snapshot: open the cache epoch, purge overlapping entries,
/// sync the gauges, then swap the snapshot readers clone.
fn publish(
    shared: &Shared,
    epoch: u64,
    snap: &Arc<EdbSnapshot>,
    touched: &[iolap_rtree::Aabb],
) -> u64 {
    // Publication order matters: open the epoch (stale inserts start
    // dropping), purge overlapping entries, then publish the snapshot.
    shared.cache.begin_epoch(epoch);
    let invalidated = shared.cache.invalidate_overlapping(touched);
    // Survivors are disjoint from every touched box, so their answers are
    // unchanged at the new epoch (Theorem 12's contrapositive) — restamp
    // them so hits keep reporting the live epoch. Must run *after* the
    // sweep: restamping first would let a stale overlapping entry serve
    // one last hit wearing the new epoch.
    shared.cache.retag_epoch(epoch);
    shared.metrics.cache_invalidated.add(invalidated);
    shared.metrics.edb_segments.set(snap.segments.len() as i64);
    shared.metrics.compression_ratio.set(compression_milli(&snap.segments));
    shared.metrics.cuboid_bytes.set(snap.lattice.as_ref().map_or(0, |l| l.encoded_bytes()) as i64);
    *shared.snapshot.lock().unwrap_or_else(|p| p.into_inner()) = snap.clone();
    shared.metrics.epoch.set(epoch as i64);
    invalidated
}

/// Validate one batch against the acknowledged id set *without*
/// mutating it unless every mutation passes (apply_batch has no
/// rollback, and a rejected batch must leave no trace).
fn validate_batch(
    acked_ids: &mut HashSet<FactId>,
    muts: &[EdbMutation],
) -> Result<(), (u16, String)> {
    let reject = |i: usize, msg: String| (400u16, format!("mutation {i}: {msg}"));
    let mut ids = acked_ids.clone();
    for (i, m) in muts.iter().enumerate() {
        match m {
            EdbMutation::UpdateMeasure { fact_id, new_measure } => {
                if !ids.contains(fact_id) {
                    return Err(reject(i, format!("no fact {fact_id}")));
                }
                if !new_measure.is_finite() {
                    return Err(reject(i, "measure must be finite".into()));
                }
            }
            EdbMutation::Delete(fact_id) => {
                if !ids.remove(fact_id) {
                    return Err(reject(i, format!("no fact {fact_id}")));
                }
            }
            EdbMutation::Insert(f) => {
                if !f.measure.is_finite() {
                    return Err(reject(i, "measure must be finite".into()));
                }
                if !ids.insert(f.id) {
                    return Err(reject(i, format!("fact id {} already exists", f.id)));
                }
            }
        }
    }
    *acked_ids = ids;
    Ok(())
}

/// Project a validated batch's insert/delete effects onto an id set
/// (used by WAL replay, where the batch was validated before it was
/// ever logged).
fn apply_id_effects(ids: &mut HashSet<FactId>, muts: &[EdbMutation]) {
    for m in muts {
        match m {
            EdbMutation::UpdateMeasure { .. } => {}
            EdbMutation::Insert(f) => {
                ids.insert(f.id);
            }
            EdbMutation::Delete(fact_id) => {
                ids.remove(fact_id);
            }
        }
    }
}

/// Mirror a batch onto the fact table (classical baselines read it).
fn apply_mirror(mirror: &mut FactTable, muts: &[EdbMutation]) {
    for m in muts {
        match m {
            EdbMutation::UpdateMeasure { fact_id, new_measure } => {
                if let Some(f) = mirror.facts_mut().iter_mut().find(|f| f.id == *fact_id) {
                    f.measure = *new_measure;
                }
            }
            EdbMutation::Insert(f) => mirror.facts_mut().push(f.clone()),
            EdbMutation::Delete(fact_id) => {
                mirror.facts_mut().retain(|f| f.id != *fact_id);
            }
        }
    }
}

/// Replay one recovered WAL batch through the normal apply path.
fn fold_batch(
    medb: &mut MaintainableEdb,
    mirror: &mut FactTable,
    muts: &[EdbMutation],
) -> iolap_core::Result<()> {
    medb.apply_batch(muts)?;
    apply_mirror(mirror, muts);
    Ok(())
}

// ---------------------------------------------------------------------------
// A tiny blocking client (bench bins, tests, CI smoke).
// ---------------------------------------------------------------------------

/// Send one request over an open connection and read the response.
/// Returns `(status, body)`. The connection stays usable (keep-alive).
pub fn http_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    // One buffered write: `write!` straight to the socket would emit one
    // syscall per format fragment, and the multi-packet request then hits
    // the Nagle + delayed-ACK 40 ms stall on loopback.
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: iolap\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.set_nodelay(true);
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

/// Read one HTTP response off a stream (Content-Length framing only).
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    use std::io::{BufRead, Read};
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 =
        status_line.split_ascii_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
            || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            },
        )?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_config_builder_matches_struct_defaults() {
        let built = ServeConfig::builder().build();
        let def = ServeConfig::default();
        assert_eq!(built.workers, def.workers);
        assert_eq!(built.queue_depth, def.queue_depth);
        assert_eq!(built.max_connections, def.max_connections);
        assert_eq!(built.cache_capacity, def.cache_capacity);
        assert_eq!(built.cache_shards, def.cache_shards);
        assert_eq!(built.read_timeout, def.read_timeout);
        assert_eq!(built.write_timeout, def.write_timeout);
        assert_eq!(built.idle_timeout, def.idle_timeout);
        assert_eq!(built.max_body_bytes, def.max_body_bytes);
        assert_eq!(built.shed, def.shed);
    }

    #[test]
    fn serve_config_builder_sets_every_knob() {
        let cfg = ServeConfig::builder()
            .workers(3)
            .queue_depth(7)
            .max_connections(11)
            .cache_capacity(13)
            .cache_shards(2)
            .read_timeout(Duration::from_millis(101))
            .write_timeout(Duration::from_millis(102))
            .idle_timeout(Duration::from_millis(103))
            .max_body_bytes(1024)
            .shed(ShedPolicy::DropConnection)
            .build();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 7);
        assert_eq!(cfg.max_connections, 11);
        assert_eq!(cfg.cache_capacity, 13);
        assert_eq!(cfg.cache_shards, 2);
        assert_eq!(cfg.read_timeout, Duration::from_millis(101));
        assert_eq!(cfg.write_timeout, Duration::from_millis(102));
        assert_eq!(cfg.idle_timeout, Duration::from_millis(103));
        assert_eq!(cfg.max_body_bytes, 1024);
        assert_eq!(cfg.shed, ShedPolicy::DropConnection);
    }
}
