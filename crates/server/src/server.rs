//! The server proper: listener, worker pool, and update coordinator.
//!
//! Thread topology (all `std::thread`, no async runtime):
//!
//! * **accept** — non-blocking `TcpListener` loop; applies socket
//!   timeouts and pushes connections into a bounded `sync_channel`. When
//!   the channel is full the server is saturated: the connection gets an
//!   inline `503` and is dropped (*load shedding* — fail fast instead of
//!   queueing unboundedly).
//! * **workers** (N) — pull connections off the shared channel and run
//!   the keep-alive request loop. Each request is wrapped in
//!   `catch_unwind`, so a handler panic costs one `500`, not a worker.
//! * **coordinator** (1) — owns the mutable [`MaintainableEdb`]. Builds
//!   the initial allocation, then serially applies `/update` batches,
//!   invalidates the cache, and publishes fresh [`EdbSnapshot`]s.
//!
//! Shutdown: [`ServerHandle::shutdown`] (or drop) raises a flag, the
//! accept loop exits and drops the work channel, workers drain and exit,
//! and dropping the update sender stops the coordinator.

use crate::cache::{CacheKey, CachedResult, ShardedCache};
use crate::http::{read_request, write_response, ReadError, Request};
use crate::snapshot::{resolve_level, resolve_region, EdbSnapshot};
use crate::wire;
use iolap_core::maintain::EdbMutation;
use iolap_core::{allocate, Algorithm, AllocConfig, MaintainableEdb, PolicySpec};
use iolap_model::{Fact, FactId, FactTable, MAX_DIMS};
use iolap_obs::{Counter, Gauge, Histogram, Obs};
use iolap_query::{aggregate_classical, Query};
use std::collections::HashSet;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request worker threads.
    pub workers: usize,
    /// Bounded connection queue between accept and the workers; a full
    /// queue sheds load with `503`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Number of cache shards.
    pub cache_shards: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Observability handle. A disabled handle is silently upgraded to
    /// [`Obs::metrics_only`] so `/metrics` always has something to say.
    pub obs: Obs,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            cache_capacity: 4096,
            cache_shards: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            obs: Obs::disabled(),
        }
    }
}

/// Why the server failed to start or stopped.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The initial allocation / EDB build failed.
    Init(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server i/o error: {e}"),
            ServeError::Init(msg) => write!(f, "server init failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Outcome of one applied `/update` batch (for the response body).
struct UpdateOutcome {
    epoch: u64,
    invalidated: u64,
    report: iolap_core::UpdateReport,
}

struct UpdateJob {
    muts: Vec<EdbMutation>,
    reply: Sender<Result<UpdateOutcome, (u16, String)>>,
}

/// Metric handles resolved once at startup (hot paths never re-hash
/// names). The server's `Obs` is always at least metrics-only.
struct ServeMetrics {
    requests: Counter,
    req_query: Counter,
    req_rollup: Counter,
    req_update: Counter,
    req_metrics: Counter,
    req_healthz: Counter,
    resp_ok: Counter,
    resp_client_error: Counter,
    resp_server_error: Counter,
    cache_hit: Counter,
    cache_miss: Counter,
    cache_insert: Counter,
    cache_invalidated: Counter,
    cache_evicted: Counter,
    shed: Counter,
    panics: Counter,
    queue_depth: Gauge,
    epoch: Gauge,
    latency_us: Histogram,
    /// Segment-layer counters for the answer path: pages actually
    /// scanned vs pages skipped by fence pruning, plus the published
    /// segment count and compactions run by the coordinator.
    pages_read: Counter,
    pages_pruned: Counter,
    bytes_read: Counter,
    edb_segments: Gauge,
    edb_compactions: Counter,
    /// Aggregate compression ratio of the published segments, in
    /// milli-units (1000 = row layout, 1700 = 1.7×).
    compression_ratio: Gauge,
}

impl ServeMetrics {
    fn new(obs: &Obs) -> Self {
        let c = |n: &str| obs.counter(n).expect("server obs is always enabled");
        ServeMetrics {
            requests: c("serve.requests"),
            req_query: c("serve.requests.query"),
            req_rollup: c("serve.requests.rollup"),
            req_update: c("serve.requests.update"),
            req_metrics: c("serve.requests.metrics"),
            req_healthz: c("serve.requests.healthz"),
            resp_ok: c("serve.responses.ok"),
            resp_client_error: c("serve.responses.client_error"),
            resp_server_error: c("serve.responses.server_error"),
            cache_hit: c("serve.cache.hit"),
            cache_miss: c("serve.cache.miss"),
            cache_insert: c("serve.cache.insert"),
            cache_invalidated: c("serve.cache.invalidated"),
            cache_evicted: c("serve.cache.evicted"),
            shed: c("serve.shed"),
            panics: c("serve.panics"),
            queue_depth: obs.gauge("serve.queue.depth").expect("enabled"),
            epoch: obs.gauge("serve.epoch").expect("enabled"),
            latency_us: obs.histogram("serve.latency_us").expect("enabled"),
            pages_read: c("edb.pages_read"),
            pages_pruned: c("edb.pages_pruned"),
            bytes_read: c("edb.bytes_read"),
            edb_segments: obs.gauge("edb.segments").expect("enabled"),
            edb_compactions: c("edb.compactions"),
            compression_ratio: obs.gauge("edb.compression_ratio").expect("enabled"),
        }
    }
}

/// Aggregate compression ratio of a snapshot's segments in milli-units
/// (1000 = uncompressed row layout). Weighted by entry bytes, so one big
/// compressed base segment dominates many tiny row deltas.
fn compression_milli(segments: &[iolap_core::SegmentView]) -> i64 {
    let raw: u64 = segments.iter().map(|v| v.segment.uncompressed_bytes()).sum();
    let enc: u64 = segments.iter().map(|v| v.segment.encoded_bytes()).sum();
    if enc == 0 {
        1000
    } else {
        (raw as f64 / enc as f64 * 1000.0) as i64
    }
}

/// State shared by every server thread.
struct Shared {
    snapshot: Mutex<Arc<EdbSnapshot>>,
    cache: ShardedCache,
    cache_enabled: bool,
    obs: Obs,
    metrics: ServeMetrics,
    update_tx: Mutex<Option<Sender<UpdateJob>>>,
    shutdown: AtomicBool,
    /// Set when a maintenance batch failed partway: the EDB may be
    /// inconsistent with the published snapshot, so further `/update`s
    /// are refused (503) and `/healthz` reports degraded. Reads keep
    /// serving the last consistent snapshot.
    poisoned: AtomicBool,
    max_body_bytes: usize,
    /// Live connections (socket clones), so shutdown can interrupt
    /// workers parked in blocking reads instead of waiting out the
    /// read timeout.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn: std::sync::atomic::AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> Arc<EdbSnapshot> {
        self.snapshot.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn register_conn(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().unwrap_or_else(|p| p.into_inner()).insert(id, clone);
        Some(id)
    }

    fn deregister_conn(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
        }
    }
}

/// The server. Construct with [`Server::start`]; the returned
/// [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Allocate `table` under `policy` (Transitive — required for
    /// maintenance), bind `addr`, and serve until the handle shuts down.
    ///
    /// Blocks until the initial allocation is built and the socket is
    /// listening, so a returned handle is immediately queryable.
    pub fn start(
        table: FactTable,
        policy: PolicySpec,
        alloc: AllocConfig,
        addr: &str,
        cfg: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        let obs = if cfg.obs.is_enabled() { cfg.obs.clone() } else { Obs::metrics_only() };
        let metrics = ServeMetrics::new(&obs);

        // The coordinator builds the allocation inside its own thread and
        // owns the MaintainableEdb for its whole life; startup blocks on
        // the readiness channel below.
        let (ready_tx, ready_rx) = mpsc::channel::<Result<Arc<EdbSnapshot>, String>>();
        let (shared_tx, shared_rx) = mpsc::channel::<Arc<Shared>>();
        let (update_tx, update_rx) = mpsc::channel::<UpdateJob>();
        let coordinator = std::thread::Builder::new()
            .name("iolap-serve-coord".into())
            .spawn(move || coordinator_main(table, policy, alloc, ready_tx, shared_rx, update_rx))
            .map_err(ServeError::Io)?;

        let first = match ready_rx.recv() {
            Ok(Ok(snap)) => snap,
            Ok(Err(msg)) => {
                let _ = coordinator.join();
                return Err(ServeError::Init(msg));
            }
            Err(_) => {
                let _ = coordinator.join();
                return Err(ServeError::Init("coordinator died during startup".into()));
            }
        };

        metrics.epoch.set(first.epoch as i64);
        metrics.edb_segments.set(first.segments.len() as i64);
        metrics.compression_ratio.set(compression_milli(&first.segments));
        let shared = Arc::new(Shared {
            snapshot: Mutex::new(first),
            cache: ShardedCache::new(cfg.cache_capacity.max(1), cfg.cache_shards),
            cache_enabled: cfg.cache_capacity > 0,
            obs: obs.clone(),
            metrics,
            update_tx: Mutex::new(Some(update_tx)),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            max_body_bytes: cfg.max_body_bytes,
            conns: Mutex::new(std::collections::HashMap::new()),
            next_conn: std::sync::atomic::AtomicU64::new(0),
        });
        // Hand the coordinator its view of the shared state; it only now
        // enters the update loop.
        let _ = shared_tx.send(shared.clone());

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let (work_tx, work_rx) = mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
        let work_rx = Arc::new(Mutex::new(work_rx));
        let mut threads = Vec::with_capacity(cfg.workers + 2);
        threads.push(coordinator);

        for i in 0..cfg.workers.max(1) {
            let rx = work_rx.clone();
            let sh = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("iolap-serve-worker-{i}"))
                    .spawn(move || worker_main(rx, sh))
                    .map_err(ServeError::Io)?,
            );
        }

        let sh = shared.clone();
        let read_to = cfg.read_timeout;
        let write_to = cfg.write_timeout;
        threads.push(
            std::thread::Builder::new()
                .name("iolap-serve-accept".into())
                .spawn(move || accept_main(listener, work_tx, sh, read_to, write_to))
                .map_err(ServeError::Io)?,
        );

        Ok(ServerHandle { addr: local, shared, threads })
    }
}

/// A running server. Dropping it (or calling [`shutdown`]) stops every
/// thread gracefully: in-flight requests finish, queued connections are
/// drained, then the workers, accept loop, and coordinator exit.
///
/// [`shutdown`]: ServerHandle::shutdown
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` for an OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability handle (always at least metrics-only).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// The currently published snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshot().epoch
    }

    /// Stop accepting, drain, and join every thread.
    pub fn shutdown(self) {
        // Drop runs the teardown.
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Stop the coordinator: no sender, no more jobs.
        self.shared.update_tx.lock().unwrap_or_else(|p| p.into_inner()).take();
        // Interrupt workers parked in blocking reads on idle keep-alive
        // connections (in-flight responses still complete: the write
        // half has already buffered by the time the read half blocks).
        for (_, s) in self.shared.conns.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            let _ = s.shutdown(std::net::Shutdown::Read);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

fn accept_main(
    listener: TcpListener,
    work_tx: SyncSender<TcpStream>,
    shared: Arc<Shared>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_nodelay(true);
        match work_tx.try_send(stream) {
            Ok(()) => shared.metrics.queue_depth.add(1),
            Err(TrySendError::Full(mut stream)) => {
                // Saturated: shed instead of queueing unboundedly. The
                // 503 is written inline on the accept thread, so cap the
                // write timeout hard — a slow client must not stall
                // accepting for the full write_timeout exactly when the
                // server is already saturated. If even 100ms is too slow
                // the client just sees a dropped connection.
                shared.metrics.shed.inc();
                shared.metrics.resp_server_error.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                let body = wire::error_body("server saturated, retry later");
                let _ =
                    write_response(&mut stream, 503, "application/json", body.as_bytes(), false);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping work_tx lets workers drain the queue and exit.
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_main(rx: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        let stream = {
            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
            match rx.recv() {
                Ok(s) => s,
                Err(_) => return, // accept loop gone, queue drained
            }
        };
        shared.metrics.queue_depth.add(-1);
        let id = shared.register_conn(&stream);
        handle_connection(stream, &shared);
        shared.deregister_conn(id);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader, shared.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(ReadError::Bad(status, msg)) => {
                count_status(shared, status);
                let body = wire::error_body(&msg);
                let _ =
                    write_response(&mut writer, status, "application/json", body.as_bytes(), false);
                return;
            }
            Err(ReadError::Io(_)) => return, // timeout or dead peer
        };
        let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);

        let t0 = Instant::now();
        let out = catch_unwind(AssertUnwindSafe(|| handle_request(&req, shared)));
        let (status, content_type, body) = out.unwrap_or_else(|_| {
            shared.metrics.panics.inc();
            (500, "application/json", wire::error_body("internal error"))
        });
        shared.metrics.latency_us.observe(t0.elapsed().as_micros() as u64);
        count_status(shared, status);

        if write_response(&mut writer, status, content_type, body.as_bytes(), keep_alive).is_err()
            || !keep_alive
        {
            return;
        }
    }
}

fn count_status(shared: &Shared, status: u16) {
    match status {
        200..=299 => shared.metrics.resp_ok.inc(),
        400..=499 => shared.metrics.resp_client_error.inc(),
        _ => shared.metrics.resp_server_error.inc(),
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

type Response = (u16, &'static str, String);

fn handle_request(req: &Request, shared: &Shared) -> Response {
    shared.metrics.requests.inc();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.req_healthz.inc();
            let ok = !shared.poisoned.load(Ordering::Acquire);
            let status = if ok { 200 } else { 503 };
            (status, "application/json", wire::health_response(shared.snapshot().epoch, ok))
        }
        ("GET", "/metrics") => {
            shared.metrics.req_metrics.inc();
            let text = shared.obs.metrics().map(|m| m.to_prometheus()).unwrap_or_default();
            (200, "text/plain; version=0.0.4", text)
        }
        ("POST", "/query") => {
            shared.metrics.req_query.inc();
            handle_query(&req.body, shared)
        }
        ("POST", "/rollup") => {
            shared.metrics.req_rollup.inc();
            handle_rollup(&req.body, shared)
        }
        ("POST", "/update") => {
            shared.metrics.req_update.inc();
            handle_update(&req.body, shared)
        }
        (_, "/healthz" | "/metrics" | "/query" | "/rollup" | "/update") => {
            (405, "application/json", wire::error_body("method not allowed"))
        }
        _ => (404, "application/json", wire::error_body("no such endpoint")),
    }
}

fn bad_request(msg: &str) -> Response {
    (400, "application/json", wire::error_body(msg))
}

fn utf8_body(body: &[u8]) -> Result<&str, Response> {
    std::str::from_utf8(body).map_err(|_| bad_request("request body must be UTF-8"))
}

fn handle_query(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let q = match wire::parse_query(body) {
        Ok(q) => q,
        Err(msg) => return bad_request(&msg),
    };
    let snap = shared.snapshot();
    let region = match resolve_region(&snap.schema, &q.at) {
        Ok(r) => r,
        Err(msg) => return bad_request(&msg),
    };

    let key = CacheKey::new(&region, q.agg, q.classical);
    if shared.cache_enabled {
        if let Some(hit) = shared.cache.get(&key) {
            shared.metrics.cache_hit.inc();
            let body = wire::query_response(&hit.result, q.agg, true, hit.epoch);
            return (200, "application/json", body);
        }
        shared.metrics.cache_miss.inc();
    }

    let result = match q.classical {
        Some(sem) => {
            let query = Query { region, agg: q.agg };
            aggregate_classical(&snap.table, &query, sem)
        }
        None => {
            // A corrupt compressed page surfaces from the cursor as the
            // storage error it is — a 500, never a silent short answer.
            let (result, stats) = match snap.aggregate_with_stats(&region, q.agg) {
                Ok(rs) => rs,
                Err(e) => {
                    return (
                        500,
                        "application/json",
                        wire::error_body(&format!("scan failed: {e}")),
                    );
                }
            };
            shared.metrics.pages_read.add(stats.pages_read);
            shared.metrics.pages_pruned.add(stats.pages_pruned);
            shared.metrics.bytes_read.add(stats.bytes_read);
            result
        }
    };
    if shared.cache_enabled {
        let out = shared.cache.insert(key, CachedResult { result, epoch: snap.epoch });
        if out.inserted {
            shared.metrics.cache_insert.inc();
        }
        shared.metrics.cache_evicted.add(out.evicted);
    }
    (200, "application/json", wire::query_response(&result, q.agg, false, snap.epoch))
}

fn handle_rollup(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let r = match wire::parse_rollup(body) {
        Ok(r) => r,
        Err(msg) => return bad_request(&msg),
    };
    let snap = shared.snapshot();
    let (dim, level) = match resolve_level(&snap.schema, &r.dim, &r.level) {
        Ok(dl) => dl,
        Err(msg) => return bad_request(&msg),
    };
    let region = match resolve_region(&snap.schema, &r.at) {
        Ok(rg) => rg,
        Err(msg) => return bad_request(&msg),
    };
    let (rows, stats) = match snap.rollup(dim, level, Some(&region), r.agg) {
        Ok(rs) => rs,
        Err(e) => {
            return (500, "application/json", wire::error_body(&format!("scan failed: {e}")));
        }
    };
    shared.metrics.pages_read.add(stats.pages_read);
    shared.metrics.pages_pruned.add(stats.pages_pruned);
    shared.metrics.bytes_read.add(stats.bytes_read);
    (200, "application/json", wire::rollup_response(&rows, r.agg, snap.epoch))
}

fn handle_update(body: &[u8], shared: &Shared) -> Response {
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let reqs = match wire::parse_update(body) {
        Ok(m) => m,
        Err(msg) => return bad_request(&msg),
    };
    let snap = shared.snapshot();
    let mut muts = Vec::with_capacity(reqs.len());
    for (i, m) in reqs.into_iter().enumerate() {
        muts.push(match m {
            wire::MutationReq::Update { fact_id, measure } => {
                EdbMutation::UpdateMeasure { fact_id, new_measure: measure }
            }
            wire::MutationReq::Delete { fact_id } => EdbMutation::Delete(fact_id),
            wire::MutationReq::Insert { id, dims, measure } => {
                let k = snap.schema.k();
                if dims.len() != k {
                    return bad_request(&format!(
                        "mutation {i}: expected {k} dims, got {}",
                        dims.len()
                    ));
                }
                let mut fact_dims = [0u32; MAX_DIMS];
                for (d, name) in dims.iter().enumerate() {
                    let h = snap.schema.dim(d);
                    let Some(node) = h.node_by_name(name) else {
                        return bad_request(&format!(
                            "mutation {i}: unknown node {name:?} in dimension {:?}",
                            h.name()
                        ));
                    };
                    fact_dims[d] = node.0;
                }
                EdbMutation::Insert(Fact { id, dims: fact_dims, measure })
            }
        });
    }

    // Enqueue for the coordinator and wait for the published epoch.
    if shared.poisoned.load(Ordering::Acquire) {
        return (
            503,
            "application/json",
            wire::error_body("maintenance failed earlier; updates disabled (reads still serve the last consistent snapshot)"),
        );
    }
    let tx = shared.update_tx.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let Some(tx) = tx else {
        return (503, "application/json", wire::error_body("server is shutting down"));
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    if tx.send(UpdateJob { muts, reply: reply_tx }).is_err() {
        return (503, "application/json", wire::error_body("server is shutting down"));
    }
    match reply_rx.recv() {
        Ok(Ok(out)) => {
            let r = &out.report;
            let body = wire::update_response(
                out.epoch,
                out.invalidated,
                r.affected_components,
                r.affected_tuples,
                r.entries_rewritten,
                r.merges,
                r.splits,
            );
            (200, "application/json", body)
        }
        Ok(Err((status, msg))) => {
            let ct = "application/json";
            (status, ct, wire::error_body(&msg))
        }
        Err(_) => (500, "application/json", wire::error_body("update coordinator died")),
    }
}

// ---------------------------------------------------------------------------
// Update coordinator
// ---------------------------------------------------------------------------

fn coordinator_main(
    table: FactTable,
    policy: PolicySpec,
    alloc: AllocConfig,
    ready_tx: Sender<Result<Arc<EdbSnapshot>, String>>,
    shared_rx: Receiver<Arc<Shared>>,
    update_rx: Receiver<UpdateJob>,
) {
    // Build the initial allocation. Maintenance requires Transitive (the
    // component index is piggybacked on its component-processing step).
    let built = allocate(&table, &policy, Algorithm::Transitive, &alloc)
        .and_then(|run| MaintainableEdb::build(run, policy.clone()));
    let mut medb = match built {
        Ok(m) => m,
        Err(e) => {
            let _ = ready_tx.send(Err(format!("{e}")));
            return;
        }
    };
    let mut mirror = table; // fact-table mirror for classical baselines
    let schema = medb.schema().clone();
    let segments = match medb.snapshot_segments() {
        Ok(s) => s,
        Err(e) => {
            let _ = ready_tx.send(Err(format!("snapshot failed: {e}")));
            return;
        }
    };
    let first = Arc::new(EdbSnapshot {
        epoch: 0,
        schema: schema.clone(),
        table: Arc::new(mirror.clone()),
        segments,
    });
    if ready_tx.send(Ok(first)).is_err() {
        return;
    }
    let Ok(shared) = shared_rx.recv() else {
        return;
    };

    let mut live_ids: HashSet<FactId> = mirror.facts().iter().map(|f| f.id).collect();
    let mut epoch = 0u64;
    let mut compactions_seen = medb.num_compactions();

    while let Ok(job) = update_rx.recv() {
        if shared.poisoned.load(Ordering::Acquire) {
            let _ = job.reply.send(Err((
                503,
                "maintenance failed earlier; updates disabled (reads still serve the last consistent snapshot)".into(),
            )));
            continue;
        }
        let result = match apply_job(
            &mut medb,
            &mut mirror,
            &mut live_ids,
            &mut epoch,
            &shared,
            &job.muts,
        ) {
            Ok(out) => Ok(out),
            Err(ApplyError::Reject(status, msg)) => Err((status, msg)),
            Err(ApplyError::Poison(msg)) => {
                // apply_batch / snapshot_segments failed partway:
                // the EDB may disagree with mirror/live_ids and with
                // the published snapshot, and apply_batch has no
                // rollback. Continuing would let the next successful
                // update publish a snapshot silently containing the
                // half-applied batch. Poison instead: reads keep the
                // last consistent snapshot, writes get 503.
                shared.poisoned.store(true, Ordering::Release);
                Err((500, msg))
            }
        };
        // Surface segment-layer maintenance work done by this batch.
        let now = medb.num_compactions();
        shared.metrics.edb_compactions.add(now - compactions_seen);
        compactions_seen = now;
        let _ = job.reply.send(result);
    }
}

/// How an update batch failed.
enum ApplyError {
    /// Rejected before any state mutated; the server keeps serving
    /// updates normally.
    Reject(u16, String),
    /// State may be half-mutated; the coordinator must poison itself.
    Poison(String),
}

fn apply_job(
    medb: &mut MaintainableEdb,
    mirror: &mut FactTable,
    live_ids: &mut HashSet<FactId>,
    epoch: &mut u64,
    shared: &Shared,
    muts: &[EdbMutation],
) -> Result<UpdateOutcome, ApplyError> {
    // Pre-validate against the live id set so a bad batch is rejected
    // before any state mutates (apply_batch has no rollback).
    let reject = |i: usize, msg: String| ApplyError::Reject(400, format!("mutation {i}: {msg}"));
    let mut ids = live_ids.clone();
    for (i, m) in muts.iter().enumerate() {
        match m {
            EdbMutation::UpdateMeasure { fact_id, new_measure } => {
                if !ids.contains(fact_id) {
                    return Err(reject(i, format!("no fact {fact_id}")));
                }
                if !new_measure.is_finite() {
                    return Err(reject(i, "measure must be finite".into()));
                }
            }
            EdbMutation::Delete(fact_id) => {
                if !ids.remove(fact_id) {
                    return Err(reject(i, format!("no fact {fact_id}")));
                }
            }
            EdbMutation::Insert(f) => {
                if !f.measure.is_finite() {
                    return Err(reject(i, "measure must be finite".into()));
                }
                if !ids.insert(f.id) {
                    return Err(reject(i, format!("fact id {} already exists", f.id)));
                }
            }
        }
    }

    let report = medb
        .apply_batch(muts)
        .map_err(|e| ApplyError::Poison(format!("maintenance failed: {e}")))?;

    // Mirror the batch onto the fact table (classical baselines read it).
    for m in muts {
        match m {
            EdbMutation::UpdateMeasure { fact_id, new_measure } => {
                if let Some(f) = mirror.facts_mut().iter_mut().find(|f| f.id == *fact_id) {
                    f.measure = *new_measure;
                }
            }
            EdbMutation::Insert(f) => mirror.facts_mut().push(f.clone()),
            EdbMutation::Delete(fact_id) => {
                mirror.facts_mut().retain(|f| f.id != *fact_id);
            }
        }
    }
    *live_ids = ids;

    // `snapshot_segments` reads only the EDB tail appended by this batch
    // and hands back the same `Arc`s for segments the batch left alone,
    // so publication cost is O(segments), not O(entries).
    let segments = medb
        .snapshot_segments()
        .map_err(|e| ApplyError::Poison(format!("snapshot failed: {e}")))?;

    *epoch += 1;
    // Publication order matters: open the epoch (stale inserts start
    // dropping), purge overlapping entries, then publish the snapshot.
    shared.cache.begin_epoch(*epoch);
    let invalidated = shared.cache.invalidate_overlapping(&report.touched);
    shared.metrics.cache_invalidated.add(invalidated);
    shared.metrics.edb_segments.set(segments.len() as i64);
    shared.metrics.compression_ratio.set(compression_milli(&segments));
    let snap = Arc::new(EdbSnapshot {
        epoch: *epoch,
        schema: medb.schema().clone(),
        table: Arc::new(mirror.clone()),
        segments,
    });
    *shared.snapshot.lock().unwrap_or_else(|p| p.into_inner()) = snap;
    shared.metrics.epoch.set(*epoch as i64);

    Ok(UpdateOutcome { epoch: *epoch, invalidated, report })
}

// ---------------------------------------------------------------------------
// A tiny blocking client (bench bins, tests, CI smoke).
// ---------------------------------------------------------------------------

/// Send one request over an open connection and read the response.
/// Returns `(status, body)`. The connection stays usable (keep-alive).
pub fn http_roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    // One buffered write: `write!` straight to the socket would emit one
    // syscall per format fragment, and the multi-packet request then hits
    // the Nagle + delayed-ACK 40 ms stall on loopback.
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: iolap\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.set_nodelay(true);
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

/// Read one HTTP response off a stream (Content-Length framing only).
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    use std::io::{BufRead, Read};
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 =
        status_line.split_ascii_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
            || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            },
        )?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}
