//! End-to-end HTTP behavior of the query server: the protocol surface
//! (routing, status codes, malformed input) and the robustness story
//! (load shedding, timeouts, graceful shutdown) — all exercised through
//! the reactor. Aggregate *correctness* against the library is covered
//! by the workspace-level `serve_consistency` test; this file is about
//! the server being a well-behaved HTTP peer.

use iolap_core::{AllocConfig, PolicySpec};
use iolap_model::paper_example;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, read_response, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(cfg: ServeConfig) -> ServerHandle {
    Server::builder(paper_example::table1(), PolicySpec::em_count(0.01))
        .alloc(AllocConfig::builder().in_memory(256).build())
        .config(cfg)
        .bind("127.0.0.1:0")
        .expect("server starts")
}

fn connect(h: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(h.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

#[test]
fn healthz_reports_ok_and_epoch_zero() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let (status, body) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0));
    assert_eq!(v.get("role").and_then(|r| r.as_str()), Some("single"));
    h.shutdown();
}

#[test]
fn configured_role_shows_in_healthz() {
    let h = start(ServeConfig::builder().role("shard").build());
    let mut c = connect(&h);
    let (status, body) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("role").and_then(|r| r.as_str()), Some("shard"), "{body}");
    h.shutdown();
}

#[test]
fn two_phase_update_stages_then_commits() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let query = "{\"region\":{\"Location\":\"MA\"}}";
    let (_, before) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();

    // Phase 1: prepare. The batch applies and stages epoch 1, but
    // readers keep epoch 0 and the old bits.
    let upd =
        "{\"prepare\":true,\"mutations\":[{\"op\":\"update\",\"fact_id\":2,\"measure\":500.0}]}";
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "{body}");
    assert_eq!(v.get("invalidated").and_then(|i| i.as_u64()), Some(0), "staged, not published");
    let (_, hb) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    let v = iolap_obs::json::parse(&hb).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0), "readers still at epoch 0");
    let (_, staged_read) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();
    // The second read is a cache hit; compare everything but the flag.
    assert_eq!(
        staged_read.replace("\"cached\":true", "\"cached\":false"),
        before.replace("\"cached\":true", "\"cached\":false"),
        "staged batch is invisible to readers"
    );

    let assert_conflict = |status: u16, body: &str| {
        assert_eq!(status, 409, "{body}");
        let v = iolap_obs::json::parse(body).unwrap();
        assert_eq!(v.get("code").and_then(|c| c.as_str()), Some("conflict"), "{body}");
        assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(409), "{body}");
        assert!(v.get("error").and_then(|m| m.as_str()).is_some(), "{body}");
    };

    // A second update while one is staged conflicts, as does committing
    // the wrong epoch.
    let upd2 = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":3,\"measure\":1.0}]}";
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd2).unwrap();
    assert_conflict(status, &body);
    let (status, body) = http_roundtrip(&mut c, "POST", "/epoch", "{\"commit\":7}").unwrap();
    assert_conflict(status, &body);

    // Phase 2: commit publishes epoch 1 and the new bits.
    let (status, body) = http_roundtrip(&mut c, "POST", "/epoch", "{\"commit\":1}").unwrap();
    assert_eq!(status, 200, "{body}");
    let (_, hb) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    let v = iolap_obs::json::parse(&hb).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "{hb}");
    let (_, after) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();
    assert_ne!(after, before, "committed batch is visible");

    // Nothing staged: a commit is a conflict. Non-prepared updates keep
    // publishing immediately.
    let (status, body) = http_roundtrip(&mut c, "POST", "/epoch", "{\"commit\":2}").unwrap();
    assert_conflict(status, &body);
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd2).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(2), "{body}");
    h.shutdown();
}

#[test]
fn query_and_metrics_round_trip_over_keep_alive() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    // Two queries and a metrics scrape over the same connection.
    let body = iolap_serve::wire::query_body(&[("Location", "MA")], AggFn::Sum, None);
    let (status, first) = http_roundtrip(&mut c, "POST", "/query", &body).unwrap();
    assert_eq!(status, 200, "{first}");
    let v = iolap_obs::json::parse(&first).unwrap();
    assert_eq!(v.get("cached").and_then(|b| b.as_bool()), Some(false));

    let (status, second) = http_roundtrip(&mut c, "POST", "/query", &body).unwrap();
    assert_eq!(status, 200);
    let v = iolap_obs::json::parse(&second).unwrap();
    assert_eq!(v.get("cached").and_then(|b| b.as_bool()), Some(true), "{second}");
    // The cached answer must be byte-identical apart from the flag.
    assert_eq!(first.replace("\"cached\":false", ""), second.replace("\"cached\":true", ""));

    let (status, metrics) = http_roundtrip(&mut c, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("iolap_serve_requests"), "{metrics}");
    assert!(metrics.contains("iolap_serve_cache_hit"), "{metrics}");
    assert!(metrics.contains("iolap_serve_connections"), "{metrics}");
    h.shutdown();
}

#[test]
fn unknown_paths_and_methods_get_404_and_405() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let (status, _) = http_roundtrip(&mut c, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_roundtrip(&mut c, "GET", "/query", "").unwrap();
    assert_eq!(status, 405);
    let (status, _) = http_roundtrip(&mut c, "POST", "/healthz", "").unwrap();
    assert_eq!(status, 405);
    h.shutdown();
}

#[test]
fn malformed_bodies_are_400_and_never_kill_the_worker() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    for bad in ["not json", "{\"agg\": \"median\"}", "{\"region\": {\"Nowhere\": \"MA\"}}"] {
        let (status, body) = http_roundtrip(&mut c, "POST", "/query", bad).unwrap();
        assert_eq!(status, 400, "{bad:?} → {body}");
        assert!(iolap_obs::json::parse(&body).unwrap().get("error").is_some());
    }
    // The same worker still answers afterwards.
    let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    h.shutdown();
}

#[test]
fn protocol_violations_close_with_4xx() {
    let h = start(ServeConfig::default());
    // Not HTTP at all.
    let mut c = connect(&h);
    c.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut c).unwrap();
    assert_eq!(status, 400);
    // Chunked transfer encoding is outside the subset.
    let mut c = connect(&h);
    c.write_all(b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut c).unwrap();
    assert_eq!(status, 400);
    h.shutdown();
}

#[test]
fn oversized_bodies_are_413() {
    let h = start(ServeConfig::builder().max_body_bytes(64).build());
    let mut c = connect(&h);
    let huge = "x".repeat(1000);
    let mut s = String::from("{\"pad\": \"");
    s.push_str(&huge);
    s.push_str("\"}");
    c.write_all(
        format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}", s.len(), s).as_bytes(),
    )
    .unwrap();
    let (status, _) = read_response(&mut c).unwrap();
    assert_eq!(status, 413);
    h.shutdown();
}

/// Every handler error path must emit the documented JSON error shape:
/// `{"error": string, "code": string, "status": number}` with the
/// `status` field matching the HTTP status line.
#[test]
fn every_error_status_shares_the_documented_json_shape() {
    let h = start(ServeConfig::builder().max_body_bytes(64).max_connections(3).build());

    let assert_shape = |status: u16, body: &str| {
        let v = iolap_obs::json::parse(body).unwrap_or_else(|e| panic!("{status}: {e}: {body}"));
        assert!(v.get("error").and_then(|x| x.as_str()).is_some(), "{status}: {body}");
        assert!(v.get("code").and_then(|x| x.as_str()).is_some(), "{status}: {body}");
        assert_eq!(v.get("status").and_then(|x| x.as_u64()), Some(status as u64), "{body}");
    };

    // 404 / 405 / 400 through the normal request path.
    let mut c = connect(&h);
    let (status, body) = http_roundtrip(&mut c, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    assert_shape(status, &body);
    let (status, body) = http_roundtrip(&mut c, "GET", "/query", "").unwrap();
    assert_eq!(status, 405);
    assert_shape(status, &body);
    let (status, body) = http_roundtrip(&mut c, "POST", "/query", "not json").unwrap();
    assert_eq!(status, 400);
    assert_shape(status, &body);

    // 400 from the parser (reactor-side error path).
    let mut g = connect(&h);
    g.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let (status, body) = read_response(&mut g).unwrap();
    assert_eq!(status, 400);
    assert_shape(status, &body);

    // 413 from the parser before body bytes arrive.
    let mut big = connect(&h);
    big.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\n").unwrap();
    let (status, body) = read_response(&mut big).unwrap();
    assert_eq!(status, 413);
    assert_shape(status, &body);

    // 431 for an absurd header line.
    let mut wide = connect(&h);
    let long = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(10_000));
    wide.write_all(long.as_bytes()).unwrap();
    let (status, body) = read_response(&mut wide).unwrap();
    assert_eq!(status, 431);
    assert_shape(status, &body);

    // 503 from the connection-capacity shed (cap is 3; the sockets
    // above may linger until the reactor observes their EOF, so hold
    // three fresh ones open to pin the count at the cap).
    drop(c);
    drop(g);
    drop(big);
    drop(wide);
    let hold: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = connect(&h);
            let (st, _) = http_roundtrip(&mut s, "GET", "/healthz", "").unwrap();
            assert_eq!(st, 200);
            s
        })
        .collect();
    let mut shed = connect(&h);
    let (status, body) = read_response(&mut shed).unwrap();
    assert_eq!(status, 503, "{body}");
    assert_shape(status, &body);
    drop(hold);
    h.shutdown();
}

/// The reactor must shed accepts beyond `max_connections` with a 503
/// written promptly (the old design's 100ms inline budget), while the
/// connections already admitted keep working.
#[test]
fn connection_cap_sheds_with_503() {
    let h = start(ServeConfig::builder().max_connections(2).build());

    let mut held: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = connect(&h);
            let (st, _) = http_roundtrip(&mut s, "GET", "/healthz", "").unwrap();
            assert_eq!(st, 200);
            s
        })
        .collect();

    let t0 = Instant::now();
    let mut c = connect(&h);
    let (status, body) = read_response(&mut c).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("capacity"), "{body}");
    assert!(t0.elapsed() < Duration::from_secs(1), "shed 503 must be prompt");
    assert!(
        h.obs().counter("serve.shed").unwrap().get() >= 1,
        "shed counter must record the rejection"
    );

    // The admitted connections still answer.
    for c in held.iter_mut() {
        let (status, _) = http_roundtrip(c, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
    }
    h.shutdown();
}

/// With one worker and a ready-queue of one, a stream of slow `/update`
/// batches keeps both busy; probes on fresh connections must then see
/// the queue-full 503 shed rather than queueing unboundedly.
#[test]
fn saturated_server_sheds_with_503() {
    let h = start(ServeConfig::builder().workers(1).queue_depth(1).cache_capacity(0).build());
    let addr = h.addr();

    // Three serialized update batches occupy the single worker (each
    // blocks on the coordinator) while their successors hold the queue.
    let writers: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                let muts: Vec<iolap_serve::wire::MutationReq> = (0..400)
                    .map(|i| iolap_serve::wire::MutationReq::Insert {
                        id: 10_000 + w * 1000 + i,
                        dims: vec!["MA".into(), "Civic".into()],
                        measure: 1.0,
                    })
                    .collect();
                let body = iolap_serve::wire::update_body(&muts);
                // The update itself may be shed while its siblings hold
                // the worker and the queue — that IS the behavior under
                // test — so retry on 503 until it lands.
                loop {
                    let mut c = TcpStream::connect(addr).unwrap();
                    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let (status, resp) = http_roundtrip(&mut c, "POST", "/update", &body).unwrap();
                    if status == 200 {
                        break;
                    }
                    assert_eq!(status, 503, "{resp}");
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
        })
        .collect();

    // Probe until the shed fires (bounded by the updates' total runtime).
    let mut saw_503 = false;
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let mut c = connect(&h);
        let Ok((status, body)) = http_roundtrip(&mut c, "GET", "/healthz", "") else {
            continue; // shed-by-close or racing teardown; try again
        };
        if status == 503 && body.contains("saturated") {
            saw_503 = true;
            break;
        }
        if h.obs().counter("serve.shed").unwrap().get() >= 1 && status == 503 {
            saw_503 = true;
            break;
        }
    }
    for w in writers {
        w.join().unwrap();
    }
    assert!(saw_503, "queue-full saturation must answer 503");
    assert!(h.obs().counter("serve.shed").unwrap().get() >= 1);

    // After the storm, the server still answers normally.
    let mut c = connect(&h);
    let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    h.shutdown();
}

/// The regression the reactor exists for: idle keep-alive sockets must
/// not consume worker threads. With a single worker and several parked
/// connections, a newcomer is still served immediately.
#[test]
fn idle_keep_alive_connections_consume_no_worker() {
    let h = start(ServeConfig::builder().workers(1).build());

    // Park four keep-alive connections (each proven live first). Under
    // the old thread-per-connection design the first would pin the only
    // worker forever and this test would hang.
    let parked: Vec<TcpStream> = (0..4)
        .map(|_| {
            let mut s = connect(&h);
            let (st, _) = http_roundtrip(&mut s, "GET", "/healthz", "").unwrap();
            assert_eq!(st, 200);
            s
        })
        .collect();

    let t0 = Instant::now();
    let mut fresh = connect(&h);
    let (status, _) = http_roundtrip(&mut fresh, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert!(t0.elapsed() < Duration::from_secs(2), "a newcomer must not wait behind idle sockets");

    // The parked connections are all still live too.
    for mut s in parked {
        let (status, _) = http_roundtrip(&mut s, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
    }
    h.shutdown();
}

/// Two requests written back-to-back in one packet come back as two
/// ordered responses on the same connection.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let q = iolap_serve::wire::query_body(&[], AggFn::Count, None);
    let wire = format!(
        "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
         POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        q.len(),
        q
    );
    c.write_all(wire.as_bytes()).unwrap();
    // One reader across both responses: a fresh `read_response` call per
    // response would buffer (and drop) bytes of the successor.
    let mut reader = std::io::BufReader::new(&mut c);
    let first = read_one(&mut reader);
    assert_eq!(first.0, 200, "{}", first.1);
    assert!(first.1.contains("\"status\":\"ok\""), "first response is healthz: {}", first.1);
    let second = read_one(&mut reader);
    assert_eq!(second.0, 200, "{}", second.1);
    assert!(second.1.contains("\"count\":"), "second response is the query: {}", second.1);
    h.shutdown();
}

/// Parse one Content-Length-framed HTTP response from a shared reader.
fn read_one<R: std::io::BufRead>(reader: &mut R) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split_ascii_whitespace().nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8_lossy(&body).into_owned())
}

/// An idle keep-alive connection is closed once `idle_timeout` elapses.
#[test]
fn idle_timeout_closes_parked_connections() {
    let h = start(ServeConfig::builder().idle_timeout(Duration::from_millis(300)).build());
    let mut c = connect(&h);
    let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    // No further request: the server should close within a few sweeps.
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 64];
    let n = c.read(&mut buf).expect("EOF, not a read timeout");
    assert_eq!(n, 0, "server closes the idle connection");
    h.shutdown();
}

/// Shutdown must half-close registered idle connections (the peer
/// observes EOF promptly) and join without hanging.
#[test]
fn shutdown_half_closes_idle_connections() {
    let h = start(ServeConfig::default());
    let mut idle = connect(&h);
    let (status, _) = http_roundtrip(&mut idle, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);

    let t0 = Instant::now();
    let joiner = std::thread::spawn(move || h.shutdown());
    // The parked connection sees EOF, not a hang until idle_timeout.
    idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 64];
    let n = idle.read(&mut buf).expect("EOF, not a timeout");
    assert_eq!(n, 0, "shutdown half-closes the idle connection");
    joiner.join().unwrap();
    assert!(t0.elapsed() < Duration::from_secs(5), "shutdown must be prompt");
}

#[test]
fn shutdown_drains_and_joins() {
    let h = start(ServeConfig::default());
    let addr = h.addr();
    let mut c = connect(&h);
    let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    drop(c);
    h.shutdown(); // must not hang
                  // The listener is gone (allow a beat for the OS to tear down).
    std::thread::sleep(Duration::from_millis(50));
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut s) => {
            // Accept backlog may still hand us a socket; it must be dead.
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            assert!(
                http_roundtrip(&mut s, "GET", "/healthz", "").is_err(),
                "server must not answer after shutdown"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming ingest: WAL durability, group commit, restart recovery.
// ---------------------------------------------------------------------------

fn normalize_cached(body: &str) -> String {
    body.replace("\"cached\":true", "\"cached\":false")
}

#[test]
fn healthz_reports_wal_backlog() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let (status, body) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("wal_backlog").and_then(|b| b.as_u64()), Some(0), "{body}");
    h.shutdown();
}

#[test]
fn synchronous_wal_updates_survive_restart() {
    let dir = iolap_storage::TempDir::new("serve-wal-sync").unwrap();
    let wal = dir.path().join("ingest.wal");
    let cfg = || ServeConfig::builder().wal_path(&wal).workers(2).build();
    let query = "{\"region\":{\"Location\":\"MA\"}}";

    let h = start(cfg());
    let mut c = connect(&h);
    let upd = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":2,\"measure\":500.0}]}";
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "synchronous fold: {body}");
    let (_, before) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();
    drop(c);
    h.shutdown();

    // A fresh process starts from the *original* table plus the WAL; the
    // replay must restore both the bits and the epoch.
    let h = start(cfg());
    let mut c = connect(&h);
    let (_, hb) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    let v = iolap_obs::json::parse(&hb).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "epoch survives restart: {hb}");
    let (_, after) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();
    assert_eq!(normalize_cached(&after), normalize_cached(&before), "recovered bits differ");
    h.shutdown();
}

#[test]
fn deferred_acks_are_durable_then_fold_on_the_frame_trigger() {
    let dir = iolap_storage::TempDir::new("serve-wal-defer").unwrap();
    let wal = dir.path().join("ingest.wal");
    // A long window with a 2-frame trigger: the first update stays
    // staged, the second forces the fold.
    let h = start(
        ServeConfig::builder()
            .wal_path(&wal)
            .group_window(Duration::from_secs(30))
            .group_frames(2)
            .build(),
    );
    let mut c = connect(&h);
    let upd1 = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":2,\"measure\":500.0}]}";
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd1).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("durable").and_then(|d| d.as_bool()), Some(true), "{body}");
    assert_eq!(v.get("staged").and_then(|s| s.as_u64()), Some(1), "{body}");
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0), "fold deferred: {body}");
    let (_, hb) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    let v = iolap_obs::json::parse(&hb).unwrap();
    assert_eq!(v.get("wal_backlog").and_then(|b| b.as_u64()), Some(1), "{hb}");

    let upd2 = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":3,\"measure\":7.0}]}";
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd2).unwrap();
    assert_eq!(status, 200, "{body}");
    // The frame trigger folds both staged batches right after the ack;
    // poll healthz briefly for the published epochs.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, hb) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
        let v = iolap_obs::json::parse(&hb).unwrap();
        let epoch = v.get("epoch").and_then(|e| e.as_u64()).unwrap_or(0);
        let backlog = v.get("wal_backlog").and_then(|b| b.as_u64()).unwrap_or(99);
        if epoch == 2 && backlog == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "fold never happened: {hb}");
        std::thread::sleep(Duration::from_millis(20));
    }
    h.shutdown();
}

#[test]
fn shutdown_flushes_the_deferred_backlog() {
    let dir = iolap_storage::TempDir::new("serve-wal-flush").unwrap();
    let wal = dir.path().join("ingest.wal");
    let cfg = |window: Duration| {
        ServeConfig::builder().wal_path(&wal).group_window(window).group_frames(1000).build()
    };

    let h = start(cfg(Duration::from_secs(30)));
    let mut c = connect(&h);
    let upd = "{\"mutations\":[{\"op\":\"update\",\"fact_id\":2,\"measure\":500.0}]}";
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("durable").and_then(|d| d.as_bool()), Some(true), "{body}");
    drop(c);
    // Graceful shutdown folds the staged batch into a delta segment
    // before the coordinator exits (the stdin-EOF path in the CLI).
    h.shutdown();

    // Synchronous restart: the WAL replays one committed batch whether
    // or not the flush ran; the flush is observable as epoch 1 *before*
    // any new traffic plus the updated bits.
    let h = start(cfg(Duration::ZERO));
    let mut c = connect(&h);
    let (_, hb) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    let v = iolap_obs::json::parse(&hb).unwrap();
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(1), "{hb}");
    let query = "{\"region\":{\"Location\":\"MA\"}}";
    let (_, recovered) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();
    h.shutdown();

    // Reference: the same update folded synchronously on a WAL-less
    // server must produce byte-identical bits at the same epoch.
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let (status, body) = http_roundtrip(&mut c, "POST", "/update", upd).unwrap();
    assert_eq!(status, 200, "{body}");
    let (_, reference) = http_roundtrip(&mut c, "POST", "/query", query).unwrap();
    assert_eq!(
        normalize_cached(&recovered),
        normalize_cached(&reference),
        "replayed bits must match the synchronous fold"
    );
    h.shutdown();
}
