//! End-to-end HTTP behavior of the query server: the protocol surface
//! (routing, status codes, malformed input) and the robustness story
//! (load shedding, graceful shutdown). Aggregate *correctness* against
//! the library is covered by the workspace-level `serve_consistency`
//! test; this file is about the server being a well-behaved HTTP peer.

use iolap_core::{AllocConfig, PolicySpec};
use iolap_model::paper_example;
use iolap_query::AggFn;
use iolap_serve::{http_roundtrip, read_response, ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start(cfg: ServeConfig) -> ServerHandle {
    Server::start(
        paper_example::table1(),
        PolicySpec::em_count(0.01),
        AllocConfig::builder().in_memory(256).build(),
        "127.0.0.1:0",
        cfg,
    )
    .expect("server starts")
}

fn connect(h: &ServerHandle) -> TcpStream {
    TcpStream::connect(h.addr()).expect("connect")
}

#[test]
fn healthz_reports_ok_and_epoch_zero() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let (status, body) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = iolap_obs::json::parse(&body).unwrap();
    assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert_eq!(v.get("epoch").and_then(|e| e.as_u64()), Some(0));
    h.shutdown();
}

#[test]
fn query_and_metrics_round_trip_over_keep_alive() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    // Two queries and a metrics scrape over the same connection.
    let body = iolap_serve::wire::query_body(&[("Location", "MA")], AggFn::Sum, None);
    let (status, first) = http_roundtrip(&mut c, "POST", "/query", &body).unwrap();
    assert_eq!(status, 200, "{first}");
    let v = iolap_obs::json::parse(&first).unwrap();
    assert_eq!(v.get("cached").and_then(|b| b.as_bool()), Some(false));

    let (status, second) = http_roundtrip(&mut c, "POST", "/query", &body).unwrap();
    assert_eq!(status, 200);
    let v = iolap_obs::json::parse(&second).unwrap();
    assert_eq!(v.get("cached").and_then(|b| b.as_bool()), Some(true), "{second}");
    // The cached answer must be byte-identical apart from the flag.
    assert_eq!(first.replace("\"cached\":false", ""), second.replace("\"cached\":true", ""));

    let (status, metrics) = http_roundtrip(&mut c, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("iolap_serve_requests"), "{metrics}");
    assert!(metrics.contains("iolap_serve_cache_hit"), "{metrics}");
    h.shutdown();
}

#[test]
fn unknown_paths_and_methods_get_404_and_405() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    let (status, _) = http_roundtrip(&mut c, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_roundtrip(&mut c, "GET", "/query", "").unwrap();
    assert_eq!(status, 405);
    let (status, _) = http_roundtrip(&mut c, "POST", "/healthz", "").unwrap();
    assert_eq!(status, 405);
    h.shutdown();
}

#[test]
fn malformed_bodies_are_400_and_never_kill_the_worker() {
    let h = start(ServeConfig::default());
    let mut c = connect(&h);
    for bad in ["not json", "{\"agg\": \"median\"}", "{\"region\": {\"Nowhere\": \"MA\"}}"] {
        let (status, body) = http_roundtrip(&mut c, "POST", "/query", bad).unwrap();
        assert_eq!(status, 400, "{bad:?} → {body}");
        assert!(iolap_obs::json::parse(&body).unwrap().get("error").is_some());
    }
    // The same worker still answers afterwards.
    let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    h.shutdown();
}

#[test]
fn protocol_violations_close_with_4xx() {
    let h = start(ServeConfig::default());
    // Not HTTP at all.
    let mut c = connect(&h);
    c.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut c).unwrap();
    assert_eq!(status, 400);
    // Chunked transfer encoding is outside the subset.
    let mut c = connect(&h);
    c.write_all(b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut c).unwrap();
    assert_eq!(status, 400);
    h.shutdown();
}

#[test]
fn oversized_bodies_are_413() {
    let cfg = ServeConfig { max_body_bytes: 64, ..ServeConfig::default() };
    let h = start(cfg);
    let mut c = connect(&h);
    let huge = "x".repeat(1000);
    let mut s = String::from("{\"pad\": \"");
    s.push_str(&huge);
    s.push_str("\"}");
    c.write_all(
        format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}", s.len(), s).as_bytes(),
    )
    .unwrap();
    let (status, _) = read_response(&mut c).unwrap();
    assert_eq!(status, 413);
    h.shutdown();
}

#[test]
fn saturated_server_sheds_with_503() {
    // One worker, queue depth one. Park the worker on an idle connection
    // (it blocks in read_request until we speak), fill the queue slot,
    // then the next connection must be shed inline by the accept thread.
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let h = start(cfg);

    let parked = connect(&h); // worker picks this up and blocks reading
    std::thread::sleep(Duration::from_millis(150));
    let queued = connect(&h); // fills the single queue slot
    std::thread::sleep(Duration::from_millis(150));

    // With the worker parked and the queue full, this one is shed.
    let mut c = connect(&h);
    let (status, body) = read_response(&mut c).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("saturated"), "{body}");
    assert!(
        h.obs().counter("serve.shed").unwrap().get() >= 1,
        "shed counter must record the rejection"
    );

    // Un-park: the parked and queued connections still get served.
    for mut c in [parked, queued] {
        let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
    }
    h.shutdown();
}

#[test]
fn shutdown_drains_and_joins() {
    let h = start(ServeConfig::default());
    let addr = h.addr();
    let mut c = connect(&h);
    let (status, _) = http_roundtrip(&mut c, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    drop(c);
    h.shutdown(); // must not hang
                  // The listener is gone (allow a beat for the OS to tear down).
    std::thread::sleep(Duration::from_millis(50));
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut s) => {
            // Accept backlog may still hand us a socket; it must be dead.
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            assert!(
                http_roundtrip(&mut s, "GET", "/healthz", "").is_err(),
                "server must not answer after shutdown"
            );
        }
    }
}
