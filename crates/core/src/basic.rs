//! The Basic Algorithm (Algorithm 1) and Partitioned Basic (Algorithm 2).
//!
//! Basic is the in-memory reference every scalable algorithm is proven
//! equivalent to (Theorem 1 ties it to the allocation equations;
//! Corollaries 1–2 and Theorem 9 tie the others to it). Partitioned Basic
//! demonstrates Theorem 2: any partitioning of the allocation graph's
//! edges, processed in any order within a pass, reaches the same values.

use crate::error::Result;
use crate::inmem::InMemProblem;
use crate::policy::PolicySpec;
use crate::prep::PreparedData;

/// Load the whole prepared dataset into memory as an [`InMemProblem`].
pub fn load_problem(prep: &mut PreparedData) -> Result<InMemProblem> {
    let cells: Vec<_> = {
        let mut v = Vec::with_capacity(prep.cells.len() as usize);
        let mut cursor = prep.cells.scan();
        while let Some(c) = cursor.next()? {
            v.push(c);
        }
        v
    };
    let mut facts = Vec::with_capacity(prep.facts.len() as usize);
    prep.facts.read_batch(0, &mut facts, prep.facts.len() as usize)?;
    Ok(InMemProblem::build(cells, facts, &prep.schema))
}

/// Run Algorithm 1 to convergence. Returns the solved problem plus
/// `(iterations, converged)`.
pub fn run_basic(
    prep: &mut PreparedData,
    policy: &PolicySpec,
) -> Result<(InMemProblem, u32, bool)> {
    let obs = prep.env.obs().clone();
    let mut prob = load_problem(prep)?;
    let (iters, conv) = if obs.is_tracing() {
        let mut on_iter = |t: u32, max_rel: f64, remaining: u64| {
            obs.point(
                "fixpoint.iteration",
                vec![
                    ("algorithm".to_string(), "basic".into()),
                    ("iter".to_string(), t.into()),
                    ("max_rel_delta".to_string(), max_rel.into()),
                    ("remaining".to_string(), remaining.into()),
                ],
            );
        };
        prob.solve_observed(&policy.convergence, Some(&mut on_iter))
    } else {
        prob.solve(&policy.convergence)
    };
    Ok((prob, iters, conv))
}

/// Partitioned Basic (Algorithm 2): identical math, but the edges are
/// processed partition by partition in a caller-chosen order. `partition`
/// maps each fact index to a partition id; partitions are processed in
/// ascending id order within each pass.
///
/// Exists to *demonstrate* Theorem 2 (the fixpoint is order-independent);
/// tests compare its output against [`run_basic`].
pub fn solve_partitioned(
    prob: &mut InMemProblem,
    policy: &PolicySpec,
    partition: &[u32],
) -> (u32, bool) {
    assert_eq!(partition.len(), prob.facts.len());
    let conv = policy.convergence;
    let mut order: Vec<usize> = (0..prob.facts.len()).collect();
    order.sort_by_key(|&r| (partition[r], r));

    let mut remaining = prob.cells.iter().filter(|c| !c.converged).count();
    if remaining == 0 || prob.facts.is_empty() || conv.max_iters == 0 {
        return (0, true);
    }
    let mut new_delta = vec![0.0f64; prob.cells.len()];
    for t in 1..=conv.max_iters {
        // Γ pass, partition order.
        for &r in &order {
            let mut g = 0.0;
            for &c in prob.covered(r) {
                g += prob.cells[c as usize].delta;
            }
            prob.facts[r].gamma = g;
        }
        // Δ pass, partition order.
        for (c, cell) in prob.cells.iter().enumerate() {
            new_delta[c] = cell.delta0;
        }
        for &r in &order {
            let g = prob.facts[r].gamma;
            if g <= 0.0 {
                continue;
            }
            for &c in prob.covered(r) {
                new_delta[c as usize] += prob.cells[c as usize].delta / g;
            }
        }
        for (c, cell) in prob.cells.iter_mut().enumerate() {
            if cell.converged {
                continue;
            }
            let nd = new_delta[c];
            if conv.cell_converged(cell.delta, nd) {
                cell.converged = true;
                remaining -= 1;
            }
            cell.delta = nd;
        }
        if remaining == 0 {
            return (t, true);
        }
    }
    (conv.max_iters, remaining == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use crate::prep::prepare;
    use iolap_model::paper_example;
    use iolap_storage::Env;

    fn prep_with(policy: &PolicySpec) -> PreparedData {
        let env = Env::builder("basic-test").pool_pages(64).in_memory().build().unwrap();
        prepare(&paper_example::table1(), policy, &env, 8).unwrap()
    }

    #[test]
    fn basic_converges_on_table1() {
        let policy = PolicySpec::em_count(0.005);
        let mut p = prep_with(&policy);
        let (mut prob, iters, conv) = run_basic(&mut p, &policy).unwrap();
        assert!(conv);
        assert!(iters >= 2, "table 1 needs a few iterations at ε=0.005");
        let mut n = 0;
        prob.emit(|e| {
            assert!(e.weight > 0.0);
            n += 1;
        });
        assert_eq!(n, 12);
    }

    /// Theorem 2: the choice of partitioning and processing order does
    /// not change the fixpoint.
    #[test]
    fn partitioned_basic_equals_basic() {
        let policy = PolicySpec::em_count(0.001);
        // Baseline.
        let mut p1 = prep_with(&policy);
        let (basic, i1, _) = run_basic(&mut p1, &policy).unwrap();

        // Several different partitionings.
        let partitions: Vec<Vec<u32>> = vec![
            vec![0; 9],                      // all in one
            (0..9u32).collect(),             // each alone
            vec![1, 0, 1, 0, 1, 0, 1, 0, 1], // interleaved
            vec![2, 2, 1, 1, 0, 0, 2, 1, 0], // scrambled
        ];
        for part in &partitions {
            let mut p2 = prep_with(&policy);
            let mut prob = load_problem(&mut p2).unwrap();
            let (i2, c2) = solve_partitioned(&mut prob, &policy, part);
            assert!(c2);
            assert_eq!(i1, i2, "same trajectory for {part:?}");
            for (a, b) in basic.cells.iter().zip(&prob.cells) {
                assert!(
                    (a.delta - b.delta).abs() < 1e-9,
                    "partition {part:?}: {} vs {}",
                    a.delta,
                    b.delta
                );
            }
        }
    }

    #[test]
    fn iterations_match_epsilon_ladder() {
        // Looser ε converges in fewer (or equal) iterations — the knob the
        // paper's figures sweep.
        let mut last = 0;
        for eps in [0.1, 0.05, 0.01, 0.005, 0.001] {
            let policy = PolicySpec::em_count(eps);
            let mut p = prep_with(&policy);
            let (_, iters, conv) = run_basic(&mut p, &policy).unwrap();
            assert!(conv);
            assert!(iters >= last, "ε={eps}: {iters} < {last}");
            last = iters;
        }
    }
}
