//! High-level entry point: run a policy + algorithm over a fact table and
//! get back the Extended Database plus a full [`RunReport`].

use crate::basic::run_basic;
use crate::block::{plan_sets, run_block};
use crate::edb::{emit_precise_entries, materialize, ExtendedDatabase};
use crate::error::Result;
use crate::independent::{restore_canonical, run_independent};
use crate::policy::PolicySpec;
use crate::prep::{prepare, PreparedData};
use crate::report::RunReport;
use crate::transitive::run_transitive;
use iolap_model::FactTable;
use iolap_obs::Obs;
use iolap_storage::{Env, PrefetchConfig};
use std::path::PathBuf;
use std::time::Instant;

/// Which of the paper's algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1 — in-memory reference.
    Basic,
    /// Algorithm 3 — chain-per-scan with repeated sorting of `C`.
    Independent,
    /// Algorithm 4 — canonical order + partition windows.
    Block,
    /// Algorithm 5 — connected components, per-component iteration.
    Transitive,
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "basic" => Ok(Algorithm::Basic),
            "independent" | "indep" => Ok(Algorithm::Independent),
            "block" => Ok(Algorithm::Block),
            "transitive" | "trans" => Ok(Algorithm::Transitive),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::Basic => "basic",
            Algorithm::Independent => "independent",
            Algorithm::Block => "block",
            Algorithm::Transitive => "transitive",
        };
        write!(f, "{name}")
    }
}

/// Runtime configuration (the experimental knobs of Section 11).
#[derive(Debug, Clone)]
pub struct AllocConfig {
    /// Buffer pool size |B| in 4 KiB pages (the paper sweeps 600 KB–50 MB).
    pub buffer_pages: usize,
    /// External-sort budget in pages (defaults to the buffer size).
    pub sort_pages: usize,
    /// Keep all pages in memory (unit tests / CI) instead of temp files.
    pub in_memory_backing: bool,
    /// Directory for the paged files (temp dir if `None`).
    pub dir: Option<PathBuf>,
    /// Independent fidelity flag: re-sort the summary tables every
    /// iteration, as Algorithm 3 specifies (`false` = ablation).
    pub resort_facts: bool,
    /// Transitive optimization: iterate each component only until *its*
    /// cells converge (`false` = ablation: global iteration count).
    pub per_component_convergence: bool,
    /// Worker threads for Transitive's component-processing step:
    /// `1` = sequential, `n > 1` = a pool of `n` workers, `0` = one per
    /// available core. Results are identical for every value (Theorem 2).
    pub threads: usize,
    /// Default allocation policy, used by callers (the `iolap` facade)
    /// that run from a config alone. [`allocate`] takes an explicit
    /// policy and ignores this field.
    pub policy: Option<PolicySpec>,
    /// Observability handle threaded into the storage environment and
    /// the allocation passes. Disabled (free) by default.
    pub obs: Obs,
    /// Asynchronous I/O prefetch pipeline (read-ahead + write-behind).
    /// Disabled by default; enabling it overlaps the sequential passes'
    /// page I/O with compute while keeping accounted I/O bit-identical.
    pub prefetch: PrefetchConfig,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            buffer_pages: 1024, // 4 MiB
            sort_pages: 0,      // 0 = same as buffer_pages
            in_memory_backing: false,
            dir: None,
            resort_facts: true,
            per_component_convergence: true,
            threads: 1,
            policy: None,
            obs: Obs::disabled(),
            prefetch: PrefetchConfig::disabled(),
        }
    }
}

impl AllocConfig {
    /// Start building a config (the preferred construction path).
    pub fn builder() -> AllocConfigBuilder {
        AllocConfigBuilder { cfg: AllocConfig::default() }
    }

    /// In-memory backing with the given pool size (tests & examples).
    ///
    /// Deprecated for external use; every internal caller has migrated to
    /// [`AllocConfig::builder`] (the builder's `in_memory(n)` shorthand is
    /// the drop-in replacement and is *not* deprecated). One gated
    /// equivalence test keeps this constructor honest until it is removed.
    #[deprecated(
        since = "0.2.0",
        note = "use `AllocConfig::builder().in_memory(n).build()` (or \
                `.buffer_pages(n).in_memory_backing(true)` for the long form)"
    )]
    pub fn in_memory(buffer_pages: usize) -> Self {
        AllocConfig { buffer_pages, in_memory_backing: true, ..Default::default() }
    }

    fn effective_sort_pages(&self) -> usize {
        if self.sort_pages == 0 {
            self.buffer_pages.max(2)
        } else {
            self.sort_pages
        }
    }

    /// Build the storage environment this config describes.
    pub fn build_env(&self, tag: &str) -> Result<Env> {
        let mut b = Env::builder(tag)
            .pool_pages(self.buffer_pages)
            .obs(self.obs.clone())
            .prefetch(self.prefetch);
        if self.in_memory_backing {
            b = b.in_memory();
        }
        if let Some(dir) = &self.dir {
            b = b.dir(dir.clone());
        }
        Ok(b.build()?)
    }
}

/// Builder for [`AllocConfig`] — the knobs of the paper's Section 11
/// experiments plus engine extensions (threads, observability).
///
/// ```
/// use iolap_core::AllocConfig;
///
/// let cfg = AllocConfig::builder()
///     .buffer_pages(256)
///     .in_memory_backing(true)
///     .threads(2)
///     .build();
/// assert_eq!(cfg.buffer_pages, 256);
/// assert_eq!(cfg.threads, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AllocConfigBuilder {
    cfg: AllocConfig,
}

impl AllocConfigBuilder {
    /// Buffer pool size |B| in 4 KiB pages.
    pub fn buffer_pages(mut self, pages: usize) -> Self {
        self.cfg.buffer_pages = pages;
        self
    }

    /// External-sort budget in pages (`0` = same as the buffer size).
    pub fn sort_pages(mut self, pages: usize) -> Self {
        self.cfg.sort_pages = pages;
        self
    }

    /// Keep all pages in memory instead of temp files.
    pub fn in_memory_backing(mut self, yes: bool) -> Self {
        self.cfg.in_memory_backing = yes;
        self
    }

    /// Shorthand: in-memory backing with the given pool size (the common
    /// test/example configuration).
    pub fn in_memory(self, buffer_pages: usize) -> Self {
        self.buffer_pages(buffer_pages).in_memory_backing(true)
    }

    /// Directory for the paged files (temp dir if unset).
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.dir = Some(dir.into());
        self
    }

    /// Independent fidelity flag: re-sort the summary tables every
    /// iteration, as Algorithm 3 specifies (`false` = ablation).
    pub fn resort_facts(mut self, yes: bool) -> Self {
        self.cfg.resort_facts = yes;
        self
    }

    /// Transitive optimization: iterate each component only until *its*
    /// cells converge (`false` = ablation).
    pub fn per_component_convergence(mut self, yes: bool) -> Self {
        self.cfg.per_component_convergence = yes;
        self
    }

    /// Worker threads for Transitive's component step (`0` = one per
    /// available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Default allocation policy for facade callers.
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.cfg.policy = Some(policy);
        self
    }

    /// Attach an observability handle (spans + metrics).
    pub fn obs(mut self, obs: Obs) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Configure the asynchronous I/O prefetch pipeline (disabled by
    /// default). Prefetch never changes accounted page I/O — it only
    /// overlaps it with compute.
    pub fn prefetch(mut self, cfg: PrefetchConfig) -> Self {
        self.cfg.prefetch = cfg;
        self
    }

    /// Shorthand: enable prefetch with the given staging depth (in pages)
    /// and one background thread. `0` disables.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.cfg.prefetch =
            if depth == 0 { PrefetchConfig::disabled() } else { PrefetchConfig::depth(depth) };
        self
    }

    /// Finish building.
    pub fn build(self) -> AllocConfig {
        self.cfg
    }
}

/// The result of [`allocate`]: the EDB, the report, and the prepared data
/// (kept for maintenance and inspection).
pub struct AllocationRun {
    /// The materialized Extended Database.
    pub edb: ExtendedDatabase,
    /// Timing / I/O / structure statistics.
    pub report: RunReport,
    /// The post-run prepared data (cell deltas hold the fixpoint).
    pub prep: PreparedData,
    /// For Transitive runs: the raw→resolved ccid map (for maintenance).
    pub ccid_resolution: Option<Vec<u32>>,
}

/// Apply `policy` to `table` with `algorithm` and materialize the EDB.
pub fn allocate(
    table: &FactTable,
    policy: &PolicySpec,
    algorithm: Algorithm,
    cfg: &AllocConfig,
) -> Result<AllocationRun> {
    let env = cfg.build_env(&format!("alloc-{algorithm}"))?;
    allocate_in_env(table, policy, algorithm, cfg, &env)
}

/// [`allocate`] against a caller-provided environment (benchmarks share
/// one environment across runs to control the page cache).
pub fn allocate_in_env(
    table: &FactTable,
    policy: &PolicySpec,
    algorithm: Algorithm,
    cfg: &AllocConfig,
    env: &Env,
) -> Result<AllocationRun> {
    let sort_pages = cfg.effective_sort_pages();
    let mut report = RunReport { algorithm: algorithm.to_string(), ..Default::default() };
    let (hits0, misses0) = env.pool().hit_stats();
    let prefetch0 = env.pool().prefetch_stats();
    let obs = env.obs().clone();
    let mut run_span =
        obs.span_with("alloc.run", vec![("algorithm".to_string(), algorithm.to_string().into())]);

    // ---- preprocessing ----------------------------------------------------
    let t0 = Instant::now();
    let io0 = env.stats().snapshot();
    let mut prep = {
        let _s = obs.span("alloc.prep");
        prepare(table, policy, env, sort_pages)?
    };
    report.wall_prep = t0.elapsed();
    report.io_prep = env.stats().snapshot() - io0;
    report.num_cells = prep.cells.len();
    report.num_imprecise = prep.facts.len();
    report.num_tables = prep.tables.len() as u64;
    report.width = prep.cover.width() as u64;
    report.partition_pages = prep.partition_pages();
    report.unallocatable = prep.unallocatable;

    let mut edb = ExtendedDatabase::create(env, prep.k())?;
    let mut ccid_resolution = None;

    // ---- allocation passes -------------------------------------------------
    let t1 = Instant::now();
    let io1 = env.stats().snapshot();
    let mut pass_span = obs.span("alloc.passes");
    let mut basic_problem = None;
    match algorithm {
        Algorithm::Basic => {
            let (prob, iters, conv) = run_basic(&mut prep, policy)?;
            report.iterations = iters;
            report.converged = conv;
            basic_problem = Some(prob);
        }
        Algorithm::Independent => {
            let out = run_independent(&mut prep, policy, sort_pages, cfg.resort_facts)?;
            report.iterations = out.iterations;
            report.converged = out.converged;
        }
        Algorithm::Block => {
            let out = run_block(&mut prep, policy, cfg.buffer_pages)?;
            report.iterations = out.iterations;
            report.converged = out.converged;
            report.num_table_sets = out.sets.len() as u64;
            report.over_budget = out.over_budget;
        }
        Algorithm::Transitive => {
            let out = run_transitive(
                &mut prep,
                policy,
                cfg.buffer_pages,
                sort_pages,
                &mut edb,
                cfg.per_component_convergence,
                cfg.threads,
            )?;
            report.iterations = out.iterations_max;
            report.converged = out.converged;
            report.num_table_sets = out.num_table_sets;
            report.over_budget = out.over_budget;
            report.components = Some(out.stats);
            ccid_resolution = Some(out.resolved);
        }
    }
    pass_span.record("iterations", report.iterations);
    pass_span.record("converged", report.converged);
    drop(pass_span);
    report.wall_alloc = t1.elapsed();
    report.io_alloc = env.stats().snapshot() - io1;

    // ---- EDB materialization -------------------------------------------------
    let t2 = Instant::now();
    let io2 = env.stats().snapshot();
    let edb_span = obs.span("alloc.edb");
    match algorithm {
        Algorithm::Basic => {
            let mut prob = basic_problem.expect("set above");
            // Persist the fixpoint into the cells file (so queries and
            // inspection over `prep` see it), then emit.
            {
                let mut cursor = prep.cells.scan();
                let mut i = 0usize;
                while let Some(mut cell) = cursor.next()? {
                    let solved = &prob.cells[i];
                    debug_assert_eq!(solved.key, cell.key);
                    cell.delta = solved.delta;
                    cell.converged = solved.converged;
                    cursor.write_back(&cell)?;
                    i += 1;
                }
            }
            let mut seen = std::collections::HashSet::new();
            let mut pending = Vec::new();
            prob.emit(|e| pending.push(e));
            for e in pending {
                let first = seen.insert(e.fact_id);
                edb.push(&e, false, first)?;
            }
            emit_precise_entries(&mut prep, &mut edb)?;
        }
        Algorithm::Independent => {
            restore_canonical(&mut prep, sort_pages)?;
            let window_pages = (cfg.buffer_pages as u64).saturating_sub(4).max(1);
            let (sets, _) = plan_sets(&prep, window_pages);
            materialize(&mut prep, &sets, &mut edb, true)?;
        }
        Algorithm::Block => {
            let window_pages = (cfg.buffer_pages as u64).saturating_sub(4).max(1);
            let (sets, _) = plan_sets(&prep, window_pages);
            materialize(&mut prep, &sets, &mut edb, true)?;
        }
        Algorithm::Transitive => {
            // Imprecise entries were emitted per component; add precise.
            emit_precise_entries(&mut prep, &mut edb)?;
        }
    }
    drop(edb_span);
    report.wall_edb = t2.elapsed();
    report.io_edb = env.stats().snapshot() - io2;
    // The freshly materialized EDB is one base segment; maintenance and
    // queries refine this once deltas and pruning statistics accrue.
    report.edb_segments = 1;
    let (hits1, misses1) = env.pool().hit_stats();
    report.pool_hits = hits1 - hits0;
    report.pool_misses = misses1 - misses0;
    if let (Some(before), Some(after)) = (prefetch0, env.pool().prefetch_stats()) {
        report.prefetch = Some(after - before);
    }

    run_span.record("iterations", report.iterations);
    drop(run_span);
    if let Some(metrics) = obs.metrics() {
        report.record_into(metrics);
        // Per-shard buffer-pool census — gauges, so re-running against a
        // shared environment overwrites rather than double-counts.
        for (i, s) in env.pool().shard_stats().iter().enumerate() {
            metrics.gauge(&format!("pool.shard.{i}.hits")).set(s.hits as i64);
            metrics.gauge(&format!("pool.shard.{i}.misses")).set(s.misses as i64);
            metrics.gauge(&format!("pool.shard.{i}.evictions")).set(s.evictions as i64);
        }
    }

    Ok(AllocationRun { edb, report, prep, ccid_resolution })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    fn run(algorithm: Algorithm, policy: &PolicySpec) -> AllocationRun {
        let t = paper_example::table1();
        let cfg = AllocConfig::builder().in_memory(256).build();
        allocate(&t, policy, algorithm, &cfg).unwrap()
    }

    #[test]
    fn all_algorithms_allocate_table1() {
        for alg in
            [Algorithm::Basic, Algorithm::Independent, Algorithm::Block, Algorithm::Transitive]
        {
            let mut r = run(alg, &PolicySpec::em_count(0.01));
            assert!(r.report.converged, "{alg}");
            assert_eq!(r.edb.num_facts_allocated(), 14, "{alg}");
            assert_eq!(r.edb.num_precise_entries(), 5, "{alg}");
            assert_eq!(r.edb.num_imprecise_entries(), 12, "{alg}");
            let checked = r.edb.validate_weights(1e-9).unwrap().unwrap();
            assert_eq!(checked, 14, "{alg}");
        }
    }

    #[test]
    fn all_algorithms_agree_on_weights() {
        let policy = PolicySpec::em_count(0.0005);
        let mut reference = run(Algorithm::Basic, &policy);
        let want = reference.edb.weight_map().unwrap();
        for alg in [Algorithm::Independent, Algorithm::Block, Algorithm::Transitive] {
            let mut r = run(alg, &policy);
            let got = r.edb.weight_map().unwrap();
            assert_eq!(got.len(), want.len(), "{alg}");
            for (id, entries) in &want {
                let g = &got[id];
                assert_eq!(g.len(), entries.len(), "{alg} fact {id}");
                for (a, b) in entries.iter().zip(g.iter()) {
                    assert_eq!(a.0, b.0, "{alg} fact {id}");
                    assert!((a.1 - b.1).abs() < 1e-6, "{alg} fact {id}: {} vs {}", a.1, b.1);
                }
            }
        }
    }

    #[test]
    fn report_structure_is_filled() {
        let r = run(Algorithm::Transitive, &PolicySpec::em_count(0.05));
        assert_eq!(r.report.num_cells, 5);
        assert_eq!(r.report.num_imprecise, 9);
        assert_eq!(r.report.num_tables, 5);
        assert_eq!(r.report.width, 3);
        assert!(r.report.components.is_some());
        assert!(r.ccid_resolution.is_some());
        let s = format!("{}", r.report);
        assert!(s.contains("transitive"), "{s}");
    }

    #[test]
    fn builder_covers_every_knob() {
        let obs = iolap_obs::Obs::metrics_only();
        let cfg = AllocConfig::builder()
            .buffer_pages(512)
            .sort_pages(64)
            .in_memory_backing(true)
            .resort_facts(false)
            .per_component_convergence(false)
            .threads(4)
            .policy(PolicySpec::uniform())
            .obs(obs)
            .build();
        assert_eq!(cfg.buffer_pages, 512);
        assert_eq!(cfg.sort_pages, 64);
        assert!(cfg.in_memory_backing);
        assert!(!cfg.resort_facts);
        assert!(!cfg.per_component_convergence);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.policy, Some(PolicySpec::uniform()));
        assert!(cfg.obs.is_enabled());
    }

    // The one sanctioned internal use of the deprecated constructor: an
    // equivalence guard that keeps it behaving like the builder path until
    // it is removed. Everything else goes through `AllocConfig::builder()`.
    #[test]
    #[allow(deprecated)]
    fn deprecated_in_memory_still_matches_builder() {
        let old = AllocConfig::in_memory(96);
        let new = AllocConfig::builder().in_memory(96).build();
        assert_eq!(old.buffer_pages, new.buffer_pages);
        assert_eq!(old.in_memory_backing, new.in_memory_backing);
        assert_eq!(old.sort_pages, new.sort_pages);
        assert_eq!(old.threads, new.threads);
        assert_eq!(old.prefetch, new.prefetch);
    }

    #[test]
    fn observed_run_records_report_metrics() {
        let t = paper_example::table1();
        let obs = iolap_obs::Obs::metrics_only();
        let cfg = AllocConfig::builder().in_memory(256).obs(obs.clone()).build();
        let r = allocate(&t, &PolicySpec::em_count(0.01), Algorithm::Transitive, &cfg).unwrap();
        let metrics = obs.metrics().unwrap();
        assert_eq!(metrics.counter("report.iterations").get(), u64::from(r.report.iterations));
        assert_eq!(metrics.counter("report.io.alloc.reads").get(), r.report.io_alloc.reads);
        assert!(metrics.counter("pager.allocs").get() > 0);
        assert!(metrics.histogram("transitive.component_tuples").count() > 0);
    }

    #[test]
    fn algorithm_parsing() {
        assert_eq!("block".parse::<Algorithm>().unwrap(), Algorithm::Block);
        assert_eq!("TRANS".parse::<Algorithm>().unwrap(), Algorithm::Transitive);
        assert!("nope".parse::<Algorithm>().is_err());
    }
}
