//! Durable mutation logging for the streaming-ingest write path.
//!
//! [`MutationWal`] is a typed wrapper over the storage layer's
//! [`Wal`]: each [`EdbMutation`] becomes one checksummed frame, each
//! `/update` request batch becomes one WAL batch, and crash recovery
//! replays the committed batches through
//! [`crate::MaintainableEdb::apply_batch`] *per batch* — preserving the
//! batch granularity that bit-identity with the synchronous apply path
//! depends on (`apply(A); apply(B)` is not `apply(A ++ B)`).
//!
//! The wire encoding is fixed and small enough for one frame
//! ([`iolap_storage::wal::MAX_PAYLOAD`] bytes):
//!
//! ```text
//! UpdateMeasure  tag=1 · fact_id u64 LE · measure f64-bits LE      (17 B)
//! Insert         tag=2 · fact_id u64 LE · measure f64-bits LE
//!                      · dims [u32 LE; MAX_DIMS]                    (49 B)
//! Delete         tag=3 · fact_id u64 LE                             (9 B)
//! ```
//!
//! Measures travel as raw `f64::to_bits`, so a replayed mutation is
//! bit-identical to the one that was acknowledged — the invariant every
//! identity harness in this repo checks.

use crate::error::Result;
use crate::maintain::EdbMutation;
use iolap_model::{Fact, FactId, MAX_DIMS};
use iolap_storage::wal::{Wal, WalRecovery};
use iolap_storage::{IoStats, StorageError};
use std::path::Path;

const TAG_UPDATE: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_DELETE: u8 = 3;

/// Encode one mutation into its WAL frame payload.
pub fn encode_mutation(m: &EdbMutation) -> Vec<u8> {
    match m {
        EdbMutation::UpdateMeasure { fact_id, new_measure } => {
            let mut out = Vec::with_capacity(17);
            out.push(TAG_UPDATE);
            out.extend_from_slice(&fact_id.to_le_bytes());
            out.extend_from_slice(&new_measure.to_bits().to_le_bytes());
            out
        }
        EdbMutation::Insert(f) => {
            let mut out = Vec::with_capacity(17 + 4 * MAX_DIMS);
            out.push(TAG_INSERT);
            out.extend_from_slice(&f.id.to_le_bytes());
            out.extend_from_slice(&f.measure.to_bits().to_le_bytes());
            for d in &f.dims {
                out.extend_from_slice(&d.to_le_bytes());
            }
            out
        }
        EdbMutation::Delete(id) => {
            let mut out = Vec::with_capacity(9);
            out.push(TAG_DELETE);
            out.extend_from_slice(&id.to_le_bytes());
            out
        }
    }
}

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

fn take_u64(bytes: &[u8], at: usize) -> std::result::Result<u64, StorageError> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .ok_or_else(|| corrupt("WAL mutation payload truncated"))
}

/// Decode a WAL frame payload back into a mutation. A payload that does
/// not decode exactly (unknown tag, wrong length) is corruption — the
/// frame checksum already passed, so the log itself is damaged.
pub fn decode_mutation(bytes: &[u8]) -> Result<EdbMutation> {
    let tag = *bytes.first().ok_or_else(|| corrupt("empty WAL mutation payload"))?;
    let m = match tag {
        TAG_UPDATE if bytes.len() == 17 => EdbMutation::UpdateMeasure {
            fact_id: take_u64(bytes, 1)?,
            new_measure: f64::from_bits(take_u64(bytes, 9)?),
        },
        TAG_INSERT if bytes.len() == 17 + 4 * MAX_DIMS => {
            let id: FactId = take_u64(bytes, 1)?;
            let measure = f64::from_bits(take_u64(bytes, 9)?);
            let mut dims = [0u32; MAX_DIMS];
            for (i, d) in dims.iter_mut().enumerate() {
                let at = 17 + 4 * i;
                *d = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            }
            EdbMutation::Insert(Fact { id, dims, measure })
        }
        TAG_DELETE if bytes.len() == 9 => EdbMutation::Delete(take_u64(bytes, 1)?),
        _ => {
            return Err(corrupt(format!(
                "WAL mutation payload with tag {tag} and length {} does not decode",
                bytes.len()
            ))
            .into())
        }
    };
    Ok(m)
}

/// A write-ahead log of [`EdbMutation`] batches. One frame per mutation,
/// one WAL batch per request batch; [`MutationWal::sync`] is the
/// durability point (call once per group commit).
pub struct MutationWal {
    wal: Wal,
}

/// What [`MutationWal::open_or_create`] recovered from an existing log.
pub struct MutationRecovery {
    /// Committed request batches, oldest first — replay each through
    /// `apply_batch` to reconstruct the acknowledged EDB state.
    pub batches: Vec<Vec<EdbMutation>>,
    /// Frames discarded as a torn (uncommitted) tail.
    pub torn_frames: u64,
}

impl MutationWal {
    /// Open the log at `path` if it exists — recovering its committed
    /// batches — or create it empty. Page traffic charges `stats`, the
    /// same exact meter the EDB environment uses.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        stats: IoStats,
    ) -> Result<(MutationWal, MutationRecovery)> {
        let (wal, rec) = Wal::open_or_create(path, stats)?;
        Ok((MutationWal { wal }, Self::decode_recovery(rec)?))
    }

    /// An in-memory log (tests): same framing, no durability.
    pub fn in_memory(stats: IoStats) -> MutationWal {
        MutationWal { wal: Wal::in_memory(stats) }
    }

    fn decode_recovery(rec: WalRecovery) -> Result<MutationRecovery> {
        let mut batches = Vec::with_capacity(rec.batches.len());
        for payloads in &rec.batches {
            let mut muts = Vec::with_capacity(payloads.len());
            for p in payloads {
                muts.push(decode_mutation(p)?);
            }
            batches.push(muts);
        }
        Ok(MutationRecovery { batches, torn_frames: rec.torn_frames })
    }

    /// Append one request batch (one frame per mutation plus a commit
    /// frame) and return its batch id. **Not** yet durable — call
    /// [`MutationWal::sync`] once per group.
    pub fn append_batch(&mut self, muts: &[EdbMutation]) -> Result<u64> {
        for m in muts {
            self.wal.append(&encode_mutation(m))?;
        }
        Ok(self.wal.seal_batch()?)
    }

    /// Append a single mutation frame *without* sealing the batch. The
    /// frames are not committed until [`MutationWal::seal_batch`] runs —
    /// recovery discards them as a torn tail. Useful for streaming one
    /// oversized batch frame-by-frame, and for crash-injection tests
    /// that model dying mid-append.
    pub fn append(&mut self, m: &EdbMutation) -> Result<()> {
        Ok(self.wal.append(&encode_mutation(m))?)
    }

    /// Commit the frames appended since the last seal as one batch and
    /// return its batch id (see [`iolap_storage::Wal::seal_batch`]).
    pub fn seal_batch(&mut self) -> Result<u64> {
        Ok(self.wal.seal_batch()?)
    }

    /// The group-commit durability point: fsync everything sealed so far.
    pub fn sync(&mut self) -> Result<()> {
        Ok(self.wal.sync()?)
    }

    /// Committed batches written or recovered so far.
    pub fn batches(&self) -> u64 {
        self.wal.batches()
    }

    /// Total frames in the log.
    pub fn frames(&self) -> u64 {
        self.wal.frames()
    }

    /// Bytes appended over the log's lifetime (the `ingest.wal_bytes`
    /// metrics feed).
    pub fn appended_bytes(&self) -> u64 {
        self.wal.appended_bytes()
    }

    /// Discard the whole log (durably).
    pub fn truncate(&mut self) -> Result<()> {
        Ok(self.wal.truncate()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_storage::TempDir;

    fn sample() -> Vec<EdbMutation> {
        vec![
            EdbMutation::UpdateMeasure { fact_id: 7, new_measure: -0.125 },
            EdbMutation::Insert(Fact::new(901, &[3, 1, 4], 2.5)),
            EdbMutation::Delete(13),
        ]
    }

    #[test]
    fn mutation_codec_roundtrip() {
        for m in sample() {
            let enc = encode_mutation(&m);
            assert!(enc.len() <= iolap_storage::wal::MAX_PAYLOAD);
            let dec = decode_mutation(&enc).unwrap();
            assert_eq!(format!("{m:?}"), format!("{dec:?}"));
        }
    }

    #[test]
    fn measure_bits_survive_the_codec() {
        // NaN payloads and negative zero: bit-exact, not value-exact.
        for bits in [f64::NAN.to_bits() | 1, (-0.0f64).to_bits(), 1.0f64.to_bits()] {
            let m = EdbMutation::UpdateMeasure { fact_id: 1, new_measure: f64::from_bits(bits) };
            match decode_mutation(&encode_mutation(&m)).unwrap() {
                EdbMutation::UpdateMeasure { new_measure, .. } => {
                    assert_eq!(new_measure.to_bits(), bits);
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_payloads_are_errors_not_panics() {
        assert!(decode_mutation(&[]).is_err());
        assert!(decode_mutation(&[9, 0, 0]).is_err());
        let mut enc = encode_mutation(&EdbMutation::Delete(5));
        enc.pop();
        assert!(decode_mutation(&enc).is_err());
    }

    #[test]
    fn batches_replay_in_order_after_reopen() {
        let dir = TempDir::new("mwal").unwrap();
        let path = dir.path().join("ingest.wal");
        {
            let (mut w, rec) = MutationWal::open_or_create(&path, IoStats::new()).unwrap();
            assert!(rec.batches.is_empty());
            assert_eq!(w.append_batch(&sample()).unwrap(), 0);
            assert_eq!(w.append_batch(&[EdbMutation::Delete(99)]).unwrap(), 1);
            w.sync().unwrap();
        }
        let (w, rec) = MutationWal::open_or_create(&path, IoStats::new()).unwrap();
        assert_eq!(w.batches(), 2);
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0].len(), 3);
        assert_eq!(format!("{:?}", rec.batches[0]), format!("{:?}", sample()));
        assert_eq!(format!("{:?}", rec.batches[1]), format!("{:?}", vec![EdbMutation::Delete(99)]));
    }
}
