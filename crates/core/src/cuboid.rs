//! Materialized cuboid lattice: per-segment pre-aggregated rollup cells.
//!
//! A coarse-level rollup over the leaf-grain EDB pays the same page I/O as
//! a leaf dice, because every entry must be read and attributed upward
//! through the leaf→ancestor table. The allocation weights make aggregates
//! *additive* (each fact's allocations sum to its weight, and children sum
//! exactly to parents), so pre-aggregation is sound: for a chosen
//! *grain* — one hierarchy level per dimension — the `(sum, count)` pair
//! of every grain cell fully determines any query whose boundaries align
//! with that grain.
//!
//! [`CuboidLattice`] materializes a small set of such cuboids per segment
//! view, chosen greedily by estimated benefit (segment page count ×
//! query-coverage of the grain) under a configurable storage budget
//! ([`LatticeConfig`]). Each cuboid is stored as a *mini* [`EdbSegment`]
//! through the ordinary segment/page machinery — entry `cell` is the
//! lo-corner leaf cell of the grain cell, `weight` the pre-aggregated
//! count, `measure` the pre-aggregated sum — so cuboid reads reuse fence
//! pruning, the page codecs and [`SegScanStats`] accounting unchanged.
//!
//! **Bit-identity contract.** Every stored `(sum, count)` is produced by
//! accumulating `weight * measure` / `weight` over exactly the entries of
//! that grain cell, in segment-scan order, from a fresh `0.0` accumulator.
//! That is byte-for-byte the loop a fresh [`SegmentCursor`] leaf scan of
//! the grain-cell box performs on the same view, so a stored pair is
//! f64-bit-identical to an on-demand leaf scan of its cell — the property
//! the query planner's *forced leaf* verification mode checks. Cells with
//! no live entries are not stored at all (a fresh scan of such a box
//! contributes nothing, not `±0.0`).
//!
//! **Maintenance.** Segments are immutable; the only way a published
//! segment's content changes is through its exclusion set growing as
//! facts are retired. [`CuboidLattice::sync`] therefore (1) drops lattices
//! whose segment no longer exists (compaction rewrote the tier — fresh
//! cuboids are built for the new segments), and (2) for a surviving
//! segment whose exclusion set changed, recomputes exactly the cells
//! overlapping the supplied dirty region boxes (the same
//! `UpdateReport.touched` geometry that drives server cache
//! invalidation) by fresh leaf scans of the current view.

use crate::error::Result;
use crate::segment::{EdbSegment, SegScanStats, SegmentCursor, SegmentView};
use iolap_hierarchy::LevelNo;
use iolap_model::{
    cmp_cells, CellKey, EdbRecord, FactId, RegionBox, Schema, SegmentLayout, MAX_DIMS,
};
use std::collections::HashMap;
use std::sync::Arc;

/// One hierarchy level per dimension: the granularity of a cuboid.
/// `grain[d] == 1` keeps dimension `d` at leaf grain; `schema.dim(d).levels()`
/// collapses it to the ALL root.
pub type Grain = [LevelNo; MAX_DIMS];

/// Rough at-rest bytes per mini-segment entry, used only to price
/// candidate cuboids against [`LatticeConfig::budget_bytes`] before they
/// are built.
const EST_ENTRY_BYTES: u64 = 48;

/// Storage/selection budget for the per-segment cuboid lattice.
#[derive(Debug, Clone, Copy)]
pub struct LatticeConfig {
    /// Estimated at-rest byte budget for all cuboids of one segment.
    pub budget_bytes: u64,
    /// Segments with fewer live entries than this get no lattice at all
    /// (a leaf scan is already cheap).
    pub min_segment_entries: u64,
    /// Hard cap on cuboids per segment, however cheap they look.
    pub max_cuboids: usize,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig { budget_bytes: 1 << 20, min_segment_entries: 256, max_cuboids: 4 }
    }
}

/// One pre-aggregated grain cell: the half-open leaf box `[lo, hi)` of a
/// grain cell that holds at least one live entry, with its accumulated
/// allocation-weighted sum and count.
#[derive(Debug, Clone, Copy)]
pub struct CuboidCell {
    /// Lo corner (inclusive) of the grain cell's leaf box.
    pub lo: CellKey,
    /// Hi corner (exclusive) of the grain cell's leaf box.
    pub hi: CellKey,
    /// `Σ weight × measure` over the cell's live entries, in scan order.
    pub sum: f64,
    /// `Σ weight` over the cell's live entries, in scan order.
    pub count: f64,
}

/// One materialized cuboid: every non-empty grain cell of one segment
/// view at one grain, plus its mini-segment encoding.
#[derive(Clone)]
pub struct Cuboid {
    /// The level-vector this cuboid is aggregated at.
    pub grain: Grain,
    /// Non-empty cells, sorted by canonical lex order of `lo`. Source of
    /// truth for maintenance; `mini` is its encoded mirror.
    pub cells: Vec<CuboidCell>,
    /// The cells encoded as a mini [`EdbSegment`] (`cell = lo`,
    /// `weight = count`, `measure = sum`, `fact_id` = cell index), so
    /// cuboid reads go through fence pruning and page I/O accounting.
    pub mini: Arc<EdbSegment>,
}

impl Cuboid {
    /// Build the cuboid for `view` at `grain` with one full pruning scan.
    ///
    /// Each entry is slotted into the accumulator of the grain cell that
    /// contains it, so per cell the visited sub-sequence (and therefore
    /// the f64 accumulation) is identical to a fresh leaf scan of that
    /// cell's box on the same view.
    pub fn build(schema: &Schema, view: &SegmentView, grain: Grain) -> Result<Cuboid> {
        let k = schema.k();
        let mut slots: HashMap<CellKey, usize> = HashMap::new();
        let mut cells: Vec<CuboidCell> = Vec::new();
        let region = SegmentCursor::all_region(k);
        let views = [view.clone()];
        let mut cursor = SegmentCursor::new(&views, region);
        cursor.for_each(|e| {
            let mut lo: CellKey = [0; MAX_DIMS];
            let mut hi: CellKey = [0; MAX_DIMS];
            for d in 0..k {
                let h = schema.dim(d);
                let r = h.leaf_range(h.ancestor_at(e.cell[d], grain[d]));
                lo[d] = r.start;
                hi[d] = r.end;
            }
            let i = *slots.entry(lo).or_insert_with(|| {
                cells.push(CuboidCell { lo, hi, sum: 0.0, count: 0.0 });
                cells.len() - 1
            });
            let c = &mut cells[i];
            c.sum += e.weight * e.measure;
            c.count += e.weight;
        })?;
        cells.sort_unstable_by(|a, b| cmp_cells(&a.lo, &b.lo, k));
        let mini = encode_mini(k, &cells);
        Ok(Cuboid { grain, cells, mini })
    }

    /// Number of grain cells materialized.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// At-rest encoded bytes of the mini segment.
    pub fn encoded_bytes(&self) -> u64 {
        self.mini.encoded_bytes()
    }

    /// A scannable view of the mini segment (no exclusions).
    pub fn mini_view(&self) -> SegmentView {
        SegmentView::new(Arc::clone(&self.mini))
    }

    /// Recompute every cell whose box overlaps one of `dirty` by a fresh
    /// leaf scan of the current `view`; drop cells that became empty and
    /// re-encode the mini segment if anything changed. Returns the number
    /// of cells recomputed and the scan cost paid.
    pub fn recompute_dirty(
        &mut self,
        k: usize,
        view: &SegmentView,
        dirty: &[RegionBox],
    ) -> Result<(u64, SegScanStats)> {
        let mut io = SegScanStats::default();
        let mut recomputed = 0u64;
        let mut changed = false;
        let views = [view.clone()];
        let mut keep: Vec<CuboidCell> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let mut cb = RegionBox::point(&cell.lo, k);
            cb.lo = cell.lo;
            cb.hi = cell.hi;
            if !dirty.iter().any(|b| b.overlaps(&cb)) {
                keep.push(*cell);
                continue;
            }
            recomputed += 1;
            let mut sum = 0.0f64;
            let mut count = 0.0f64;
            let mut visited = false;
            let mut cursor = SegmentCursor::new(&views, cb);
            cursor.for_each(|e| {
                sum += e.weight * e.measure;
                count += e.weight;
                visited = true;
            })?;
            io.absorb(cursor.stats());
            if sum.to_bits() != cell.sum.to_bits() || count.to_bits() != cell.count.to_bits() {
                changed = true;
            }
            if visited {
                keep.push(CuboidCell { lo: cell.lo, hi: cell.hi, sum, count });
            } else {
                changed = true; // cell emptied out — must disappear from the mini
            }
        }
        if changed {
            self.mini = encode_mini(k, &keep);
        }
        self.cells = keep;
        Ok((recomputed, io))
    }
}

/// Encode cuboid cells as a mini segment in the canonical v2 layout, so
/// the mini cursor visits cells in lex order of their lo corners.
fn encode_mini(k: usize, cells: &[CuboidCell]) -> Arc<EdbSegment> {
    let entries: Vec<EdbRecord> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| EdbRecord {
            fact_id: i as FactId,
            cell: c.lo,
            weight: c.count,
            measure: c.sum,
        })
        .collect();
    Arc::new(EdbSegment::build_with(k, entries, SegmentLayout::v2_canonical()))
}

/// The lattice of one segment view: the segment's identity (its `Arc` and
/// the exclusion set the cuboids were computed against) plus its cuboids.
#[derive(Clone)]
pub struct SegLattice {
    /// The leaf segment these cuboids pre-aggregate.
    pub seg: Arc<EdbSegment>,
    /// The exclusion set the cells were (re)computed against. A view only
    /// matches this lattice if its exclusions are equal, so a stale
    /// lattice can never produce a wrong answer — it is simply skipped.
    pub excl: Arc<std::collections::HashSet<FactId>>,
    /// Materialized cuboids, in selection order.
    pub cuboids: Vec<Cuboid>,
}

impl SegLattice {
    /// True if `view` reads exactly the data these cuboids summarize.
    pub fn matches(&self, view: &SegmentView) -> bool {
        Arc::ptr_eq(&self.seg, &view.segment)
            && (Arc::ptr_eq(&self.excl, &view.exclude) || *self.excl == *view.exclude)
    }

    /// At-rest encoded bytes across all cuboids.
    pub fn encoded_bytes(&self) -> u64 {
        self.cuboids.iter().map(|c| c.encoded_bytes()).sum()
    }
}

/// Counters describing one [`CuboidLattice::sync`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatticeSync {
    /// Segment lattices dropped because their segment was compacted away.
    pub dropped: u64,
    /// Segment lattices built fresh for new segments.
    pub built: u64,
    /// Individual cuboid cells recomputed by dirty-box overlap.
    pub cells_recomputed: u64,
    /// Leaf-scan cost paid building and recomputing.
    pub scan: SegScanStats,
}

/// A materialized rollup lattice over a set of segment views.
///
/// Built per segment under [`LatticeConfig`]; consulted by the query
/// planner via [`CuboidLattice::for_view`]. Cloneable so maintenance can
/// evolve it copy-on-write behind an `Arc` while published snapshots keep
/// serving the previous epoch.
#[derive(Clone)]
pub struct CuboidLattice {
    k: usize,
    config: LatticeConfig,
    segs: Vec<SegLattice>,
}

impl CuboidLattice {
    /// An empty lattice for a `k`-dimensional schema.
    pub fn new(k: usize, config: LatticeConfig) -> Self {
        CuboidLattice { k, config, segs: Vec::new() }
    }

    /// Build a lattice covering `views` from scratch.
    pub fn build(schema: &Schema, views: &[SegmentView], config: LatticeConfig) -> Result<Self> {
        let mut lat = CuboidLattice::new(schema.k(), config);
        lat.sync(schema, views, &[])?;
        Ok(lat)
    }

    /// Dimensionality this lattice was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The selection budget in force.
    pub fn config(&self) -> LatticeConfig {
        self.config
    }

    /// Per-segment lattices, in view order of the last sync.
    pub fn segs(&self) -> &[SegLattice] {
        &self.segs
    }

    /// The lattice for `view`, if one exists and matches its exclusions.
    pub fn for_view(&self, view: &SegmentView) -> Option<&SegLattice> {
        self.segs.iter().find(|sl| sl.matches(view))
    }

    /// Total at-rest encoded bytes across every cuboid.
    pub fn encoded_bytes(&self) -> u64 {
        self.segs.iter().map(|s| s.encoded_bytes()).sum()
    }

    /// Total number of materialized cuboids.
    pub fn num_cuboids(&self) -> usize {
        self.segs.iter().map(|s| s.cuboids.len()).sum()
    }

    /// Reconcile the lattice with the current `views`.
    ///
    /// * Lattices whose segment is no longer among `views` are dropped
    ///   (compaction replaced the tier).
    /// * A surviving lattice whose view's exclusion set changed has every
    ///   cell overlapping a `dirty` box recomputed by fresh leaf scans; if
    ///   `dirty` is empty it is rebuilt outright (defensive — exclusions
    ///   only ever change inside reported touched boxes).
    /// * New segments meeting [`LatticeConfig::min_segment_entries`] get
    ///   cuboids selected and built.
    pub fn sync(
        &mut self,
        schema: &Schema,
        views: &[SegmentView],
        dirty: &[RegionBox],
    ) -> Result<LatticeSync> {
        let mut out = LatticeSync::default();
        let before = self.segs.len();
        self.segs.retain(|sl| views.iter().any(|v| Arc::ptr_eq(&sl.seg, &v.segment)));
        out.dropped = (before - self.segs.len()) as u64;
        for view in views {
            let existing = self.segs.iter_mut().find(|sl| Arc::ptr_eq(&sl.seg, &view.segment));
            match existing {
                Some(sl) => {
                    if Arc::ptr_eq(&sl.excl, &view.exclude) || *sl.excl == *view.exclude {
                        sl.excl = Arc::clone(&view.exclude);
                        continue;
                    }
                    if dirty.is_empty() {
                        // No geometry to localize the change: rebuild.
                        let grains: Vec<Grain> = sl.cuboids.iter().map(|c| c.grain).collect();
                        let mut cuboids = Vec::with_capacity(grains.len());
                        for g in grains {
                            cuboids.push(Cuboid::build(schema, view, g)?);
                        }
                        sl.cuboids = cuboids;
                    } else {
                        for c in &mut sl.cuboids {
                            let (n, io) = c.recompute_dirty(self.k, view, dirty)?;
                            out.cells_recomputed += n;
                            out.scan.absorb(io);
                        }
                    }
                    sl.excl = Arc::clone(&view.exclude);
                }
                None => {
                    if view.segment.len() < self.config.min_segment_entries {
                        continue;
                    }
                    let mut cuboids = Vec::new();
                    for grain in select_grains(schema, &view.segment, &self.config) {
                        cuboids.push(Cuboid::build(schema, view, grain)?);
                    }
                    if cuboids.is_empty() {
                        continue;
                    }
                    out.built += 1;
                    self.segs.push(SegLattice {
                        seg: Arc::clone(&view.segment),
                        excl: Arc::clone(&view.exclude),
                        cuboids,
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Every non-leaf level vector of the schema, in lex order.
fn candidate_grains(schema: &Schema) -> Vec<Grain> {
    let k = schema.k();
    let mut out = Vec::new();
    let mut g: Grain = [1; MAX_DIMS];
    'outer: loop {
        if (0..k).any(|d| g[d] > 1) {
            out.push(g);
        }
        let mut d = k;
        loop {
            if d == 0 {
                break 'outer;
            }
            d -= 1;
            g[d] += 1;
            if g[d] <= schema.dim(d).levels() {
                break;
            }
            g[d] = 1;
        }
    }
    out
}

/// Greedy benefit/cost grain selection for one segment.
///
/// Benefit is `segment pages × coverage`, where coverage is the fraction
/// of (dim, level) query targets this grain can serve exactly (a grain
/// serves every level at or above it). Cost is the estimated at-rest size
/// of the mini segment. Grains whose cell count approaches the segment's
/// entry count are skipped — reading them would cost as much as the leaf
/// scan they replace.
fn select_grains(schema: &Schema, seg: &EdbSegment, config: &LatticeConfig) -> Vec<Grain> {
    let k = schema.k();
    let total_levels: f64 = (0..k).map(|d| schema.dim(d).levels() as f64).product();
    let pages = seg.num_pages() as f64;
    let mut scored: Vec<(f64, Grain, u64)> = Vec::new();
    for g in candidate_grains(schema) {
        let cells = (0..k).fold(1u64, |acc, d| {
            acc.saturating_mul(schema.dim(d).nodes_at_level(g[d]).len() as u64)
        });
        let est_cells = cells.min(seg.len());
        if est_cells.saturating_mul(2) > seg.len() {
            continue;
        }
        let coverage: f64 =
            (0..k).map(|d| (schema.dim(d).levels() - g[d] + 1) as f64).product::<f64>()
                / total_levels;
        let cost = (est_cells * EST_ENTRY_BYTES).max(1);
        let score = pages * coverage / cost as f64;
        scored.push((score, g, cost));
    }
    // Deterministic order: score desc, then grain lex asc as tie-break.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    });
    let mut picked = Vec::new();
    let mut spent = 0u64;
    for (_, g, cost) in scored {
        if picked.len() >= config.max_cuboids {
            break;
        }
        if spent.saturating_add(cost) > config.budget_bytes {
            continue;
        }
        spent += cost;
        picked.push(g);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_hierarchy::HierarchyBuilder;

    fn two_level(tag: &str, parents: &[u32], groups: u32) -> iolap_hierarchy::Hierarchy {
        HierarchyBuilder::new(tag)
            .level("Leaf", parents.len() as u32)
            .level("Group", groups)
            .parents(2, parents)
            .build()
    }

    fn schema2() -> Schema {
        Schema::new(
            vec![
                Arc::new(two_level("loc", &[0, 0, 0, 1, 1], 2)),
                Arc::new(two_level("auto", &[0, 0, 1, 1, 1], 2)),
            ],
            "sales",
        )
    }

    fn seg_view(schema: &Schema, entries: Vec<EdbRecord>) -> SegmentView {
        SegmentView::new(Arc::new(EdbSegment::build(schema.k(), entries)))
    }

    fn rec(id: u64, a: u32, b: u32, w: f64, m: f64) -> EdbRecord {
        let mut cell: CellKey = [0; MAX_DIMS];
        cell[0] = a;
        cell[1] = b;
        EdbRecord { fact_id: id, cell, weight: w, measure: m }
    }

    #[test]
    fn cuboid_cells_match_fresh_leaf_scans_bitwise() {
        let schema = schema2();
        let entries: Vec<EdbRecord> = (0..40)
            .map(|i| rec(i, (i % 5) as u32, (i % 5) as u32, 0.25 + (i as f64) * 0.01, i as f64))
            .collect();
        let view = seg_view(&schema, entries);
        let grain: Grain = [2, 2, 0, 0, 0, 0, 0, 0];
        let cuboid = Cuboid::build(&schema, &view, grain).unwrap();
        assert!(!cuboid.cells.is_empty());
        let views = [view];
        for cell in &cuboid.cells {
            let mut cb = RegionBox::point(&cell.lo, schema.k());
            cb.lo = cell.lo;
            cb.hi = cell.hi;
            let mut sum = 0.0;
            let mut count = 0.0;
            SegmentCursor::new(&views, cb)
                .for_each(|e| {
                    sum += e.weight * e.measure;
                    count += e.weight;
                })
                .unwrap();
            assert_eq!(sum.to_bits(), cell.sum.to_bits());
            assert_eq!(count.to_bits(), cell.count.to_bits());
        }
        // Mini segment mirrors the cells in the same order.
        let recs = cuboid.mini.records().unwrap();
        assert_eq!(recs.len(), cuboid.cells.len());
        for (r, c) in recs.iter().zip(&cuboid.cells) {
            assert_eq!(r.cell, c.lo);
            assert_eq!(r.measure.to_bits(), c.sum.to_bits());
            assert_eq!(r.weight.to_bits(), c.count.to_bits());
        }
    }

    #[test]
    fn sync_builds_drops_and_recomputes() {
        let schema = schema2();
        let entries: Vec<EdbRecord> =
            (0..32).map(|i| rec(i, (i % 5) as u32, ((i / 5) % 5) as u32, 1.0, 2.0)).collect();
        let view = seg_view(&schema, entries.clone());
        let cfg = LatticeConfig { min_segment_entries: 1, ..LatticeConfig::default() };
        let mut lat = CuboidLattice::build(&schema, std::slice::from_ref(&view), cfg).unwrap();
        assert!(lat.num_cuboids() > 0);
        assert!(lat.for_view(&view).is_some());
        assert!(lat.encoded_bytes() > 0);

        // Exclude one fact: same segment, different exclusions — the stale
        // lattice must refuse to match until synced.
        let mut excl = std::collections::HashSet::new();
        excl.insert(7u64);
        let dirtied = SegmentView { segment: Arc::clone(&view.segment), exclude: Arc::new(excl) };
        assert!(lat.for_view(&dirtied).is_none());
        let dirty = [RegionBox::point(&[2, 1, 0, 0, 0, 0, 0, 0], schema.k())];
        let s = lat.sync(&schema, std::slice::from_ref(&dirtied), &dirty).unwrap();
        assert!(s.cells_recomputed > 0);
        let sl = lat.for_view(&dirtied).expect("lattice matches after sync");
        // Recomputed cells are bit-identical to fresh scans of the new view.
        let views = [dirtied.clone()];
        for cuboid in &sl.cuboids {
            for cell in &cuboid.cells {
                let mut cb = RegionBox::point(&cell.lo, schema.k());
                cb.lo = cell.lo;
                cb.hi = cell.hi;
                let mut sum = 0.0;
                let mut count = 0.0;
                SegmentCursor::new(&views, cb)
                    .for_each(|e| {
                        sum += e.weight * e.measure;
                        count += e.weight;
                    })
                    .unwrap();
                assert_eq!(sum.to_bits(), cell.sum.to_bits());
                assert_eq!(count.to_bits(), cell.count.to_bits());
            }
        }

        // Replace the segment entirely: old lattice dropped, new one built.
        let replacement = seg_view(&schema, entries);
        let s2 = lat.sync(&schema, std::slice::from_ref(&replacement), &[]).unwrap();
        assert_eq!(s2.dropped, 1);
        assert_eq!(s2.built, 1);
        assert!(lat.for_view(&replacement).is_some());
        assert!(lat.for_view(&dirtied).is_none());
    }

    #[test]
    fn selection_respects_budget_and_cap() {
        let schema = schema2();
        let entries: Vec<EdbRecord> =
            (0..64).map(|i| rec(i, (i % 5) as u32, ((i / 5) % 5) as u32, 1.0, 1.0)).collect();
        let seg = EdbSegment::build(schema.k(), entries);
        let grains = select_grains(
            &schema,
            &seg,
            &LatticeConfig { budget_bytes: 1 << 20, min_segment_entries: 1, max_cuboids: 2 },
        );
        assert!(grains.len() <= 2);
        assert!(!grains.is_empty());
        // All-leaves grain never selected.
        assert!(grains.iter().all(|g| g[..schema.k()].iter().any(|&l| l > 1)));
        let zero = select_grains(
            &schema,
            &seg,
            &LatticeConfig { budget_bytes: 0, min_segment_entries: 1, max_cuboids: 4 },
        );
        assert!(zero.is_empty());
    }
}
