//! Immutable, indexed EDB segments and the shared pruning cursor.
//!
//! An [`EdbSegment`] holds Extended Database entries sorted by a pluggable
//! [`CellOrder`] (canonical [`iolap_model::cmp_cells`] order, or a Morton
//! interleave that tightens fence boxes in *every* dimension) and stored in
//! one of two page formats behind [`SegmentLayout`]:
//!
//! * [`PageFormat::Rows`] — fixed-width `EdbRecord`s, `PAGE_SIZE / width`
//!   per logical page, exactly the PR 5 layout;
//! * [`PageFormat::ColumnarV2`] — each page is one compressed blob
//!   (per-dimension delta+varint coordinate streams, change-bitmap f64
//!   streams, checksum; see `iolap_model::segment_page`) packed to fit a
//!   single `PAGE_SIZE` disk block, so page density varies with the data.
//!
//! Either way the footer carries one fence (min/max leaf id per dimension)
//! per page, so Theorem 12 contrapositive pruning, exclusion sets and
//! compaction are format-agnostic. Segments are immutable: allocation
//! produces one base segment, incremental maintenance appends delta
//! segments and retires superseded facts through per-segment *exclusion
//! sets* ([`SegmentView`]), and compaction rewrites tiers without touching
//! published `Arc`s.
//!
//! [`SegmentCursor`] is the one scan loop shared by the query crate
//! (`aggregate_edb`, `rollup`, `pivot`) and the server's snapshot answer
//! path: it walks the views in order, skips pages whose fence box is
//! disjoint from the query box, and visits the surviving live entries in
//! segment order, decoding compressed pages through one reusable per-scan
//! buffer. Because pruning only ever skips pages that contain **no** cell
//! of the query box, the visited entry sequence — and therefore every f64
//! accumulation over it — is bit-identical to an unpruned scan of the same
//! views. A corrupt or truncated compressed page surfaces as a storage
//! error from the cursor; it never panics and never yields a short read.

use crate::error::Result;
use iolap_model::{
    decode_page, EdbCodec, EdbRecord, FactId, PageBuilder, PageFence, PageFormat, RegionBox,
    SegmentFooter, SegmentLayout, SegmentStats, MAX_DIMS, MAX_V2_PAGE_BYTES,
};
use iolap_storage::{StorageError, PAGE_SIZE};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

pub use iolap_model::CellOrder;

/// Entry storage: decoded rows, or encoded columnar page payloads that are
/// decoded lazily at scan time (so at-rest corruption surfaces from the
/// cursor as an error, not at load).
enum SegStore {
    Rows(Vec<EdbRecord>),
    Pages(Vec<Box<[u8]>>),
}

/// One immutable, sorted, page-aligned run of EDB entries with its fence
/// index.
pub struct EdbSegment {
    k: usize,
    layout: SegmentLayout,
    store: SegStore,
    footer: SegmentFooter,
}

impl EdbSegment {
    /// Build a segment from entries in any order under the default layout
    /// (compressed pages, canonical order — same entry order as rows).
    pub fn build(k: usize, entries: Vec<EdbRecord>) -> Self {
        Self::build_with(k, entries, SegmentLayout::default())
    }

    /// Build a segment under an explicit layout: stable-sorts by the
    /// layout's cell order (ties keep input order, so a deterministic
    /// input order yields a deterministic — and thus bit-reproducible —
    /// segment) and encodes the pages.
    pub fn build_with(k: usize, mut entries: Vec<EdbRecord>, layout: SegmentLayout) -> Self {
        entries.sort_by_cached_key(|e| layout.order.sort_key(&e.cell, k));
        Self::from_sorted_with(k, entries, layout)
    }

    /// Wrap entries already in canonical cell order (e.g. the output of an
    /// external sort) without re-sorting, under the default layout.
    pub fn from_sorted(k: usize, entries: Vec<EdbRecord>) -> Self {
        Self::from_sorted_with(k, entries, SegmentLayout::default())
    }

    /// Wrap entries already sorted by `layout.order` without re-sorting.
    pub fn from_sorted_with(k: usize, entries: Vec<EdbRecord>, layout: SegmentLayout) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| {
                layout.order.sort_key(&w[0].cell, k) <= layout.order.sort_key(&w[1].cell, k)
            }),
            "segment entries must be sorted by the layout's cell order"
        );
        match layout.format {
            PageFormat::Rows => {
                let recs_per_page = SegmentFooter::edb_recs_per_page(k);
                let mut footer = SegmentFooter::build(
                    k,
                    recs_per_page,
                    entries.iter().map(|e| (&e.cell, e.weight, e.measure)),
                );
                footer.order = layout.order;
                EdbSegment { k, layout, store: SegStore::Rows(entries), footer }
            }
            PageFormat::ColumnarV2 => {
                let (store, footer) = encode_columnar(k, layout.order, entries);
                EdbSegment { k, layout, store, footer }
            }
        }
    }

    /// Number of dimensions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The layout (cell order × page format) this segment was built with.
    pub fn layout(&self) -> SegmentLayout {
        self.layout
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.footer.stats.entries
    }

    /// True when the segment holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of logical pages (each indexed by one fence).
    pub fn num_pages(&self) -> u64 {
        self.footer.num_pages()
    }

    /// Entries per logical page for row-format segments; 0 for columnar
    /// segments, whose density varies per page.
    pub fn recs_per_page(&self) -> usize {
        self.footer.recs_per_page as usize
    }

    /// Bytes the exact-I/O meter charges for reading page `p`: a full
    /// `PAGE_SIZE` block for row pages, the *compressed* payload length
    /// for columnar pages.
    pub fn page_io_bytes(&self, p: u64) -> u64 {
        match &self.store {
            SegStore::Rows(_) => PAGE_SIZE as u64,
            SegStore::Pages(_) => u64::from(self.footer.page_bytes[p as usize]),
        }
    }

    /// Total at-rest payload bytes of the entry pages (compressed size for
    /// columnar segments, full row bytes for row segments).
    pub fn encoded_bytes(&self) -> u64 {
        match &self.store {
            SegStore::Rows(entries) => (entries.len() * (4 * self.k + 24)) as u64,
            SegStore::Pages(_) => self.footer.page_bytes.iter().map(|&b| u64::from(b)).sum(),
        }
    }

    /// Uncompressed row bytes of the same entries (`entries × (4k + 24)`).
    pub fn uncompressed_bytes(&self) -> u64 {
        self.len() * (4 * self.k + 24) as u64
    }

    /// Compression ratio `uncompressed / encoded` (1.0 for row segments
    /// and for empty segments).
    pub fn compression_ratio(&self) -> f64 {
        let enc = self.encoded_bytes();
        if enc == 0 {
            return 1.0;
        }
        self.uncompressed_bytes() as f64 / enc as f64
    }

    /// The entries of logical page `p`, decoding through `buf` when the
    /// page is compressed (row pages borrow straight from the segment and
    /// leave `buf` untouched). A corrupt page yields a storage error.
    pub fn page_decoded<'s>(
        &'s self,
        p: u64,
        buf: &'s mut Vec<EdbRecord>,
    ) -> Result<&'s [EdbRecord]> {
        match &self.store {
            SegStore::Rows(entries) => {
                let rpp = self.footer.recs_per_page as usize;
                let start = p as usize * rpp;
                let end = (start + rpp).min(entries.len());
                Ok(&entries[start..end])
            }
            SegStore::Pages(pages) => {
                let bytes = &pages[p as usize];
                decode_page(self.k, bytes, buf)
                    .map_err(|e| StorageError::Corrupt(format!("segment page {p}: {e}")))?;
                let want = self.footer.page_rows[p as usize] as usize;
                if buf.len() != want {
                    return Err(StorageError::Corrupt(format!(
                        "segment page {p} decoded to {} rows, footer says {want}",
                        buf.len()
                    ))
                    .into());
                }
                Ok(&buf[..])
            }
        }
    }

    /// Visit every entry in segment order, decoding pages as needed.
    pub fn for_each_entry(&self, mut f: impl FnMut(&EdbRecord) -> Result<()>) -> Result<()> {
        let mut buf = Vec::new();
        for p in 0..self.num_pages() {
            for e in self.page_decoded(p, &mut buf)? {
                f(e)?;
            }
        }
        Ok(())
    }

    /// All entries, decoded, in segment order.
    pub fn records(&self) -> Result<Vec<EdbRecord>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.for_each_entry(|e| {
            out.push(e.clone());
            Ok(())
        })?;
        Ok(out)
    }

    /// The footer (fences + stats).
    pub fn footer(&self) -> &SegmentFooter {
        &self.footer
    }

    /// Persist the segment to `path` in the page-aligned segment file
    /// format (see [`iolap_storage::segfile`]): format v1 for row
    /// segments, v2 (one encoded blob per page block) for columnar ones.
    pub fn save(&self, path: &Path) -> Result<()> {
        match &self.store {
            SegStore::Rows(entries) => {
                iolap_storage::segfile::write_segment(
                    path,
                    &EdbCodec { k: self.k },
                    entries,
                    &self.footer.encode(),
                )?;
            }
            SegStore::Pages(pages) => {
                iolap_storage::segfile::write_segment_v2(path, pages, &self.footer.encode())?;
            }
        }
        Ok(())
    }

    /// Load a segment written by [`EdbSegment::save`], re-validating the
    /// footer against the file. Compressed page payloads are *not* decoded
    /// here — decoding (and checksum verification) happens lazily at scan
    /// time, so a bit-flipped page surfaces from the cursor as a storage
    /// error rather than slowing every load.
    pub fn load(path: &Path, k: usize) -> Result<Self> {
        match iolap_storage::segfile::probe_segment_version(path)? {
            iolap_storage::segfile::SEGFILE_VERSION => {
                let (entries, footer_bytes) =
                    iolap_storage::segfile::read_segment(path, &EdbCodec { k })?;
                let footer = SegmentFooter::decode(&footer_bytes)
                    .map_err(crate::error::CoreError::BadInput)?;
                if footer.format != PageFormat::Rows {
                    return Err(crate::error::CoreError::BadInput(
                        "columnar footer in a row-format segment file".into(),
                    ));
                }
                if footer.k != k || footer.stats.entries != entries.len() as u64 {
                    return Err(crate::error::CoreError::BadInput(format!(
                        "segment footer (k={}, {} entries) does not match file (k={k}, {} entries)",
                        footer.k,
                        footer.stats.entries,
                        entries.len()
                    )));
                }
                let layout = SegmentLayout { order: footer.order, format: PageFormat::Rows };
                Ok(EdbSegment { k, layout, store: SegStore::Rows(entries), footer })
            }
            _ => {
                let (pages, footer_bytes) = iolap_storage::segfile::read_segment_v2(path)?;
                let footer = SegmentFooter::decode(&footer_bytes)
                    .map_err(crate::error::CoreError::BadInput)?;
                if footer.format != PageFormat::ColumnarV2 {
                    return Err(crate::error::CoreError::BadInput(
                        "row footer in a columnar segment file".into(),
                    ));
                }
                if footer.k != k {
                    return Err(crate::error::CoreError::BadInput(format!(
                        "segment footer has k={}, want k={k}",
                        footer.k
                    )));
                }
                if footer.num_pages() != pages.len() as u64 {
                    return Err(StorageError::Corrupt(format!(
                        "segment file has {} pages, footer indexes {}",
                        pages.len(),
                        footer.num_pages()
                    ))
                    .into());
                }
                for (p, page) in pages.iter().enumerate() {
                    if footer.page_bytes[p] as usize != page.len() {
                        return Err(StorageError::Corrupt(format!(
                            "segment page {p} is {} bytes, footer says {}",
                            page.len(),
                            footer.page_bytes[p]
                        ))
                        .into());
                    }
                }
                let layout = SegmentLayout { order: footer.order, format: PageFormat::ColumnarV2 };
                Ok(EdbSegment { k, layout, store: SegStore::Pages(pages), footer })
            }
        }
    }
}

/// Encode sorted entries into compressed columnar pages, deriving the
/// fence index and whole-segment stats in the same single pass (the stats
/// accumulate in entry order, exactly like the row-format footer build).
fn encode_columnar(
    k: usize,
    order: CellOrder,
    entries: Vec<EdbRecord>,
) -> (SegStore, SegmentFooter) {
    let n = entries.len() as u64;
    let mut pages: Vec<Box<[u8]>> = Vec::new();
    let mut fences: Vec<PageFence> = Vec::new();
    let mut page_rows: Vec<u32> = Vec::new();
    let mut page_bytes: Vec<u32> = Vec::new();
    let mut bbox: Option<RegionBox> = None;
    let mut sum_weight = 0.0f64;
    let mut sum_wm = 0.0f64;
    let mut builder = PageBuilder::new(k);
    let mut fence: Option<PageFence> = None;
    let mut close = |builder: &mut PageBuilder, fence: Option<PageFence>| {
        let (recs, bytes) = builder.finish();
        page_rows.push(recs.len() as u32);
        page_bytes.push(bytes.len() as u32);
        pages.push(bytes.into_boxed_slice());
        fences.push(fence.expect("non-empty page has a fence"));
    };
    for e in entries {
        if !builder.is_empty() && builder.len_with(&e) > MAX_V2_PAGE_BYTES {
            close(&mut builder, fence.take());
        }
        match fence.as_mut() {
            None => fence = Some(PageFence::point(&e.cell)),
            Some(f) => f.grow(&e.cell, k),
        }
        match bbox.as_mut() {
            None => bbox = Some(RegionBox::point(&e.cell, k)),
            Some(b) => b.grow_to_cell(&e.cell),
        }
        sum_weight += e.weight;
        sum_wm += e.weight * e.measure;
        builder.push(e);
    }
    if !builder.is_empty() {
        close(&mut builder, fence.take());
    }
    let bbox = bbox.unwrap_or(RegionBox { lo: [0; MAX_DIMS], hi: [0; MAX_DIMS], k: k as u8 });
    let footer = SegmentFooter {
        k,
        recs_per_page: 0,
        order,
        format: PageFormat::ColumnarV2,
        stats: SegmentStats { entries: n, bbox, sum_weight, sum_weighted_measure: sum_wm },
        fences,
        page_rows,
        page_bytes,
    };
    (SegStore::Pages(pages), footer)
}

/// A published view of one segment: the immutable entries plus the set of
/// fact ids retired from it (superseded by a newer segment or deleted).
///
/// Exclusion sets are copy-on-write: a maintenance step that retires facts
/// from a segment clones the set, while the segment itself — the large
/// allocation — is shared by `Arc` across every snapshot that contains it.
#[derive(Clone)]
pub struct SegmentView {
    /// The immutable segment.
    pub segment: Arc<EdbSegment>,
    /// Fact ids whose entries in this segment are no longer live.
    pub exclude: Arc<HashSet<FactId>>,
}

impl SegmentView {
    /// A view with nothing excluded.
    pub fn new(segment: Arc<EdbSegment>) -> Self {
        SegmentView { segment, exclude: Arc::new(HashSet::new()) }
    }

    /// Number of live entries (entries whose fact is not excluded).
    pub fn live_entries(&self) -> Result<u64> {
        if self.exclude.is_empty() {
            return Ok(self.segment.len());
        }
        let mut live = 0u64;
        self.segment.for_each_entry(|e| {
            if !self.exclude.contains(&e.fact_id) {
                live += 1;
            }
            Ok(())
        })?;
        Ok(live)
    }
}

/// Page-level counters from one cursor scan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegScanStats {
    /// Pages whose entries were visited.
    pub pages_read: u64,
    /// Pages skipped because their fence box is disjoint from the query.
    pub pages_pruned: u64,
    /// Bytes charged for the pages read: compressed payload bytes for
    /// columnar pages, full `PAGE_SIZE` blocks for row pages.
    pub bytes_read: u64,
}

impl SegScanStats {
    /// Merge another scan's counters into this one.
    pub fn absorb(&mut self, other: SegScanStats) {
        self.pages_read += other.pages_read;
        self.pages_pruned += other.pages_pruned;
        self.bytes_read += other.bytes_read;
    }
}

/// The shared pruned scan over a list of segment views.
pub struct SegmentCursor<'a> {
    views: &'a [SegmentView],
    region: RegionBox,
    prune: bool,
    stats: SegScanStats,
    buf: Vec<EdbRecord>,
}

impl<'a> SegmentCursor<'a> {
    /// A pruning cursor over `views` restricted to `region`.
    pub fn new(views: &'a [SegmentView], region: RegionBox) -> Self {
        SegmentCursor {
            views,
            region,
            prune: true,
            stats: SegScanStats::default(),
            buf: Vec::new(),
        }
    }

    /// A baseline cursor that reads every page (no fence pruning) but
    /// applies the same region/exclusion filters — the reference the
    /// pruned scan must match bit-for-bit.
    pub fn full_scan(views: &'a [SegmentView], region: RegionBox) -> Self {
        SegmentCursor {
            views,
            region,
            prune: false,
            stats: SegScanStats::default(),
            buf: Vec::new(),
        }
    }

    /// The full-space region for dimensionality `k` (every leaf interval
    /// unconstrained up to `u32::MAX`).
    pub fn all_region(k: usize) -> RegionBox {
        RegionBox { lo: [0; MAX_DIMS], hi: [u32::MAX; MAX_DIMS], k: k as u8 }
    }

    /// Visit every live entry inside the region, in segment order then the
    /// segment's cell order within each segment. Compressed pages decode
    /// through one buffer reused across the whole scan; a corrupt page
    /// aborts the scan with a storage error.
    pub fn for_each(&mut self, mut f: impl FnMut(&EdbRecord)) -> Result<()> {
        let views = self.views;
        let mut buf = std::mem::take(&mut self.buf);
        for view in views {
            let seg = &*view.segment;
            let excl = &*view.exclude;
            for p in 0..seg.num_pages() {
                if self.prune && seg.footer().fences[p as usize].disjoint(&self.region) {
                    self.stats.pages_pruned += 1;
                    continue;
                }
                self.stats.pages_read += 1;
                self.stats.bytes_read += seg.page_io_bytes(p);
                let page = match seg.page_decoded(p, &mut buf) {
                    Ok(page) => page,
                    Err(e) => {
                        self.buf = buf;
                        return Err(e);
                    }
                };
                for e in page {
                    if !excl.is_empty() && excl.contains(&e.fact_id) {
                        continue;
                    }
                    if self.region.contains_cell(&e.cell) {
                        f(e);
                    }
                }
            }
        }
        self.buf = buf;
        Ok(())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SegScanStats {
        self.stats
    }
}

/// The canonical weighted accumulation (`sum += w·m; count += w`) over the
/// live entries of `views` inside `region`, with fence pruning. Shared by
/// the query crate and the server so both produce bit-identical `(sum,
/// count)` pairs from identical views.
pub fn accumulate_region(
    views: &[SegmentView],
    region: &RegionBox,
) -> Result<(f64, f64, SegScanStats)> {
    let mut cursor = SegmentCursor::new(views, *region);
    let mut sum = 0.0;
    let mut count = 0.0;
    cursor.for_each(|e| {
        sum += e.weight * e.measure;
        count += e.weight;
    })?;
    Ok((sum, count, cursor.stats()))
}

/// One `(view, dim0-slab)` chunk of the chunked canonical accumulation:
/// the weighted `(sum, count)` pair of every live in-region entry of view
/// `view` whose leaf coordinate along dimension 0 is `slab`, accumulated
/// in segment order.
///
/// Chunks are the unit the cluster's scatter-gather merge exchanges. A
/// dimension-0 leaf belongs to exactly one shard's interval, and clipping
/// a query box to a shard's interval never drops or reorders a slab's
/// entries, so a chunk's f64 bits are *partition-invariant*: any division
/// of the dimension-0 axis across shards produces the same chunk values,
/// and folding the chunks in `(view, slab)` order reproduces one
/// deterministic total regardless of which shard computed which chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkPart {
    /// Index of the segment view within the scanned snapshot.
    pub view: u32,
    /// The entries' leaf coordinate along dimension 0.
    pub slab: u32,
    /// Weighted measure mass of the chunk (`Σ weight·measure`).
    pub sum: f64,
    /// Weighted fact count of the chunk (`Σ weight`).
    pub count: f64,
}

/// The chunked form of [`accumulate_region`]: the same fence-pruned scan,
/// but accumulated per `(view, dim0-slab)` chunk instead of into one flat
/// pair. Chunks come back sorted by `(view, slab)`; empty chunks are
/// omitted, an empty region yields no chunks. [`fold_parts`] of the result
/// is the serve plane's canonical `(sum, count)` answer.
pub fn accumulate_region_parts(
    views: &[SegmentView],
    region: &RegionBox,
) -> Result<(Vec<ChunkPart>, SegScanStats)> {
    let mut parts = Vec::new();
    let mut stats = SegScanStats::default();
    for (vi, view) in views.iter().enumerate() {
        // Per-view map keyed by slab: entries of one slab accumulate in
        // segment order even under non-monotone cell orders (Morton).
        let mut slabs: std::collections::BTreeMap<u32, (f64, f64)> =
            std::collections::BTreeMap::new();
        let mut cursor = SegmentCursor::new(std::slice::from_ref(view), *region);
        cursor.for_each(|e| {
            let acc = slabs.entry(e.cell[0]).or_insert((0.0, 0.0));
            acc.0 += e.weight * e.measure;
            acc.1 += e.weight;
        })?;
        stats.absorb(cursor.stats());
        parts.extend(slabs.into_iter().map(|(slab, (sum, count))| ChunkPart {
            view: vi as u32,
            slab,
            sum,
            count,
        }));
    }
    Ok((parts, stats))
}

/// Sort chunks into the canonical fold order `(view, slab)`. The keys are
/// unique within one scatter (a slab lives on exactly one shard), so the
/// order — and therefore the fold — is total and deterministic.
pub fn sort_parts(parts: &mut [ChunkPart]) {
    parts.sort_unstable_by_key(|p| (p.view, p.slab));
}

/// Left-fold chunks (already in `(view, slab)` order — see [`sort_parts`])
/// into the flat `(sum, count)` pair, starting from `(0.0, 0.0)`. This is
/// the single definition of the chunked total: the server folds its own
/// chunks through it and the cluster router folds the concatenation of
/// every shard's chunks through it, so both produce identical f64 bits.
pub fn fold_parts(parts: &[ChunkPart]) -> (f64, f64) {
    debug_assert!(parts.windows(2).all(|w| (w[0].view, w[0].slab) < (w[1].view, w[1].slab)));
    let mut sum = 0.0;
    let mut count = 0.0;
    for p in parts {
        sum += p.sum;
        count += p.count;
    }
    (sum, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::CellKey;

    fn cell(v: &[u32]) -> CellKey {
        let mut c = [0u32; MAX_DIMS];
        c[..v.len()].copy_from_slice(v);
        c
    }

    fn bx(lo: &[u32], hi: &[u32]) -> RegionBox {
        let mut l = [0u32; MAX_DIMS];
        let mut h = [0u32; MAX_DIMS];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        RegionBox { lo: l, hi: h, k: lo.len() as u8 }
    }

    fn rec(fact_id: u64, c: &[u32], weight: f64, measure: f64) -> EdbRecord {
        EdbRecord { fact_id, cell: cell(c), weight, measure }
    }

    /// Entries spread over many cells so the segment spans several pages.
    fn wide_segment(k: usize, n: u32, layout: SegmentLayout) -> EdbSegment {
        let entries: Vec<EdbRecord> =
            (0..n).map(|i| rec(i as u64, &[i % 97, i / 97], 1.0, i as f64)).collect();
        EdbSegment::build_with(k, entries, layout)
    }

    fn all_layouts() -> [SegmentLayout; 4] {
        [
            SegmentLayout::v1_canonical(),
            SegmentLayout::v2_canonical(),
            SegmentLayout { order: CellOrder::Morton, format: PageFormat::Rows },
            SegmentLayout::v2_morton(),
        ]
    }

    #[test]
    fn build_sorts_canonically_and_paginates() {
        let entries =
            vec![rec(1, &[3, 0], 1.0, 5.0), rec(2, &[0, 1], 0.5, 2.0), rec(3, &[0, 0], 0.5, 2.0)];
        // Default layout compresses but keeps canonical entry order.
        let seg = EdbSegment::build(2, entries.clone());
        let cells: Vec<u32> = seg.records().unwrap().iter().map(|e| e.cell[0]).collect();
        assert_eq!(cells, vec![0, 0, 3]);
        assert_eq!(seg.num_pages(), 1);
        assert_eq!(seg.recs_per_page(), 0, "columnar pages have variable density");
        assert_eq!(seg.footer().stats.entries, 3);
        assert!(seg.compression_ratio() > 1.0);
        // The v1 layout keeps the fixed-width pagination.
        let seg = EdbSegment::build_with(2, entries, SegmentLayout::v1_canonical());
        assert_eq!(seg.recs_per_page(), 4096 / 32);
        assert_eq!(seg.compression_ratio(), 1.0);
    }

    #[test]
    fn stable_sort_keeps_equal_cell_input_order() {
        for layout in all_layouts() {
            let seg = EdbSegment::build_with(
                2,
                vec![rec(9, &[1, 1], 0.25, 1.0), rec(7, &[1, 1], 0.75, 2.0)],
                layout,
            );
            let ids: Vec<u64> = seg.records().unwrap().iter().map(|e| e.fact_id).collect();
            assert_eq!(ids, vec![9, 7], "ties must keep input order under {layout:?}");
        }
    }

    #[test]
    fn morton_order_reorders_but_preserves_the_multiset() {
        let entries: Vec<EdbRecord> =
            (0..1000).map(|i| rec(i as u64, &[i % 31, i / 31], 0.5, i as f64)).collect();
        let canon = EdbSegment::build_with(2, entries.clone(), SegmentLayout::v2_canonical());
        let morton = EdbSegment::build_with(2, entries, SegmentLayout::v2_morton());
        let mut a = canon.records().unwrap();
        let mut b = morton.records().unwrap();
        assert_ne!(
            a.iter().map(|e| e.fact_id).collect::<Vec<_>>(),
            b.iter().map(|e| e.fact_id).collect::<Vec<_>>(),
            "morton order differs from canonical on a 2-d grid"
        );
        a.sort_by_key(|e| e.fact_id);
        b.sort_by_key(|e| e.fact_id);
        assert_eq!(a, b);
        // Morton keys are non-decreasing over the stored order.
        let recs = morton.records().unwrap();
        assert!(recs.windows(2).all(|w| {
            CellOrder::Morton.sort_key(&w[0].cell, 2) <= CellOrder::Morton.sort_key(&w[1].cell, 2)
        }));
    }

    #[test]
    fn pruned_scan_is_bit_identical_to_full_scan() {
        for layout in all_layouts() {
            let seg = Arc::new(wide_segment(2, 10_000, layout));
            let views = vec![SegmentView::new(seg.clone())];
            for region in [
                bx(&[5, 0], &[6, 100]),
                bx(&[0, 0], &[97, 104]),
                bx(&[96, 90], &[97, 104]),
                bx(&[40, 40], &[40, 60]), // empty box
            ] {
                let (sum_p, count_p, stats_p) = accumulate_region(&views, &region).unwrap();
                let mut full = SegmentCursor::full_scan(&views, region);
                let (mut sum_f, mut count_f) = (0.0, 0.0);
                full.for_each(|e| {
                    sum_f += e.weight * e.measure;
                    count_f += e.weight;
                })
                .unwrap();
                assert_eq!(sum_p.to_bits(), sum_f.to_bits(), "{layout:?}");
                assert_eq!(count_p.to_bits(), count_f.to_bits(), "{layout:?}");
                assert_eq!(full.stats().pages_read, seg.num_pages());
                assert_eq!(full.stats().pages_pruned, 0);
                assert_eq!(stats_p.pages_read + stats_p.pages_pruned, seg.num_pages());
            }
        }
    }

    #[test]
    fn selective_regions_prune_most_pages() {
        let seg = Arc::new(wide_segment(2, 10_000, SegmentLayout::v2_canonical()));
        let views = vec![SegmentView::new(seg.clone())];
        let (_, count, stats) = accumulate_region(&views, &bx(&[5, 0], &[6, 104])).unwrap();
        assert!(count > 0.0);
        assert!(
            stats.pages_pruned > stats.pages_read * 5,
            "selective box should prune most of {} pages (read {}, pruned {})",
            seg.num_pages(),
            stats.pages_read,
            stats.pages_pruned
        );
        assert!(stats.bytes_read > 0);
        assert!(
            stats.bytes_read < stats.pages_read * PAGE_SIZE as u64,
            "columnar reads are charged compressed bytes"
        );
    }

    #[test]
    fn compression_shrinks_pages_and_the_meter_charges_compressed_bytes() {
        let v1 = Arc::new(wide_segment(2, 10_000, SegmentLayout::v1_canonical()));
        let v2 = Arc::new(wide_segment(2, 10_000, SegmentLayout::v2_canonical()));
        assert!(v2.num_pages() < v1.num_pages(), "compressed pages hold more rows");
        assert!(v2.compression_ratio() > 1.5, "got {}", v2.compression_ratio());
        assert_eq!(v2.uncompressed_bytes(), v1.encoded_bytes());
        let region = SegmentCursor::all_region(2);
        let (s1, c1, st1) = accumulate_region(&[SegmentView::new(v1.clone())], &region).unwrap();
        let (s2, c2, st2) = accumulate_region(&[SegmentView::new(v2.clone())], &region).unwrap();
        // Same entry order → bit-identical aggregates, cheaper I/O.
        assert_eq!(s1.to_bits(), s2.to_bits());
        assert_eq!(c1.to_bits(), c2.to_bits());
        assert!(st2.bytes_read < st1.bytes_read);
        assert_eq!(st1.bytes_read, v1.num_pages() * PAGE_SIZE as u64);
        assert_eq!(st2.bytes_read, v2.encoded_bytes());
    }

    #[test]
    fn exclusions_hide_facts_without_touching_the_segment() {
        let seg = Arc::new(EdbSegment::build(
            2,
            vec![rec(1, &[0, 0], 1.0, 10.0), rec(2, &[0, 1], 1.0, 20.0)],
        ));
        let mut view = SegmentView::new(seg.clone());
        assert_eq!(view.live_entries().unwrap(), 2);
        view.exclude = Arc::new([1u64].into_iter().collect());
        assert_eq!(view.live_entries().unwrap(), 1);
        let (sum, count, _) = accumulate_region(&[view], &SegmentCursor::all_region(2)).unwrap();
        assert_eq!(sum, 20.0);
        assert_eq!(count, 1.0);
        assert_eq!(seg.len(), 2, "segment itself is untouched");
    }

    #[test]
    fn chunk_parts_fold_is_deterministic_and_partition_invariant() {
        for layout in all_layouts() {
            let seg = Arc::new(wide_segment(2, 10_000, layout));
            // A second (delta-like) view so chunks span multiple views.
            let delta = Arc::new(EdbSegment::build_with(
                2,
                (0..500u32).map(|i| rec(20_000 + i as u64, &[i % 97, i / 7], 0.5, 2.0)).collect(),
                layout,
            ));
            let views = vec![SegmentView::new(seg), SegmentView::new(delta)];
            for region in [
                bx(&[0, 0], &[97, 104]),
                bx(&[5, 3], &[61, 88]),
                bx(&[40, 40], &[40, 60]), // empty box
            ] {
                let (parts, _) = accumulate_region_parts(&views, &region).unwrap();
                // Already in canonical (view, slab) order, keys unique.
                let mut sorted = parts.clone();
                sort_parts(&mut sorted);
                assert_eq!(parts, sorted);
                // Split the dim-0 axis at every boundary into two "shards"
                // (clipped sub-boxes of the same views): the concatenated,
                // re-sorted chunks must be bit-identical to the unsplit
                // scan, chunk by chunk — the cluster merge invariant.
                for cut in [0u32, 1, 30, 49, 97] {
                    let mut left = region;
                    left.hi[0] = left.hi[0].min(cut);
                    let mut right = region;
                    right.lo[0] = right.lo[0].max(cut);
                    let (lp, _) = accumulate_region_parts(&views, &left).unwrap();
                    let (rp, _) = accumulate_region_parts(&views, &right).unwrap();
                    let mut merged: Vec<ChunkPart> = lp.into_iter().chain(rp).collect();
                    sort_parts(&mut merged);
                    assert_eq!(merged.len(), parts.len(), "{layout:?} cut {cut}");
                    for (a, b) in merged.iter().zip(&parts) {
                        assert_eq!((a.view, a.slab), (b.view, b.slab), "{layout:?}");
                        assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "{layout:?}");
                        assert_eq!(a.count.to_bits(), b.count.to_bits(), "{layout:?}");
                    }
                    let (s1, c1) = fold_parts(&merged);
                    let (s2, c2) = fold_parts(&parts);
                    assert_eq!(s1.to_bits(), s2.to_bits());
                    assert_eq!(c1.to_bits(), c2.to_bits());
                }
            }
        }
    }

    #[test]
    fn segment_save_load_round_trips_every_layout() {
        let dir = iolap_storage::TempDir::new("segment-io").unwrap();
        for (i, layout) in all_layouts().into_iter().enumerate() {
            let path = dir.path().join(format!("seg{i}"));
            let seg = wide_segment(2, 5_000, layout);
            seg.save(&path).unwrap();
            let back = EdbSegment::load(&path, 2).unwrap();
            assert_eq!(back.records().unwrap(), seg.records().unwrap(), "{layout:?}");
            assert_eq!(back.footer(), seg.footer(), "{layout:?}");
            assert_eq!(back.layout(), layout);
            assert!(EdbSegment::load(&path, 3).is_err(), "wrong k must be rejected");
        }
    }

    #[test]
    fn corrupt_compressed_page_errors_from_the_cursor_not_load() {
        let dir = iolap_storage::TempDir::new("segment-corrupt").unwrap();
        let path = dir.path().join("seg");
        let seg = wide_segment(2, 5_000, SegmentLayout::v2_canonical());
        seg.save(&path).unwrap();
        // Flip one payload bit in the middle of data page 3.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3 * PAGE_SIZE + PAGE_SIZE / 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // Load succeeds — payloads decode lazily.
        let back = Arc::new(EdbSegment::load(&path, 2).unwrap());
        let views = vec![SegmentView::new(back)];
        let err = accumulate_region(&views, &SegmentCursor::all_region(2)).unwrap_err();
        assert!(
            matches!(&err, crate::error::CoreError::Storage(StorageError::Corrupt(_))),
            "got {err:?}"
        );
        // A region whose pages exclude the corrupt one still answers.
        let first = seg.footer().fences[0];
        let narrow = RegionBox {
            lo: first.lo,
            hi: {
                let mut h = first.lo;
                for d in h.iter_mut().take(2) {
                    *d += 1;
                }
                h
            },
            k: 2,
        };
        let views2 = vec![SegmentView::new(Arc::new(EdbSegment::load(&path, 2).unwrap()))];
        accumulate_region(&views2, &narrow).unwrap();
    }
}
