//! Immutable, indexed EDB segments and the shared pruning cursor.
//!
//! An [`EdbSegment`] holds Extended Database entries sorted in canonical
//! cell order ([`iolap_model::cmp_cells`]) and partitioned into logical
//! pages of `PAGE_SIZE / record width` entries — the same pagination a
//! [`iolap_storage::RecordFile`] of [`EdbRecord`]s uses — with a
//! [`SegmentFooter`] carrying one fence (min/max leaf id per dimension)
//! per page plus whole-segment stats. Segments are immutable: allocation
//! produces one base segment, incremental maintenance appends delta
//! segments and retires superseded facts through per-segment *exclusion
//! sets* ([`SegmentView`]), and compaction rewrites tiers without touching
//! published `Arc`s.
//!
//! [`SegmentCursor`] is the one scan loop shared by the query crate
//! (`aggregate_edb`, `rollup`, `pivot`) and the server's snapshot answer
//! path: it walks the views in order, skips pages whose fence box is
//! disjoint from the query box (Theorem 12's contrapositive — a fact
//! region disjoint from the query cannot contribute), and visits the
//! surviving live entries in segment order. Because pruning only ever
//! skips pages that contain **no** cell of the query box, the visited
//! entry sequence — and therefore every f64 accumulation over it — is
//! bit-identical to an unpruned scan of the same views.

use crate::error::Result;
use iolap_model::{
    canonical_sort_key, EdbCodec, EdbRecord, FactId, RegionBox, SegmentFooter, MAX_DIMS,
};
use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

/// One immutable, sorted, page-aligned run of EDB entries with its fence
/// index.
pub struct EdbSegment {
    k: usize,
    recs_per_page: usize,
    entries: Vec<EdbRecord>,
    footer: SegmentFooter,
}

impl EdbSegment {
    /// Build a segment from entries in any order: stable-sorts by the
    /// canonical cell key (ties keep input order, so a deterministic input
    /// order yields a deterministic — and thus bit-reproducible — segment)
    /// and derives the footer.
    pub fn build(k: usize, mut entries: Vec<EdbRecord>) -> Self {
        entries.sort_by_key(|e| canonical_sort_key(&e.cell, k));
        Self::from_sorted(k, entries)
    }

    /// Wrap entries already in canonical cell order (e.g. the output of an
    /// external sort) without re-sorting.
    pub fn from_sorted(k: usize, entries: Vec<EdbRecord>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| {
                canonical_sort_key(&w[0].cell, k) <= canonical_sort_key(&w[1].cell, k)
            }),
            "segment entries must be in canonical cell order"
        );
        let recs_per_page = SegmentFooter::edb_recs_per_page(k);
        let footer = SegmentFooter::build(
            k,
            recs_per_page,
            entries.iter().map(|e| (&e.cell, e.weight, e.measure)),
        );
        EdbSegment { k, recs_per_page, entries, footer }
    }

    /// Number of dimensions.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True when the segment holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of logical pages (each indexed by one fence).
    pub fn num_pages(&self) -> u64 {
        self.footer.num_pages()
    }

    /// Entries per logical page.
    pub fn recs_per_page(&self) -> usize {
        self.recs_per_page
    }

    /// All entries, in canonical cell order.
    pub fn entries(&self) -> &[EdbRecord] {
        &self.entries
    }

    /// The entries of logical page `p`.
    pub fn page(&self, p: u64) -> &[EdbRecord] {
        let start = p as usize * self.recs_per_page;
        let end = (start + self.recs_per_page).min(self.entries.len());
        &self.entries[start..end]
    }

    /// The footer (fences + stats).
    pub fn footer(&self) -> &SegmentFooter {
        &self.footer
    }

    /// Persist the segment to `path` in the page-aligned segment file
    /// format (records + encoded footer; see [`iolap_storage::segfile`]).
    pub fn save(&self, path: &Path) -> Result<()> {
        iolap_storage::segfile::write_segment(
            path,
            &EdbCodec { k: self.k },
            &self.entries,
            &self.footer.encode(),
        )?;
        Ok(())
    }

    /// Load a segment written by [`EdbSegment::save`], re-validating the
    /// footer against the records.
    pub fn load(path: &Path, k: usize) -> Result<Self> {
        let (entries, footer_bytes) = iolap_storage::segfile::read_segment(path, &EdbCodec { k })?;
        let footer =
            SegmentFooter::decode(&footer_bytes).map_err(crate::error::CoreError::BadInput)?;
        if footer.k != k || footer.stats.entries != entries.len() as u64 {
            return Err(crate::error::CoreError::BadInput(format!(
                "segment footer (k={}, {} entries) does not match file (k={k}, {} entries)",
                footer.k,
                footer.stats.entries,
                entries.len()
            )));
        }
        let recs_per_page = footer.recs_per_page as usize;
        Ok(EdbSegment { k, recs_per_page, entries, footer })
    }
}

/// A published view of one segment: the immutable entries plus the set of
/// fact ids retired from it (superseded by a newer segment or deleted).
///
/// Exclusion sets are copy-on-write: a maintenance step that retires facts
/// from a segment clones the set, while the segment itself — the large
/// allocation — is shared by `Arc` across every snapshot that contains it.
#[derive(Clone)]
pub struct SegmentView {
    /// The immutable segment.
    pub segment: Arc<EdbSegment>,
    /// Fact ids whose entries in this segment are no longer live.
    pub exclude: Arc<HashSet<FactId>>,
}

impl SegmentView {
    /// A view with nothing excluded.
    pub fn new(segment: Arc<EdbSegment>) -> Self {
        SegmentView { segment, exclude: Arc::new(HashSet::new()) }
    }

    /// Number of live entries (entries whose fact is not excluded).
    pub fn live_entries(&self) -> u64 {
        if self.exclude.is_empty() {
            return self.segment.len();
        }
        self.segment.entries().iter().filter(|e| !self.exclude.contains(&e.fact_id)).count() as u64
    }
}

/// Page-level counters from one cursor scan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegScanStats {
    /// Pages whose entries were visited.
    pub pages_read: u64,
    /// Pages skipped because their fence box is disjoint from the query.
    pub pages_pruned: u64,
}

impl SegScanStats {
    /// Merge another scan's counters into this one.
    pub fn absorb(&mut self, other: SegScanStats) {
        self.pages_read += other.pages_read;
        self.pages_pruned += other.pages_pruned;
    }
}

/// The shared pruned scan over a list of segment views.
pub struct SegmentCursor<'a> {
    views: &'a [SegmentView],
    region: RegionBox,
    prune: bool,
    stats: SegScanStats,
}

impl<'a> SegmentCursor<'a> {
    /// A pruning cursor over `views` restricted to `region`.
    pub fn new(views: &'a [SegmentView], region: RegionBox) -> Self {
        SegmentCursor { views, region, prune: true, stats: SegScanStats::default() }
    }

    /// A baseline cursor that reads every page (no fence pruning) but
    /// applies the same region/exclusion filters — the reference the
    /// pruned scan must match bit-for-bit.
    pub fn full_scan(views: &'a [SegmentView], region: RegionBox) -> Self {
        SegmentCursor { views, region, prune: false, stats: SegScanStats::default() }
    }

    /// The full-space region for dimensionality `k` (every leaf interval
    /// unconstrained up to `u32::MAX`).
    pub fn all_region(k: usize) -> RegionBox {
        RegionBox { lo: [0; MAX_DIMS], hi: [u32::MAX; MAX_DIMS], k: k as u8 }
    }

    /// Visit every live entry inside the region, in segment order then
    /// canonical cell order within each segment.
    pub fn for_each(&mut self, mut f: impl FnMut(&EdbRecord)) {
        for view in self.views {
            let seg = &*view.segment;
            let excl = &*view.exclude;
            for p in 0..seg.num_pages() {
                if self.prune && seg.footer().fences[p as usize].disjoint(&self.region) {
                    self.stats.pages_pruned += 1;
                    continue;
                }
                self.stats.pages_read += 1;
                for e in seg.page(p) {
                    if !excl.is_empty() && excl.contains(&e.fact_id) {
                        continue;
                    }
                    if self.region.contains_cell(&e.cell) {
                        f(e);
                    }
                }
            }
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SegScanStats {
        self.stats
    }
}

/// The canonical weighted accumulation (`sum += w·m; count += w`) over the
/// live entries of `views` inside `region`, with fence pruning. Shared by
/// the query crate and the server so both produce bit-identical `(sum,
/// count)` pairs from identical views.
pub fn accumulate_region(views: &[SegmentView], region: &RegionBox) -> (f64, f64, SegScanStats) {
    let mut cursor = SegmentCursor::new(views, *region);
    let mut sum = 0.0;
    let mut count = 0.0;
    cursor.for_each(|e| {
        sum += e.weight * e.measure;
        count += e.weight;
    });
    (sum, count, cursor.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::CellKey;

    fn cell(v: &[u32]) -> CellKey {
        let mut c = [0u32; MAX_DIMS];
        c[..v.len()].copy_from_slice(v);
        c
    }

    fn bx(lo: &[u32], hi: &[u32]) -> RegionBox {
        let mut l = [0u32; MAX_DIMS];
        let mut h = [0u32; MAX_DIMS];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        RegionBox { lo: l, hi: h, k: lo.len() as u8 }
    }

    fn rec(fact_id: u64, c: &[u32], weight: f64, measure: f64) -> EdbRecord {
        EdbRecord { fact_id, cell: cell(c), weight, measure }
    }

    /// Entries spread over many cells so the segment spans several pages.
    fn wide_segment(k: usize, n: u32) -> EdbSegment {
        let entries: Vec<EdbRecord> =
            (0..n).map(|i| rec(i as u64, &[i % 97, i / 97], 1.0, i as f64)).collect();
        EdbSegment::build(k, entries)
    }

    #[test]
    fn build_sorts_canonically_and_paginates() {
        let seg = EdbSegment::build(
            2,
            vec![rec(1, &[3, 0], 1.0, 5.0), rec(2, &[0, 1], 0.5, 2.0), rec(3, &[0, 0], 0.5, 2.0)],
        );
        let cells: Vec<u32> = seg.entries().iter().map(|e| e.cell[0]).collect();
        assert_eq!(cells, vec![0, 0, 3]);
        assert_eq!(seg.num_pages(), 1);
        assert_eq!(seg.recs_per_page(), 4096 / 32);
        assert_eq!(seg.footer().stats.entries, 3);
    }

    #[test]
    fn stable_sort_keeps_equal_cell_input_order() {
        let seg =
            EdbSegment::build(2, vec![rec(9, &[1, 1], 0.25, 1.0), rec(7, &[1, 1], 0.75, 2.0)]);
        let ids: Vec<u64> = seg.entries().iter().map(|e| e.fact_id).collect();
        assert_eq!(ids, vec![9, 7], "ties must keep input order");
    }

    #[test]
    fn pruned_scan_is_bit_identical_to_full_scan() {
        let seg = Arc::new(wide_segment(2, 10_000));
        let views = vec![SegmentView::new(seg.clone())];
        for region in [
            bx(&[5, 0], &[6, 100]),
            bx(&[0, 0], &[97, 104]),
            bx(&[96, 90], &[97, 104]),
            bx(&[40, 40], &[40, 60]), // empty box
        ] {
            let (sum_p, count_p, stats_p) = accumulate_region(&views, &region);
            let mut full = SegmentCursor::full_scan(&views, region);
            let (mut sum_f, mut count_f) = (0.0, 0.0);
            full.for_each(|e| {
                sum_f += e.weight * e.measure;
                count_f += e.weight;
            });
            assert_eq!(sum_p.to_bits(), sum_f.to_bits());
            assert_eq!(count_p.to_bits(), count_f.to_bits());
            assert_eq!(full.stats().pages_read, seg.num_pages());
            assert_eq!(full.stats().pages_pruned, 0);
            assert_eq!(stats_p.pages_read + stats_p.pages_pruned, seg.num_pages());
        }
    }

    #[test]
    fn selective_regions_prune_most_pages() {
        let seg = Arc::new(wide_segment(2, 10_000));
        let views = vec![SegmentView::new(seg.clone())];
        let (_, count, stats) = accumulate_region(&views, &bx(&[5, 0], &[6, 104]));
        assert!(count > 0.0);
        assert!(
            stats.pages_pruned > stats.pages_read * 5,
            "selective box should prune most of {} pages (read {}, pruned {})",
            seg.num_pages(),
            stats.pages_read,
            stats.pages_pruned
        );
    }

    #[test]
    fn exclusions_hide_facts_without_touching_the_segment() {
        let seg = Arc::new(EdbSegment::build(
            2,
            vec![rec(1, &[0, 0], 1.0, 10.0), rec(2, &[0, 1], 1.0, 20.0)],
        ));
        let mut view = SegmentView::new(seg.clone());
        assert_eq!(view.live_entries(), 2);
        view.exclude = Arc::new([1u64].into_iter().collect());
        assert_eq!(view.live_entries(), 1);
        let (sum, count, _) = accumulate_region(&[view], &SegmentCursor::all_region(2));
        assert_eq!(sum, 20.0);
        assert_eq!(count, 1.0);
        assert_eq!(seg.len(), 2, "segment itself is untouched");
    }

    #[test]
    fn segment_save_load_round_trips() {
        let dir = iolap_storage::TempDir::new("segment-io").unwrap();
        let path = dir.path().join("seg0");
        let seg = wide_segment(2, 5_000);
        seg.save(&path).unwrap();
        let back = EdbSegment::load(&path, 2).unwrap();
        assert_eq!(back.entries(), seg.entries());
        assert_eq!(back.footer(), seg.footer());
        assert!(EdbSegment::load(&path, 3).is_err(), "wrong k must be rejected");
    }
}
