//! Preprocessing: sort the fact table into summary-table order and
//! materialize the allocation inputs.
//!
//! The paper factors this step out of every algorithm ("we assume this
//! pre-processing step has been performed … In terms of I/O operations, it
//! is equivalent to sorting D"). Concretely, preprocessing:
//!
//! 1. splits precise from imprecise facts;
//! 2. materializes the cell summary table `C` (candidate cells + their
//!    `δ(c)`), in canonical order;
//! 3. externally sorts the imprecise facts into summary-table order
//!    (level vector major, region lower corner minor);
//! 4. computes each fact's `r.first` / `r.last` cell indexes and each
//!    cell's degree (Section 4.2), then re-sorts facts by
//!    `(table, first, last)` so partition groups are scan-ordered;
//! 5. derives the summary-table metadata: partition groups and sizes
//!    (Definition 9) and the partial-order chain cover (Section 5.1).
//!
//! The transient [`CellSetIndex`] is memory-resident (O(|C|) keys), which
//! mirrors the paper's own memory-resident `ccidMap` assumption; see
//! DESIGN.md.

use crate::error::{CoreError, Result};
use crate::policy::{CandidateCells, PolicySpec, Quantity};
use iolap_graph::order::{chain_cover, ChainCover};
use iolap_graph::summary::{partition_groups, partition_records, records_to_pages};
use iolap_graph::{CellSetIndex, SummaryTableMeta};
use iolap_model::records::NO_CCID;
use iolap_model::{
    CellCodec, CellKey, CellRecord, Fact, FactCodec, FactTable, LevelVec, Schema, WorkFactCodec,
    WorkFactRecord, MAX_DIMS,
};
use iolap_storage::{external_sort, Env, RecordFile, SortBudget};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the allocation algorithms need, on disk + metadata.
pub struct PreparedData {
    /// The schema of the input table.
    pub schema: Arc<Schema>,
    /// The storage environment (buffer pool + I/O counters).
    pub env: Env,
    /// Cell summary table `C`, canonical order.
    pub cells: RecordFile<CellRecord, CellCodec>,
    /// Imprecise facts in `(table, first, last)` order.
    pub facts: RecordFile<WorkFactRecord, WorkFactCodec>,
    /// Precise facts (for EDB emission), input order.
    pub precise: RecordFile<Fact, FactCodec>,
    /// In-memory index over the cell keys (canonical order).
    pub index: CellSetIndex,
    /// Per-summary-table metadata.
    pub tables: Vec<SummaryTableMeta>,
    /// Minimum chain cover of the summary-table partial order.
    pub cover: ChainCover,
    /// Imprecise facts covering no candidate cell.
    pub unallocatable: u64,
    /// Total number of (cell, fact) edges in the allocation graph.
    pub num_edges: u64,
}

impl PreparedData {
    /// Number of dimensions.
    pub fn k(&self) -> usize {
        self.schema.k()
    }

    /// Total partition size over all tables, in pages (the paper's |P|).
    pub fn partition_pages(&self) -> u64 {
        self.tables.iter().map(|t| t.partition_pages).sum()
    }

    /// The region of a work-fact record.
    pub fn region_of(&self, rec: &WorkFactRecord) -> iolap_model::RegionBox {
        region_of(&self.schema, &rec.dims)
    }
}

/// Region of a dims vector under `schema`.
pub fn region_of(schema: &Schema, dims: &[u32; MAX_DIMS]) -> iolap_model::RegionBox {
    let f = Fact { id: 0, dims: *dims, measure: 0.0 };
    schema.region(&f)
}

/// Sort key for the "summary table order": level vector major, region
/// lower corner minor.
fn summary_order_key(schema: &Schema, rec: &WorkFactRecord) -> (LevelVec, CellKey) {
    let f = Fact { id: rec.id, dims: rec.dims, measure: rec.measure };
    let lv = schema.level_vec(&f);
    let lo = schema.region(&f).lex_first();
    (lv, lo)
}

/// Output of [`layout_facts`].
pub struct LayoutResult {
    /// Facts sorted by `(table, first, last)`.
    pub facts: RecordFile<WorkFactRecord, WorkFactCodec>,
    /// Per-table metadata (partition groups & sizes).
    pub tables: Vec<SummaryTableMeta>,
    /// Per-cell overlap degree.
    pub degrees: Vec<u32>,
    /// Total (cell, fact) edges.
    pub num_edges: u64,
    /// Facts covering no candidate cell.
    pub unallocatable: u64,
}

/// Annotate each fact with its `r.first` / `r.last` cell span, re-sort by
/// `(table, first, last)`, and derive the summary-table metadata. The
/// `table` field of every record must already be assigned;
/// `level_vec_of(table)` must return its level vector.
///
/// Shared between [`prepare`] and the Transitive algorithm's
/// larger-than-buffer component fallback (which relayouts a component's
/// facts against the component's own cell index).
pub fn layout_facts(
    env: &Env,
    schema: &Schema,
    index: &CellSetIndex,
    facts: RecordFile<WorkFactRecord, WorkFactCodec>,
    level_vec_of: &dyn Fn(u16) -> LevelVec,
    sort_pages: usize,
) -> Result<LayoutResult> {
    let k = schema.k();
    let mut degrees = vec![0u32; index.len() as usize];
    let mut num_edges = 0u64;
    let mut unallocatable = 0u64;

    // Span pass: first/last covered cell per fact, degree per cell.
    // (The paper extracts first/last during the sort's final merge; a
    // dedicated pass is the same I/O and much clearer.)
    let mut span_pass = env.obs().span("prep.span_pass");
    let with_spans = {
        let mut f = facts;
        let mut cursor = f.scan();
        while let Some(mut rec) = cursor.next()? {
            let bx = region_of(schema, &rec.dims);
            let mut first = u64::MAX;
            let mut last = 0u64;
            index.for_each_in_box(&bx, |i| {
                degrees[i as usize] += 1;
                num_edges += 1;
                first = first.min(i);
                last = last.max(i);
            });
            rec.first = first;
            rec.last = last;
            if first == u64::MAX {
                unallocatable += 1;
            }
            cursor.write_back(&rec)?;
        }
        drop(cursor);
        f
    };

    span_pass.record("edges", num_edges);
    span_pass.record("unallocatable", unallocatable);
    drop(span_pass);
    // Re-sort by (table, first, last) so each table's facts are in
    // partition-group order (uncovered facts sort last per table).
    let mut facts = external_sort(env, with_spans, SortBudget::pages(sort_pages), |r| {
        (r.table, r.first, r.last)
    })?;

    // Group into summary-table metadata.
    let mut tables: Vec<SummaryTableMeta> = Vec::new();
    {
        let work_codec = WorkFactCodec { k };
        let rec_bytes = iolap_storage::Codec::<WorkFactRecord>::size(&work_codec);
        let finish = |tables: &mut Vec<SummaryTableMeta>,
                      t: u16,
                      start: u64,
                      end: u64,
                      spans: Vec<(u64, u64)>| {
            let groups = partition_groups(start, &spans);
            let recs = partition_records(&groups);
            tables.push(SummaryTableMeta {
                id: t,
                level_vec: level_vec_of(t),
                fact_start: start,
                fact_end: end,
                groups,
                partition_records: recs,
                partition_pages: records_to_pages(recs, rec_bytes),
            });
        };
        let mut cursor = facts.scan();
        // (table id, start position, covered-fact spans)
        type OpenTable = (u16, u64, Vec<(u64, u64)>);
        let mut cur: Option<OpenTable> = None;
        let mut pos = 0u64;
        while let Some(rec) = cursor.next()? {
            match &mut cur {
                Some((t, _start, spans)) if *t == rec.table => {
                    if rec.covers_any_cell() {
                        spans.push((rec.first, rec.last));
                    }
                }
                _ => {
                    if let Some((t, start, spans)) = cur.take() {
                        finish(&mut tables, t, start, pos, spans);
                    }
                    let mut spans = Vec::new();
                    if rec.covers_any_cell() {
                        spans.push((rec.first, rec.last));
                    }
                    cur = Some((rec.table, pos, spans));
                }
            }
            pos += 1;
        }
        if let Some((t, start, spans)) = cur.take() {
            finish(&mut tables, t, start, pos, spans);
        }
    }
    facts.seal();
    Ok(LayoutResult { facts, tables, degrees, num_edges, unallocatable })
}

/// Run preprocessing. `sort_pages` is the external-sort budget (the paper
/// uses the same buffer `B` for everything).
pub fn prepare(
    table: &FactTable,
    policy: &PolicySpec,
    env: &Env,
    sort_pages: usize,
) -> Result<PreparedData> {
    let schema = table.schema().clone();
    let k = schema.k();

    // -- 1. split precise / imprecise -----------------------------------
    let mut precise: RecordFile<Fact, FactCodec> = env.create_file("precise", FactCodec { k })?;
    let mut imprecise_raw: RecordFile<WorkFactRecord, WorkFactCodec> =
        env.create_file("imprecise", WorkFactCodec { k })?;
    let mut precise_cells: Vec<(CellKey, f64)> = Vec::new();
    for f in table.facts() {
        if let Some(cell) = schema.cell_of(f) {
            precise.push(f)?;
            precise_cells.push((cell, f.measure));
        } else {
            imprecise_raw.push(&WorkFactRecord {
                id: f.id,
                dims: f.dims,
                measure: f.measure,
                gamma: 0.0,
                table: 0,
                ccid: NO_CCID,
                first: u64::MAX,
                last: 0,
            })?;
        }
    }
    precise.seal();

    // -- 2. candidate cells + δ ------------------------------------------
    let mut keys: Vec<CellKey> = precise_cells.iter().map(|(c, _)| *c).collect();
    if let CandidateCells::RegionUnion { max_cells } = policy.cells {
        let mut budget = max_cells;
        for f in table.facts() {
            if schema.is_precise(f) {
                continue;
            }
            let bx = schema.region(f);
            let n = bx.num_cells();
            if n > budget {
                return Err(CoreError::CellSetTooLarge { limit: max_cells });
            }
            budget -= n;
            keys.extend(bx.cells());
        }
    }
    let index = CellSetIndex::from_unsorted(keys, k);
    if index.is_empty() && !imprecise_raw.is_empty() {
        return Err(CoreError::BadInput(
            "no candidate cells: nothing to allocate imprecise facts to".into(),
        ));
    }

    // δ(c) per the quantity.
    let mut delta0 = vec![0.0f64; index.len() as usize];
    match policy.quantity {
        Quantity::Uniform => delta0.fill(1.0),
        Quantity::Count => {
            for (cell, _) in &precise_cells {
                let i = index.position(cell).expect("precise cell is a candidate");
                delta0[i as usize] += 1.0;
            }
        }
        Quantity::Measure => {
            for (cell, m) in &precise_cells {
                let i = index.position(cell).expect("precise cell is a candidate");
                delta0[i as usize] += m;
            }
        }
    }
    drop(precise_cells);

    // -- 3. sort into summary-table order --------------------------------
    let schema2 = schema.clone();
    let sorted = external_sort(env, imprecise_raw, SortBudget::pages(sort_pages), move |r| {
        summary_order_key(&schema2, r)
    })?;

    // -- 4. assign dense table ids (facts are level-vector-contiguous) ---
    let mut level_vec_of_table: Vec<LevelVec> = Vec::new();
    let with_tables = {
        let mut sorted = sorted;
        let mut seen: HashMap<LevelVec, u16> = HashMap::new();
        let mut cursor = sorted.scan();
        while let Some(mut rec) = cursor.next()? {
            let f = Fact { id: rec.id, dims: rec.dims, measure: rec.measure };
            let lv = schema.level_vec(&f);
            let next_id = level_vec_of_table.len() as u16;
            let id = *seen.entry(lv).or_insert_with(|| {
                level_vec_of_table.push(lv);
                next_id
            });
            rec.table = id;
            cursor.write_back(&rec)?;
        }
        drop(cursor);
        sorted
    };

    // -- 5. spans, partition groups, summary-table metadata ---------------
    let lvs = level_vec_of_table.clone();
    let layout =
        layout_facts(env, &schema, &index, with_tables, &move |t| lvs[t as usize], sort_pages)?;
    let LayoutResult { facts, tables, degrees, num_edges, unallocatable } = layout;

    // -- chains -----------------------------------------------------------
    let cover = chain_cover(&level_vec_of_table, k);

    // -- cells file --------------------------------------------------------
    let mut cells: RecordFile<CellRecord, CellCodec> = env.create_file("cells", CellCodec { k })?;
    for i in 0..index.len() {
        let mut rec = CellRecord::new(*index.key(i), delta0[i as usize]);
        rec.degree = degrees[i as usize];
        // Cells overlapped by no imprecise fact never change — the
        // Section 11.1 optimization all three algorithms share.
        rec.converged = rec.degree == 0;
        cells.push(&rec)?;
    }
    cells.seal();

    Ok(PreparedData {
        schema,
        env: env.clone(),
        cells,
        facts,
        precise,
        index,
        tables,
        cover,
        unallocatable,
        num_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolap_model::paper_example;

    fn prep_table1() -> PreparedData {
        let env =
            iolap_storage::Env::builder("prep-test").pool_pages(64).in_memory().build().unwrap();
        let t = paper_example::table1();
        prepare(&t, &PolicySpec::em_count(0.05), &env, 8).unwrap()
    }

    #[test]
    fn figure2_cells_and_deltas() {
        let p = prep_table1();
        assert_eq!(p.cells.len(), 5);
        assert_eq!(p.index.keys(), &paper_example::figure2_cells()[..]);
        // Every precise fact maps to a distinct cell → δ = 1 everywhere.
        for i in 0..5 {
            let c = p.cells.get(i).unwrap();
            assert_eq!(c.delta0, 1.0);
            assert_eq!(c.delta, 1.0);
            assert!(c.degree >= 1, "every Figure 2 cell is overlapped");
            assert!(!c.converged);
        }
    }

    #[test]
    fn five_summary_tables_with_figure3_levels() {
        let p = prep_table1();
        assert_eq!(p.tables.len(), 5);
        let mut lvs: Vec<[u8; 2]> =
            p.tables.iter().map(|t| [t.level_vec[0], t.level_vec[1]]).collect();
        lvs.sort();
        assert_eq!(lvs, vec![[1, 2], [1, 3], [2, 1], [2, 2], [3, 1]]);
        // Each table has 2 facts except ⟨1,3⟩ = {p8}.
        for t in &p.tables {
            let expect = if t.level_vec[..2] == [1, 3] { 1 } else { 2 };
            assert_eq!(t.num_facts(), expect, "{:?}", t.level_vec);
        }
        // Width of the partial order is 3 (Figure 3).
        assert_eq!(p.cover.width(), 3);
    }

    #[test]
    fn edges_match_figure2() {
        let p = prep_table1();
        assert_eq!(p.num_edges, 12);
        assert_eq!(p.unallocatable, 0);
        // Degrees: c1 ← {p6, p11}, c2 ← {p7, p9}, c3 ← {p9, p12},
        // c4 ← {p8, p10, p11, p13}, c5 ← {p8, p14}.
        let degs: Vec<u32> = (0..5).map(|i| p.cells.get(i).unwrap().degree).collect();
        assert_eq!(degs, vec![2, 2, 2, 4, 2]);
    }

    #[test]
    fn facts_sorted_by_table_then_first() {
        let mut p = prep_table1();
        let mut cursor = p.facts.scan();
        let mut prev: Option<(u16, u64, u64)> = None;
        while let Some(r) = cursor.next().unwrap() {
            let key = (r.table, r.first, r.last);
            if let Some(pk) = prev {
                assert!(pk <= key);
            }
            prev = Some(key);
        }
    }

    #[test]
    fn partition_sizes_are_small_for_table1() {
        let p = prep_table1();
        for t in &p.tables {
            // No two facts of one summary table interleave in Figure 2
            // except duplicates; partition sizes are 1 record, except S4
            // (p11 covers c1..c4 and p12 covers c3) which interleaves.
            assert!(t.partition_records <= 2, "{:?}: {}", t.level_vec, t.partition_records);
            assert_eq!(t.partition_pages, 1);
        }
        // S4 = ⟨3,1⟩: p11 spans cells 0..3, p12 covers cell 2 → one group.
        let s4 = p.tables.iter().find(|t| t.level_vec[..2] == [3, 1]).unwrap();
        assert_eq!(s4.partition_records, 2);
        assert_eq!(s4.groups.len(), 1);
        assert_eq!(s4.groups[0].first_cell, 0);
        assert_eq!(s4.groups[0].last_cell, 3);
    }

    #[test]
    fn region_union_explodes_gracefully() {
        let env = iolap_storage::Env::builder("prep-ru").in_memory().build().unwrap();
        let t = paper_example::table1();
        let mut policy = PolicySpec::uniform();
        policy.cells = CandidateCells::RegionUnion { max_cells: 3 };
        let err = match prepare(&t, &policy, &env, 8) {
            Err(e) => e,
            Ok(_) => panic!("expected CellSetTooLarge"),
        };
        assert!(matches!(err, CoreError::CellSetTooLarge { limit: 3 }));
    }

    #[test]
    fn region_union_includes_all_region_cells() {
        let env = iolap_storage::Env::builder("prep-ru2").in_memory().build().unwrap();
        let t = paper_example::table1();
        let p = prepare(&t, &PolicySpec::uniform(), &env, 8).unwrap();
        // Union of the 9 imprecise regions + 5 precise cells: all cells
        // covered by p11 (ALL, Civic) = 4 cells ⋃ p8 (CA, ALL) = 4 ⋃ … —
        // count by brute force.
        let s = t.schema();
        let mut keys: Vec<CellKey> = t.facts().iter().filter_map(|f| s.cell_of(f)).collect();
        for f in t.facts().iter().filter(|f| !s.is_precise(f)) {
            keys.extend(s.region(f).cells());
        }
        let want = CellSetIndex::from_unsorted(keys, 2);
        assert_eq!(p.index.keys(), want.keys());
        // Uniform δ = 1 everywhere.
        assert_eq!(p.cells.get(0).unwrap().delta0, 1.0);
    }

    #[test]
    fn measure_quantity_sums_measures() {
        let env = iolap_storage::Env::builder("prep-m").in_memory().build().unwrap();
        let t = paper_example::table1();
        let p = prepare(&t, &PolicySpec::measure(), &env, 8).unwrap();
        // c1 = (MA, Civic) has only p1 with measure 100.
        let c1 = p.cells.get(0).unwrap();
        assert_eq!(c1.delta0, 100.0);
    }

    #[test]
    fn empty_imprecise_set_is_fine() {
        let env = iolap_storage::Env::builder("prep-e").in_memory().build().unwrap();
        let t = paper_example::table1();
        let only_precise = iolap_model::FactTable::from_facts(
            t.schema().clone(),
            t.facts().iter().take(5).cloned().collect(),
        );
        let p = prepare(&only_precise, &PolicySpec::em_count(0.05), &env, 8).unwrap();
        assert_eq!(p.facts.len(), 0);
        assert!(p.tables.is_empty());
        assert_eq!(p.cover.width(), 0);
        // All cells converged (degree 0).
        assert!(p.cells.get(0).unwrap().converged);
    }
}
