//! Shared pass machinery: the summary-table cursors ("windows") that the
//! Block, Transitive and Independent algorithms slide over the cell scan.
//!
//! * [`GroupWindow`] — Block-style: the cell table is in canonical order
//!   and each summary table's facts are grouped into partition groups
//!   (Definition 9); at any moment at most one group per table is resident
//!   ("Update cursor on Si to partition p that could cover c").
//! * [`ChainWindow`] — Independent-style: cells are in a chain sort order
//!   and facts carry `[start, end]` stage keys; a fact is resident exactly
//!   while the scan key is inside its block (Theorem 5 guarantees blocks
//!   are contiguous, so residency is a single interval).

use crate::error::Result;
use crate::prep::region_of;
use iolap_graph::order::{ChainOrder, StageKey};
use iolap_graph::SummaryTableMeta;
use iolap_model::{CellKey, RegionBox, Schema, WorkFactCodec, WorkFactRecord};
use iolap_storage::RecordFile;

/// Per-cell cache of ancestor node ids at every (dimension, level): the
/// windows of all summary tables share it, so each cell pays for its
/// ancestor lookups once per scan instead of once per table.
pub struct AncCache {
    /// `anc[d][l-1]` = arena id of the ancestor of `cell[d]` at level `l`.
    anc: [[u32; 8]; iolap_model::MAX_DIMS],
}

impl AncCache {
    /// Compute the cache for `key` under `schema`.
    #[inline]
    pub fn compute(schema: &Schema, key: &CellKey) -> Self {
        let mut anc = [[0u32; 8]; iolap_model::MAX_DIMS];
        for d in 0..schema.k() {
            let h = schema.dim(d);
            for l in 1..=h.levels() {
                anc[d][(l - 1) as usize] = h.ancestor_at(key[d], l).0;
            }
        }
        AncCache { anc }
    }

    /// Ancestor id of dimension `d` at level `l`.
    #[inline]
    pub fn get(&self, d: usize, l: u8) -> u32 {
        self.anc[d][(l - 1) as usize]
    }
}

/// A fact resident in a window.
#[derive(Debug, Clone)]
pub struct ActiveFact {
    /// Index of the record in the facts file.
    pub file_idx: u64,
    /// The record (mutated in memory; flushed on retirement).
    pub rec: WorkFactRecord,
    /// Cached region.
    pub region: RegionBox,
    /// Whether the record changed and must be written back.
    pub dirty: bool,
}

/// What to do to a fact's `Γ` when it enters a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnLoad {
    /// Leave the record as read (second passes, component labelling).
    Keep,
    /// Zero `Γ` (start of an E-step pass).
    ResetGamma,
}

/// Block-style window over one summary table (see module docs).
///
/// Matching is O(1) per cell: all facts of one summary table sit at the
/// same level vector, so their per-dimension intervals are leaf ranges of
/// *same-level* nodes — pairwise disjoint. A cell is therefore covered by
/// exactly the facts whose dimension vector equals the cell's ancestor
/// vector at the table's levels, found by one hash lookup (duplicated
/// facts share the bucket).
pub struct GroupWindow {
    meta: SummaryTableMeta,
    on_load: OnLoad,
    /// Index of the next group to load.
    next_group: usize,
    /// Resident facts of the current group.
    window: Vec<ActiveFact>,
    /// dims-vector → window indexes (built per loaded group).
    by_dims: iolap_graph::FxHashMap<[u32; iolap_model::MAX_DIMS], Vec<u32>>,
    /// Scratch for batch reads.
    batch: Vec<WorkFactRecord>,
}

impl GroupWindow {
    /// A window over `meta`'s partition groups.
    pub fn new(meta: SummaryTableMeta, on_load: OnLoad) -> Self {
        GroupWindow {
            meta,
            on_load,
            next_group: 0,
            window: Vec::new(),
            by_dims: iolap_graph::FxHashMap::default(),
            batch: Vec::new(),
        }
    }

    /// Move the window to cover cell index `cell_idx` (monotonically
    /// increasing across calls). Retired facts are flushed.
    pub fn advance(
        &mut self,
        cell_idx: u64,
        facts: &mut RecordFile<WorkFactRecord, WorkFactCodec>,
        schema: &Schema,
    ) -> Result<()> {
        // Retire the current group once the scan passes its last cell.
        if !self.window.is_empty() {
            let last = self.meta.groups[self.next_group - 1].last_cell;
            if cell_idx > last {
                self.flush(facts)?;
            }
        }
        // Load the next group when the scan reaches it.
        while self.window.is_empty() && self.next_group < self.meta.groups.len() {
            let g = &self.meta.groups[self.next_group];
            if cell_idx < g.first_cell {
                break;
            }
            if cell_idx > g.last_cell {
                // Scan jumped past an entire group (possible when the
                // caller skips cells); nothing in it matched — still count
                // it as visited.
                self.next_group += 1;
                continue;
            }
            self.batch.clear();
            facts.read_batch(
                g.fact_start,
                &mut self.batch,
                (g.fact_end - g.fact_start) as usize,
            )?;
            for (off, mut rec) in self.batch.drain(..).enumerate() {
                if self.on_load == OnLoad::ResetGamma {
                    rec.gamma = 0.0;
                }
                let region = region_of(schema, &rec.dims);
                self.by_dims.entry(rec.dims).or_default().push(self.window.len() as u32);
                self.window.push(ActiveFact {
                    file_idx: g.fact_start + off as u64,
                    rec,
                    region,
                    dirty: self.on_load == OnLoad::ResetGamma,
                });
            }
            self.next_group += 1;
            // Read-ahead: while the scan computes over this group, stage
            // the next group's fact pages in the background (advisory; a
            // no-op without a prefetch pipeline).
            if let Some(n) = self.meta.groups.get(self.next_group) {
                facts.hint_range(n.fact_start, n.fact_end - n.fact_start);
            }
        }
        Ok(())
    }

    /// Visit every resident fact whose region contains the cell whose
    /// ancestor cache is `anc`: build the table's dimension vector from
    /// the cache and look it up.
    pub fn for_each_match(&mut self, anc: &AncCache, k: usize, mut f: impl FnMut(&mut ActiveFact)) {
        if self.window.is_empty() {
            return;
        }
        let mut dims = [0u32; iolap_model::MAX_DIMS];
        for (d, slot) in dims.iter_mut().enumerate().take(k) {
            *slot = anc.get(d, self.meta.level_vec[d]);
        }
        if let Some(idxs) = self.by_dims.get(&dims) {
            for &i in idxs {
                f(&mut self.window[i as usize]);
            }
        }
    }

    /// Collect the window-slot indexes of the facts covering the cell
    /// (lets a caller read matches, compute something, then mutate them
    /// without a second lookup).
    pub fn matches_into(&mut self, anc: &AncCache, k: usize, out: &mut Vec<u32>) {
        out.clear();
        if self.window.is_empty() {
            return;
        }
        let mut dims = [0u32; iolap_model::MAX_DIMS];
        for (d, slot) in dims.iter_mut().enumerate().take(k) {
            *slot = anc.get(d, self.meta.level_vec[d]);
        }
        if let Some(idxs) = self.by_dims.get(&dims) {
            out.extend_from_slice(idxs);
        }
    }

    /// Direct access to a resident fact by window slot (see
    /// [`Self::matches_into`]).
    pub fn fact_mut(&mut self, slot: u32) -> &mut ActiveFact {
        &mut self.window[slot as usize]
    }

    /// Write back dirty facts and empty the window.
    pub fn flush(&mut self, facts: &mut RecordFile<WorkFactRecord, WorkFactCodec>) -> Result<()> {
        for af in self.window.drain(..) {
            if af.dirty {
                facts.set(af.file_idx, &af.rec)?;
            }
        }
        self.by_dims.clear();
        Ok(())
    }

    /// Peak number of resident records (should equal the partition size
    /// when the whole table is scanned).
    pub fn meta(&self) -> &SummaryTableMeta {
        &self.meta
    }
}

/// Independent-style window over a chain-sorted fact file.
pub struct ChainWindow {
    order: ChainOrder,
    /// Next record to load.
    next_idx: u64,
    /// Total records in the file.
    len: u64,
    /// Read-ahead slot.
    pending: Option<(u64, WorkFactRecord, StageKey)>,
    /// Resident facts with their block-end keys.
    active: Vec<(ActiveFact, StageKey)>,
}

impl ChainWindow {
    /// A window over `facts` (sorted by block-start key under `order`).
    pub fn new(order: ChainOrder, len: u64) -> Self {
        ChainWindow { order, next_idx: 0, len, pending: None, active: Vec::new() }
    }

    /// Move the window to the cell with stage key `cell_key`
    /// (monotonically increasing). Loads facts whose blocks have begun,
    /// retires facts whose blocks have ended.
    pub fn advance(
        &mut self,
        cell_key: &StageKey,
        facts: &mut RecordFile<WorkFactRecord, WorkFactCodec>,
        schema: &Schema,
        on_load: OnLoad,
    ) -> Result<()> {
        // Retire.
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].1 < *cell_key {
                let (af, _) = self.active.swap_remove(i);
                if af.dirty {
                    facts.set(af.file_idx, &af.rec)?;
                }
            } else {
                i += 1;
            }
        }
        // Load.
        loop {
            if self.pending.is_none() {
                if self.next_idx >= self.len {
                    break;
                }
                // The window loads records strictly in file order; keep the
                // prefetcher a few pages ahead (one hint per page crossing).
                let rpp = facts.recs_per_page() as u64;
                if self.next_idx.is_multiple_of(rpp) {
                    let depth = facts.pool().prefetch_depth() as u64;
                    if depth > 0 {
                        facts.hint_range(self.next_idx, depth * rpp);
                    }
                }
                let rec = facts.get(self.next_idx)?;
                let region = region_of(schema, &rec.dims);
                let start = self.order.region_start_key(schema, &region);
                self.pending = Some((self.next_idx, rec, start));
                self.next_idx += 1;
            }
            let starts = self.pending.as_ref().map(|(_, _, s)| *s).expect("set above");
            if starts > *cell_key {
                break;
            }
            let (idx, mut rec, _) = self.pending.take().expect("checked");
            if on_load == OnLoad::ResetGamma {
                rec.gamma = 0.0;
            }
            let region = region_of(schema, &rec.dims);
            let end = self.order.region_end_key(schema, &region);
            self.active.push((
                ActiveFact { file_idx: idx, rec, region, dirty: on_load == OnLoad::ResetGamma },
                end,
            ));
        }
        Ok(())
    }

    /// Visit every resident fact whose region contains `key`.
    pub fn for_each_match(&mut self, key: &CellKey, mut f: impl FnMut(&mut ActiveFact)) {
        for (af, _) in &mut self.active {
            if af.region.contains_cell(key) {
                f(af);
            }
        }
    }

    /// Flush everything (end of scan).
    pub fn flush(&mut self, facts: &mut RecordFile<WorkFactRecord, WorkFactCodec>) -> Result<()> {
        for (af, _) in self.active.drain(..) {
            if af.dirty {
                facts.set(af.file_idx, &af.rec)?;
            }
        }
        if let Some((idx, rec, _)) = self.pending.take() {
            // Never became active; nothing changed.
            let _ = (idx, rec);
        }
        Ok(())
    }

    /// Current number of resident facts (tests).
    pub fn resident(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use crate::prep::prepare;
    use iolap_model::paper_example;

    #[test]
    fn group_window_visits_every_edge_once() {
        let env =
            iolap_storage::Env::builder("win-test").pool_pages(64).in_memory().build().unwrap();
        let t = paper_example::table1();
        let mut p = prepare(&t, &PolicySpec::em_count(0.05), &env, 8).unwrap();

        // Slide windows for all 5 tables over the 5 cells; count edges.
        let mut windows: Vec<GroupWindow> =
            p.tables.iter().map(|m| GroupWindow::new(m.clone(), OnLoad::Keep)).collect();
        let mut edges = 0u64;
        let n = p.cells.len();
        for i in 0..n {
            let cell = p.cells.get(i).unwrap();
            let anc = AncCache::compute(&p.schema, &cell.key);
            for w in &mut windows {
                w.advance(i, &mut p.facts, &p.schema).unwrap();
                w.for_each_match(&anc, 2, |_| edges += 1);
            }
        }
        for w in &mut windows {
            w.flush(&mut p.facts).unwrap();
        }
        assert_eq!(edges, 12, "Figure 2 has 12 edges");
    }

    #[test]
    fn group_window_gamma_accumulation_roundtrips() {
        let env = iolap_storage::Env::builder("win-g").pool_pages(64).in_memory().build().unwrap();
        let t = paper_example::table1();
        let mut p = prepare(&t, &PolicySpec::em_count(0.05), &env, 8).unwrap();
        let mut windows: Vec<GroupWindow> =
            p.tables.iter().map(|m| GroupWindow::new(m.clone(), OnLoad::ResetGamma)).collect();
        for i in 0..p.cells.len() {
            let cell = p.cells.get(i).unwrap();
            let anc = AncCache::compute(&p.schema, &cell.key);
            for w in &mut windows {
                w.advance(i, &mut p.facts, &p.schema).unwrap();
                w.for_each_match(&anc, 2, |af| {
                    af.rec.gamma += cell.delta;
                    af.dirty = true;
                });
            }
        }
        for w in &mut windows {
            w.flush(&mut p.facts).unwrap();
        }
        // With δ = 1 per cell, Γ(r) = number of covered cells.
        let mut by_id = std::collections::HashMap::new();
        let mut cursor = p.facts.scan();
        while let Some(r) = cursor.next().unwrap() {
            by_id.insert(r.id, r.gamma);
        }
        assert_eq!(by_id[&6], 1.0); // p6 covers c1
        assert_eq!(by_id[&8], 2.0); // p8 covers c4, c5
        assert_eq!(by_id[&9], 2.0); // p9 covers c2, c3
        assert_eq!(by_id[&11], 2.0); // p11 covers c1, c4
        assert_eq!(by_id[&12], 1.0);
    }

    #[test]
    fn chain_window_matches_group_window_edges() {
        let env = iolap_storage::Env::builder("win-c").pool_pages(64).in_memory().build().unwrap();
        let t = paper_example::table1();
        let p = prepare(&t, &PolicySpec::em_count(0.05), &env, 8).unwrap();
        let schema = p.schema.clone();

        // One chain with all five tables is NOT a chain of the partial
        // order, so exercise a real chain: ⟨2,1⟩ ⊑ ⟨2,2⟩.
        let chain_tables: Vec<&iolap_graph::SummaryTableMeta> = p
            .tables
            .iter()
            .filter(|m| m.level_vec[..2] == [2, 1] || m.level_vec[..2] == [2, 2])
            .collect();
        let lvs: Vec<_> = chain_tables.iter().map(|m| m.level_vec).collect();
        let order = ChainOrder::for_chain(&lvs, &schema);

        // Copy chain facts to a temp file sorted by block start key.
        let mut temp = env.create_file("chain", iolap_model::WorkFactCodec { k: 2 }).unwrap();
        {
            let mut all: Vec<WorkFactRecord> = Vec::new();
            for m in &chain_tables {
                let mut batch = Vec::new();
                p.facts
                    .read_batch(m.fact_start, &mut batch, (m.fact_end - m.fact_start) as usize)
                    .unwrap();
                all.extend(batch);
            }
            all.sort_by_key(|r| {
                let region = region_of(&schema, &r.dims);
                order.region_start_key(&schema, &region)
            });
            temp.extend(all.iter()).unwrap();
        }

        // Sort the cells by the chain order and slide the window.
        let mut cells: Vec<_> = (0..p.cells.len()).map(|i| p.cells.get(i).unwrap()).collect();
        cells.sort_by_key(|c| order.cell_key(&schema, &c.key));
        let mut w = ChainWindow::new(order, temp.len());
        let mut edges = 0;
        for c in &cells {
            let key = w.order.cell_key(&schema, &c.key);
            w.advance(&key, &mut temp, &schema, OnLoad::Keep).unwrap();
            w.for_each_match(&c.key, |_| edges += 1);
            assert!(w.resident() <= 3, "chain window should stay tiny");
        }
        w.flush(&mut temp).unwrap();
        // Edges of S5 {p13→c4, p14→c5} and S3 {p9→c2,c3, p10→c4}: 5 edges.
        assert_eq!(edges, 5);
    }
}
