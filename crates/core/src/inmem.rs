//! In-memory allocation: the exact math of the policy template over an
//! explicit edge list.
//!
//! Used three ways:
//! * as the **Basic Algorithm** (Algorithm 1) reference implementation;
//! * by the **Transitive Algorithm** for connected components that fit in
//!   the buffer ("read CC into memory, evaluate A for tuples in CC");
//! * by tests as the oracle every external algorithm must agree with.

use crate::policy::Convergence;
use crate::prep::region_of;
use iolap_graph::CellSetIndex;
use iolap_model::Schema;
use iolap_model::{CellRecord, EdbRecord, WorkFactRecord};

/// An in-memory allocation problem: cells, imprecise facts, and the
/// bipartite edges between them.
///
/// The adjacency is a flat CSR (compressed sparse row) layout: the cells
/// covered by fact `r` are `targets[offsets[r] .. offsets[r + 1]]`. One
/// prefix-offset array plus one target array replaces a `Vec<Vec<u32>>` of
/// per-fact edge lists, so the EM passes stream two contiguous arrays
/// instead of chasing a pointer per fact — the dominant win for the
/// many-small-component workloads the Transitive algorithm feeds this
/// kernel.
pub struct InMemProblem {
    /// Cell records (delta fields mutated in place).
    pub cells: Vec<CellRecord>,
    /// Imprecise fact records (gamma mutated in place).
    pub facts: Vec<WorkFactRecord>,
    /// CSR prefix offsets, `facts.len() + 1` entries.
    offsets: Vec<u32>,
    /// CSR edge targets: indexes into `cells`, grouped by fact.
    targets: Vec<u32>,
}

impl InMemProblem {
    /// Build the CSR adjacency from regions (cells need not be sorted; an
    /// index is built internally).
    pub fn build(cells: Vec<CellRecord>, facts: Vec<WorkFactRecord>, schema: &Schema) -> Self {
        let k = schema.k();
        // Cells arrive in canonical order from preprocessing, but be
        // defensive: sort a copy of the keys for the index and map back.
        let keys: Vec<_> = cells.iter().map(|c| c.key).collect();
        let index = CellSetIndex::from_unsorted(keys, k);
        let pos_of: iolap_graph::FxHashMap<[u32; iolap_model::MAX_DIMS], u32> =
            cells.iter().enumerate().map(|(i, c)| (c.key, i as u32)).collect();
        let mut offsets = Vec::with_capacity(facts.len() + 1);
        offsets.push(0u32);
        let mut targets = Vec::new();
        for f in &facts {
            let bx = region_of(schema, &f.dims);
            let start = targets.len();
            index.for_each_in_box(&bx, |i| {
                targets.push(pos_of[index.key(i)]);
            });
            // Visit order is rotation-dependent; canonicalize so emission
            // order (and hence EDB entry order) is deterministic.
            targets[start..].sort_unstable();
            assert!(targets.len() <= u32::MAX as usize, "CSR edge count overflows u32");
            offsets.push(targets.len() as u32);
        }
        InMemProblem { cells, facts, offsets, targets }
    }

    /// Indexes into `cells` covered by fact `r`, in canonical order.
    #[inline]
    pub fn covered(&self, r: usize) -> &[u32] {
        &self.targets[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// Number of (cell, fact) edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Per-cell degree (number of imprecise facts covering each cell),
    /// recomputed from the adjacency.
    pub fn degrees(&self) -> Vec<u32> {
        let mut degree = vec![0u32; self.cells.len()];
        for &c in &self.targets {
            degree[c as usize] += 1;
        }
        degree
    }

    /// Run the Basic Algorithm (Algorithm 1) until every Δ(c) converges or
    /// `conv.max_iters` is reached. Returns `(iterations, converged)`.
    ///
    /// The structure below intentionally mirrors the paper's pseudocode:
    /// line 3 (`Δ⁽⁰⁾(c) ← δ(c)`) happened at record construction; lines
    /// 6–9 are the Γ pass; lines 11–14 the Δ pass.
    pub fn solve(&mut self, conv: &Convergence) -> (u32, bool) {
        self.solve_observed(conv, None)
    }

    /// [`solve`](InMemProblem::solve) with per-iteration telemetry: when
    /// `on_iter` is `Some`, it is called after every EM iteration with
    /// `(iteration, max_relative_delta, unconverged_cells)`. The relative
    /// delta is computed **only** when a callback is installed, so the
    /// untraced path pays nothing; the convergence *decision* always goes
    /// through [`Convergence::cell_converged`] either way (the two differ
    /// at `Δ⁽ᵗ⁻¹⁾ = 0`, where the relative delta is infinite).
    pub fn solve_observed(
        &mut self,
        conv: &Convergence,
        mut on_iter: Option<&mut dyn FnMut(u32, f64, u64)>,
    ) -> (u32, bool) {
        let mut remaining = self.cells.iter().filter(|c| !c.converged).count();
        if remaining == 0 || self.facts.is_empty() || conv.max_iters == 0 {
            // Non-iterative policies (max_iters = 0) are single-shot:
            // Δ stays δ and the closed-form weights come out at emission.
            return (0, true);
        }
        let mut new_delta = vec![0.0f64; self.cells.len()];
        let InMemProblem { cells, facts, offsets, targets } = self;
        for t in 1..=conv.max_iters {
            // Γ pass: for each imprecise fact r, Γ(r) ← Σ Δ⁽ᵗ⁻¹⁾(c).
            for (r, w) in offsets.windows(2).enumerate() {
                let mut g = 0.0;
                for &c in &targets[w[0] as usize..w[1] as usize] {
                    g += cells[c as usize].delta;
                }
                facts[r].gamma = g;
            }
            // Δ pass: Δ⁽ᵗ⁾(c) ← δ(c) + Σ Δ⁽ᵗ⁻¹⁾(c)/Γ⁽ᵗ⁾(r).
            for (c, cell) in cells.iter().enumerate() {
                new_delta[c] = cell.delta0;
            }
            for (r, w) in offsets.windows(2).enumerate() {
                let g = facts[r].gamma;
                if g <= 0.0 {
                    continue;
                }
                for &c in &targets[w[0] as usize..w[1] as usize] {
                    new_delta[c as usize] += cells[c as usize].delta / g;
                }
            }
            // Convergence check + state swap (frozen cells keep their Δ).
            let mut max_rel = 0.0f64;
            for (c, cell) in cells.iter_mut().enumerate() {
                if cell.converged {
                    continue;
                }
                let nd = new_delta[c];
                if on_iter.is_some() {
                    let rel = if cell.delta == 0.0 {
                        if nd == 0.0 {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        ((nd - cell.delta) / cell.delta).abs()
                    };
                    max_rel = max_rel.max(rel);
                }
                if conv.cell_converged(cell.delta, nd) {
                    cell.converged = true;
                    remaining -= 1;
                }
                cell.delta = nd;
            }
            if let Some(cb) = on_iter.as_deref_mut() {
                cb(t, max_rel, remaining as u64);
            }
            if remaining == 0 {
                return (t, true);
            }
        }
        (conv.max_iters, remaining == 0)
    }

    /// Final Γ(r) from the final Δ values (so weights sum to exactly 1).
    pub fn finalize_gammas(&mut self) {
        let InMemProblem { cells, facts, offsets, targets } = self;
        for (r, w) in offsets.windows(2).enumerate() {
            facts[r].gamma = targets[w[0] as usize..w[1] as usize]
                .iter()
                .map(|&c| cells[c as usize].delta)
                .sum();
        }
    }

    /// Emit EDB entries for the imprecise facts: `p_{c,r} = Δ(c)/Γ(r)`,
    /// with the uniform fallback for Γ = 0 facts (DESIGN.md §2.5). Facts
    /// covering no cell emit nothing; returns how many such facts there
    /// were.
    pub fn emit(&mut self, mut out: impl FnMut(EdbRecord)) -> u64 {
        self.finalize_gammas();
        let mut uncovered = 0;
        for r in 0..self.facts.len() {
            let covered = self.covered(r);
            let f = &self.facts[r];
            if covered.is_empty() {
                uncovered += 1;
                continue;
            }
            if f.gamma > 0.0 {
                for &c in covered {
                    let cell = &self.cells[c as usize];
                    let w = cell.delta / f.gamma;
                    if w > 0.0 {
                        out(EdbRecord {
                            fact_id: f.id,
                            cell: cell.key,
                            weight: w,
                            measure: f.measure,
                        });
                    }
                }
            } else {
                let w = 1.0 / covered.len() as f64;
                for &c in covered {
                    out(EdbRecord {
                        fact_id: f.id,
                        cell: self.cells[c as usize].key,
                        weight: w,
                        measure: f.measure,
                    });
                }
            }
        }
        uncovered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySpec;
    use crate::prep::prepare;
    use iolap_model::paper_example;
    use std::collections::HashMap;

    fn table1_problem(policy: &PolicySpec) -> InMemProblem {
        let env = iolap_storage::Env::builder("inmem").pool_pages(64).in_memory().build().unwrap();
        let t = paper_example::table1();
        let p = prepare(&t, policy, &env, 8).unwrap();
        let cells: Vec<_> = (0..p.cells.len()).map(|i| p.cells.get(i).unwrap()).collect();
        let mut facts = Vec::new();
        p.facts.read_batch(0, &mut facts, p.facts.len() as usize).unwrap();
        InMemProblem::build(cells, facts, &p.schema)
    }

    fn weights_by_fact(prob: &mut InMemProblem) -> HashMap<u64, Vec<f64>> {
        let mut m: HashMap<u64, Vec<f64>> = HashMap::new();
        prob.emit(|e| m.entry(e.fact_id).or_default().push(e.weight));
        m
    }

    #[test]
    fn edge_count_matches_figure2() {
        let prob = table1_problem(&PolicySpec::em_count(0.05));
        assert_eq!(prob.num_edges(), 12);
    }

    #[test]
    fn weights_sum_to_one_after_em() {
        let mut prob = table1_problem(&PolicySpec::em_count(0.001));
        let (iters, converged) = prob.solve(&PolicySpec::em_count(0.001).convergence);
        assert!(converged, "table 1 converges quickly");
        assert!(iters >= 1);
        for (id, ws) in weights_by_fact(&mut prob) {
            let s: f64 = ws.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "fact {id} weights sum to {s}");
        }
    }

    #[test]
    fn count_allocation_closed_form() {
        // Non-iterative count allocation: p = δ(c)/Σδ(c'). Every Figure 2
        // cell has δ = 1, so every fact splits uniformly over its covered
        // cells: p8 → 1/2, 1/2; p6 → 1.
        let mut prob = table1_problem(&PolicySpec::count());
        let conv = PolicySpec::count().convergence;
        let (iters, converged) = prob.solve(&conv);
        assert_eq!(iters, 0);
        assert!(converged);
        let m = weights_by_fact(&mut prob);
        assert_eq!(m[&6], vec![1.0]);
        assert_eq!(m[&8], vec![0.5, 0.5]);
        assert_eq!(m[&11], vec![0.5, 0.5]);
    }

    #[test]
    fn em_count_shifts_mass_toward_heavy_cells() {
        // Run one EM iteration by hand for p11 = (ALL, Civic), which
        // covers c1 and c4. Iteration 1: Γ(p6)=1, Γ(p8)=2, Γ(p10)=1,
        // Γ(p11)=2, Γ(p13)=1 …
        // Δ¹(c1) = 1 + 1/Γ(p6) + 1/Γ(p11) = 1 + 1 + 0.5 = 2.5.
        // Δ¹(c4) = 1 + 1/Γ(p8) + 1/Γ(p10) + 1/Γ(p11) + 1/Γ(p13)
        //        = 1 + 0.5 + 1 + 0.5 + 1 = 4.0.
        let mut prob = table1_problem(&PolicySpec::em_count(0.5));
        let conv = crate::policy::Convergence { epsilon: 0.0, max_iters: 1 };
        prob.solve(&conv);
        let c1 = prob.cells.iter().find(|c| c.key[..2] == [0, 0]).unwrap();
        let c4 = prob.cells.iter().find(|c| c.key[..2] == [3, 0]).unwrap();
        assert!((c1.delta - 2.5).abs() < 1e-12, "Δ¹(c1) = {}", c1.delta);
        assert!((c4.delta - 4.0).abs() < 1e-12, "Δ¹(c4) = {}", c4.delta);
        // p11's weights then favour c4: p = Δ/Γ with Γ(p11) = 6.5.
        let m = weights_by_fact(&mut prob);
        let w = &m[&11];
        assert!((w[0] - 2.5 / 6.5).abs() < 1e-12);
        assert!((w[1] - 4.0 / 6.5).abs() < 1e-12);
    }

    #[test]
    fn zero_gamma_fact_falls_back_to_uniform() {
        // A fact whose covered cells all have Δ = 0: craft via Measure
        // quantity with zero-measure precise facts.
        use iolap_model::{Fact, FactTable, Schema};
        use std::sync::Arc;
        let schema = paper_example::schema();
        let loc = schema.dim(0);
        let auto = schema.dim(1);
        let l = |n: &str| loc.node_by_name(n).unwrap().0;
        let a = |n: &str| auto.node_by_name(n).unwrap().0;
        let facts = vec![
            Fact::new(1, &[l("MA"), a("Civic")], 0.0), // δ = 0 (measure!)
            Fact::new(2, &[l("MA"), a("Camry")], 0.0),
            Fact::new(3, &[l("MA"), a("Sedan")], 50.0), // covers both cells
        ];
        let t = FactTable::from_facts(Arc::<Schema>::clone(&schema), facts);
        let env = iolap_storage::Env::builder("inmem0").in_memory().build().unwrap();
        let p = prepare(&t, &PolicySpec::measure(), &env, 8).unwrap();
        let cells: Vec<_> = (0..p.cells.len()).map(|i| p.cells.get(i).unwrap()).collect();
        let mut wf = Vec::new();
        p.facts.read_batch(0, &mut wf, p.facts.len() as usize).unwrap();
        let mut prob = InMemProblem::build(cells, wf, &p.schema);
        prob.solve(&PolicySpec::measure().convergence);
        let m = weights_by_fact(&mut prob);
        assert_eq!(m[&3], vec![0.5, 0.5], "uniform fallback for Γ = 0");
    }

    #[test]
    fn uncovered_fact_emits_nothing() {
        use iolap_model::{Fact, FactTable, Schema};
        use std::sync::Arc;
        let schema = paper_example::schema();
        let loc = schema.dim(0);
        let auto = schema.dim(1);
        let l = |n: &str| loc.node_by_name(n).unwrap().0;
        let a = |n: &str| auto.node_by_name(n).unwrap().0;
        let facts = vec![
            Fact::new(1, &[l("MA"), a("Civic")], 10.0),
            // Imprecise fact over (West, Truck): covers no precise cell.
            Fact::new(2, &[l("West"), a("Truck")], 10.0),
        ];
        let t = FactTable::from_facts(Arc::<Schema>::clone(&schema), facts);
        let env = iolap_storage::Env::builder("inmem-u").in_memory().build().unwrap();
        let p = prepare(&t, &PolicySpec::em_count(0.05), &env, 8).unwrap();
        assert_eq!(p.unallocatable, 1);
        let cells: Vec<_> = (0..p.cells.len()).map(|i| p.cells.get(i).unwrap()).collect();
        let mut wf = Vec::new();
        p.facts.read_batch(0, &mut wf, p.facts.len() as usize).unwrap();
        let mut prob = InMemProblem::build(cells, wf, &p.schema);
        prob.solve(&PolicySpec::em_count(0.05).convergence);
        let mut n = 0;
        let uncovered = prob.emit(|_| n += 1);
        assert_eq!(uncovered, 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn convergence_is_monotone_in_epsilon() {
        let loose = {
            let mut p = table1_problem(&PolicySpec::em_count(0.1));
            p.solve(&PolicySpec::em_count(0.1).convergence).0
        };
        let tight = {
            let mut p = table1_problem(&PolicySpec::em_count(0.0001));
            p.solve(&PolicySpec::em_count(0.0001).convergence).0
        };
        assert!(tight >= loose, "tighter ε needs at least as many iterations");
    }
}
