//! Allocation policies (Definitions 4–5 and the policy space of [5, 6]).

/// The allocation quantity assigned to cells — the policy template's
/// degree of freedom ("Each allocation policy instantiates this template
/// by selecting a particular allocation quantity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    /// δ(c) = number of precise facts mapped to `c` (EM-Count's quantity).
    Count,
    /// δ(c) = sum of the measures of the precise facts mapped to `c`.
    Measure,
    /// δ(c) = 1 for every candidate cell (uniform allocation's quantity).
    Uniform,
}

/// Which cells form the candidate set `C` — the paper lists exactly these
/// choices ("each allocation policy in [5, 6] used one of the following").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateCells {
    /// Cells mapped to by at least one precise fact (the default, and the
    /// only choice that scales to huge dimension domains).
    PreciseCells,
    /// The union of the imprecise facts' regions (∪ the precise cells, so
    /// δ has support). Materializing this enumerates region cells, so a
    /// hard limit guards against `ALL × ALL` blowups.
    RegionUnion {
        /// Refuse to materialize more than this many cells.
        max_cells: u64,
    },
}

/// Convergence control for the iterative template.
///
/// The paper's test (Section 3.2): `ε = |Δ⁽ᵗ⁾(c) − Δ⁽ᵗ⁺¹⁾(c)| / Δ⁽ᵗ⁾(c)`;
/// a cell converges when `ε < k`; the iteration stops when every cell has
/// converged. `max_iters = 0` yields the non-iterative policies
/// (`p_{c,r} = δ(c) / Σ_{c'∈reg(r)} δ(c')`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// Relative-change threshold (the paper sweeps 0.1 … 0.005).
    pub epsilon: f64,
    /// Hard iteration cap (safety; the paper's datasets converge in ≤ 10).
    pub max_iters: u32,
}

impl Convergence {
    /// Has a cell's Δ converged between `old` and `new`?
    #[inline]
    pub fn cell_converged(&self, old: f64, new: f64) -> bool {
        if old == 0.0 {
            return new == 0.0;
        }
        ((new - old).abs() / old.abs()) < self.epsilon
    }
}

/// A fully specified allocation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// The allocation quantity δ.
    pub quantity: Quantity,
    /// The candidate cell set `C`.
    pub cells: CandidateCells,
    /// Iteration control.
    pub convergence: Convergence,
}

impl PolicySpec {
    /// EM-Count (the paper's running policy): iterate the template with
    /// fact counts until every Δ(c) changes by less than `epsilon`.
    pub fn em_count(epsilon: f64) -> Self {
        PolicySpec {
            quantity: Quantity::Count,
            cells: CandidateCells::PreciseCells,
            convergence: Convergence { epsilon, max_iters: 100 },
        }
    }

    /// EM-Measure: like EM-Count but seeded with measure mass.
    pub fn em_measure(epsilon: f64) -> Self {
        PolicySpec {
            quantity: Quantity::Measure,
            cells: CandidateCells::PreciseCells,
            convergence: Convergence { epsilon, max_iters: 100 },
        }
    }

    /// Non-iterative count allocation:
    /// `p_{c,r} = count(c) / Σ_{c'∈reg(r)} count(c')`.
    pub fn count() -> Self {
        PolicySpec {
            quantity: Quantity::Count,
            cells: CandidateCells::PreciseCells,
            convergence: Convergence { epsilon: 0.0, max_iters: 0 },
        }
    }

    /// Non-iterative measure allocation.
    pub fn measure() -> Self {
        PolicySpec {
            quantity: Quantity::Measure,
            cells: CandidateCells::PreciseCells,
            convergence: Convergence { epsilon: 0.0, max_iters: 0 },
        }
    }

    /// Uniform allocation over each fact's candidate completions.
    /// Candidate cells default to the region union (bounded), so a fact's
    /// weight spreads over its whole region, as in \[5\].
    pub fn uniform() -> Self {
        PolicySpec {
            quantity: Quantity::Uniform,
            cells: CandidateCells::RegionUnion { max_cells: 10_000_000 },
            convergence: Convergence { epsilon: 0.0, max_iters: 0 },
        }
    }

    /// Same policy with a different iteration cap (used by the benches to
    /// pin exact iteration counts, as the paper's figures do).
    pub fn with_max_iters(mut self, max_iters: u32) -> Self {
        self.convergence.max_iters = max_iters;
        self
    }

    /// Same policy with a different epsilon.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.convergence.epsilon = epsilon;
        self
    }

    /// Is this a single-shot (non-iterative) policy?
    pub fn is_non_iterative(&self) -> bool {
        self.convergence.max_iters == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(PolicySpec::count().is_non_iterative());
        assert!(PolicySpec::uniform().is_non_iterative());
        assert!(!PolicySpec::em_count(0.05).is_non_iterative());
        assert_eq!(PolicySpec::em_count(0.05).convergence.epsilon, 0.05);
        assert_eq!(PolicySpec::em_count(0.1).with_max_iters(3).convergence.max_iters, 3);
    }

    #[test]
    fn convergence_test_matches_paper_definition() {
        let c = Convergence { epsilon: 0.05, max_iters: 10 };
        assert!(c.cell_converged(100.0, 104.9));
        assert!(!c.cell_converged(100.0, 105.1));
        assert!(c.cell_converged(0.0, 0.0));
        assert!(!c.cell_converged(0.0, 1.0));
        // Relative to the OLD value, as in the paper.
        assert!(!c.cell_converged(10.0, 11.0));
        assert!(c.cell_converged(10.0, 10.4));
    }
}
