//! # iolap-core
//!
//! The paper's primary contribution: scalable algorithms that apply an
//! *allocation policy* to an imprecise fact table and materialize the
//! **Extended Database** (Burdick et al., VLDB 2006).
//!
//! ## The template (Definition 5)
//!
//! Every allocation policy instantiates one pair of update equations over
//! the bipartite allocation graph between cells `c` and imprecise facts
//! `r`:
//!
//! ```text
//! Γ⁽ᵗ⁾(r) = Σ_{c ∈ reg(r)} Δ⁽ᵗ⁻¹⁾(c)                   (E-step)
//! Δ⁽ᵗ⁾(c) = δ(c) + Σ_{r : c ∈ reg(r)} Δ⁽ᵗ⁻¹⁾(c)/Γ⁽ᵗ⁾(r) (M-step)
//! p_{c,r} = Δ⁽ᵗ⁾(c) / Γ⁽ᵗ⁾(r)
//! ```
//!
//! [`PolicySpec`] picks the allocation quantity δ (Count / Measure /
//! Uniform), the candidate cell set, and the convergence control; the
//! non-iterative policies of the companion paper (uniform, count-based,
//! measure-based) are the zero-iteration special case.
//!
//! ## The algorithms
//!
//! * [`basic`] — Algorithm 1 (in-memory reference) and Algorithm 2
//!   (Partitioned Basic), straight from the pseudocode.
//! * [`independent`] — Algorithm 3: one chain of the summary-table partial
//!   order per scan, re-sorting `C` per chain per iteration
//!   (Theorem 6: `7T(W·|C| + |I|)` I/Os).
//! * [`block`] — Algorithm 4: one canonical sort, partition windows per
//!   summary table, bin-packed table sets
//!   (Theorem 7: `3T(|S|·|C| + |I|)` I/Os).
//! * [`transitive`] — Algorithm 5: identify connected components with the
//!   in-memory `ccidMap`, sort by component, then allocate each component
//!   independently across **all** iterations — in memory if it fits, via
//!   Block if not (Theorem 10).
//! * [`maintain`] — Section 9: incremental EDB maintenance driven by an
//!   R-tree over component bounding boxes.
//!
//! ```no_run
//! use iolap_core::{allocate, Algorithm, AllocConfig, PolicySpec};
//! use iolap_model::paper_example;
//!
//! let table = paper_example::table1();
//! let policy = PolicySpec::em_count(0.005);
//! let cfg = AllocConfig::default();
//! let run = allocate(&table, &policy, Algorithm::Transitive, &cfg).unwrap();
//! assert_eq!(run.edb.num_facts_allocated(), 14);
//! println!("{}", run.report);
//! ```

#![warn(missing_docs)]

pub mod basic;
pub mod block;
pub mod cuboid;
pub mod edb;
pub mod error;
pub mod estimate;
pub mod independent;
pub mod ingest;
pub mod inmem;
pub mod maintain;
pub mod passes;
pub mod policy;
pub mod prep;
pub mod report;
pub mod runner;
pub mod segment;
pub mod transitive;

pub use cuboid::{
    Cuboid, CuboidCell, CuboidLattice, Grain, LatticeConfig, LatticeSync, SegLattice,
};
pub use edb::ExtendedDatabase;
pub use error::{CoreError, Result};
pub use estimate::{plan, PlanEstimate};
pub use ingest::{MutationRecovery, MutationWal};
pub use iolap_model::{CellOrder, PageFormat, SegmentLayout};
pub use iolap_storage::{PrefetchConfig, PrefetchStats};
pub use maintain::{CompactionPlan, CompactionResult, MaintainableEdb, UpdateReport};
pub use policy::{CandidateCells, Convergence, PolicySpec, Quantity};
pub use prep::{prepare, PreparedData};
pub use report::{ComponentStats, RunReport};
pub use runner::{
    allocate, allocate_in_env, Algorithm, AllocConfig, AllocConfigBuilder, AllocationRun,
};
pub use segment::{
    accumulate_region, accumulate_region_parts, fold_parts, sort_parts, ChunkPart, EdbSegment,
    SegScanStats, SegmentCursor, SegmentView,
};
